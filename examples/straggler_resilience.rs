//! Straggler resilience demo: inject transient machine slowdowns and watch
//! Hadar migrate gangs off slow servers while the heterogeneity-oblivious
//! baselines pay the synchronization-barrier penalty (§IV-A-1).
//!
//! Run with: `cargo run --release --example straggler_resilience`

use hadar::baselines::TiresiasScheduler;
use hadar::prelude::*;
use hadar::sim::{Scheduler, StragglerModel};

fn run(
    name: &str,
    straggler: Option<StragglerModel>,
    make: impl Fn() -> Box<dyn Scheduler>,
) -> f64 {
    let cluster = Cluster::paper_simulation();
    let jobs = generate_trace(
        &TraceConfig {
            num_jobs: 40,
            seed: 13,
            pattern: ArrivalPattern::Static,
        },
        cluster.catalog(),
    );
    let config = SimConfig {
        straggler,
        ..SimConfig::default()
    };
    let out = Simulation::new(cluster, jobs, config)
        .run(make())
        .expect("valid policy and config");
    assert_eq!(out.completed_jobs(), 40);
    println!(
        "  {name:<22} mean JCT {:>6.2} h | reallocations {:>4.1}% of job-rounds",
        out.mean_jct() / 3600.0,
        out.reallocation_rate() * 100.0
    );
    out.mean_jct()
}

fn main() {
    let model = StragglerModel {
        incidence: 0.04, // 4% chance per machine per round
        slowdown: 0.35,  // straggling machines run at 35% speed
        mean_duration_rounds: 6.0,
        seed: 5,
    };
    println!("healthy cluster:");
    let hadar_h = run("Hadar", None, || {
        Box::new(HadarScheduler::new(HadarConfig::default()))
    });
    let tiresias_h = run("Tiresias (oblivious)", None, || {
        Box::new(TiresiasScheduler::paper_default())
    });

    println!("\nwith straggler injection ({model:?}):");
    let hadar_s = run("Hadar", Some(model), || {
        Box::new(HadarScheduler::new(HadarConfig::default()))
    });
    let tiresias_s = run("Tiresias (oblivious)", Some(model), || {
        Box::new(TiresiasScheduler::paper_default())
    });

    println!(
        "\nJCT degradation under stragglers: Hadar {:+.1}% vs Tiresias {:+.1}%",
        (hadar_s / hadar_h - 1.0) * 100.0,
        (tiresias_s / tiresias_h - 1.0) * 100.0
    );
    println!(
        "Hadar reads the per-machine factors each round and migrates gangs off\n\
         slow servers when the gain beats the checkpoint cost; Tiresias keeps\n\
         paying the slowest worker's pace at the synchronization barrier."
    );
}

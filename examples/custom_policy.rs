//! Expressing a custom scheduling policy (§III-A: "our optimization-based
//! scheduling framework can express other scheduling objectives").
//!
//! This example plugs a *deadline-aware* utility into Hadar: a job's value
//! is high while it can still finish before its deadline and collapses
//! afterwards. No scheduler code changes — only the `Utility`
//! implementation differs.
//!
//! Run with: `cargo run --release --example custom_policy`

use hadar::core::utility::Utility;
use hadar::core::UtilityKind;
use hadar::prelude::*;
use hadar::workload::Job as WJob;

/// Deadline utility: full value when finishing before `arrival + slo`,
/// decaying quadratically afterwards. `scale` keeps prices well-formed.
struct DeadlineUtility {
    /// Seconds after arrival by which a job "should" be done (a multiple of
    /// its best-case runtime).
    slo_factor: f64,
    scale: f64,
}

impl Utility for DeadlineUtility {
    fn name(&self) -> &str {
        "deadline"
    }
    fn value(&self, job: &WJob, jct: f64, _finish: f64) -> f64 {
        if jct <= 0.0 {
            return 0.0;
        }
        let slo = self.slo_factor * job.min_runtime();
        let lateness = (jct / slo).max(1.0);
        // Per-worker value so gang size doesn't distort priorities.
        self.scale * job.gang as f64 / (lateness * lateness)
    }
}

fn mean_jct_and_slo_hits(utility: UtilityKind, label: &str) -> (f64, usize) {
    let cluster = Cluster::paper_simulation();
    let trace = generate_trace(
        &TraceConfig {
            num_jobs: 40,
            seed: 21,
            pattern: ArrivalPattern::Static,
        },
        cluster.catalog(),
    );
    let scheduler = HadarScheduler::new(HadarConfig::with_utility(utility));
    let outcome = Simulation::new(cluster, trace, SimConfig::default())
        .run(scheduler)
        .expect("valid policy and config");
    assert_eq!(outcome.completed_jobs(), 40);

    let slo_hits = outcome
        .records
        .iter()
        .filter(|r| {
            let slo = 8.0 * r.job.min_runtime();
            r.jct().is_some_and(|jct| jct <= slo)
        })
        .count();
    println!(
        "{label:<22} mean JCT {:>7.2} h | jobs meeting an 8x-SLO deadline: {slo_hits}/40",
        outcome.mean_jct() / 3600.0
    );
    (outcome.mean_jct(), slo_hits)
}

fn main() {
    println!("Hadar with two different plugged-in objectives:\n");
    let (_, default_hits) =
        mean_jct_and_slo_hits(UtilityKind::EffectiveThroughput, "effective-throughput");
    let (_, deadline_hits) = mean_jct_and_slo_hits(
        UtilityKind::Custom(Box::new(DeadlineUtility {
            slo_factor: 8.0,
            scale: 1.0,
        })),
        "deadline-aware",
    );
    println!(
        "\nThe deadline-aware policy trades average JCT for deadline hits \
         ({deadline_hits} vs {default_hits} jobs within SLO)."
    );
}

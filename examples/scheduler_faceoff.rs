//! Head-to-head of all four schedulers on the same continuous workload —
//! the §IV-A comparison in miniature — printing a metrics table and the
//! per-scheduler completion CDF to a CSV.
//!
//! Run with: `cargo run --release --example scheduler_faceoff [num_jobs]`

use hadar::baselines::{GavelScheduler, TiresiasScheduler, YarnCsScheduler};
use hadar::metrics::{CsvWriter, Table};
use hadar::prelude::*;
use hadar::sim::Scheduler;

fn main() {
    let num_jobs: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(60);
    let cluster = Cluster::paper_simulation();
    let trace = generate_trace(
        &TraceConfig {
            num_jobs,
            seed: 1234,
            pattern: ArrivalPattern::paper_continuous(),
        },
        cluster.catalog(),
    );

    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(HadarScheduler::new(HadarConfig::default())),
        Box::new(GavelScheduler::paper_default()),
        Box::new(TiresiasScheduler::paper_default()),
        Box::new(YarnCsScheduler::new()),
    ];

    let mut table = Table::new(vec![
        "Scheduler",
        "Mean JCT (h)",
        "Median JCT (h)",
        "Makespan (h)",
        "Util (%)",
        "Mean FTF",
    ]);
    let mut cdf = CsvWriter::new(&["scheduler", "time_hours", "fraction_completed"]);

    for scheduler in schedulers {
        let outcome = Simulation::new(cluster.clone(), trace.clone(), SimConfig::default())
            .run(scheduler)
            .expect("valid policy and config");
        assert_eq!(outcome.completed_jobs(), num_jobs);
        let m = outcome.metrics();
        table.row(vec![
            outcome.scheduler.clone(),
            format!("{:.2}", m.mean / 3600.0),
            format!("{:.2}", m.median / 3600.0),
            format!("{:.2}", outcome.makespan() / 3600.0),
            format!("{:.1}", outcome.demand_weighted_utilization() * 100.0),
            format!("{:.3}", outcome.ftf().mean),
        ]);
        for (t, f) in outcome.completion_cdf() {
            cdf.row(vec![
                outcome.scheduler.clone(),
                format!("{:.4}", t / 3600.0),
                format!("{f:.5}"),
            ]);
        }
    }

    println!("{num_jobs} jobs, Poisson arrivals at 60/hour, 60-GPU cluster\n");
    println!("{}", table.render());
    let path = std::path::Path::new("results/faceoff_cdf.csv");
    cdf.write_to(path).expect("write CDF csv");
    println!("completion CDFs written to {}", path.display());
}

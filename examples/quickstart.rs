//! Quickstart: simulate the Hadar scheduler on the paper's 60-GPU cluster
//! with a small synthetic trace and print the headline metrics.
//!
//! Run with: `cargo run --release --example quickstart`

use hadar::prelude::*;

fn main() {
    // The evaluation cluster of §IV-A: 15 nodes, 20 each of V100/P100/K80.
    let cluster = Cluster::paper_simulation();

    // A seeded Philly-style trace: 48 jobs across the four size classes,
    // arriving as a Poisson process at 60 jobs/hour.
    let trace = generate_trace(
        &TraceConfig {
            num_jobs: 48,
            seed: 7,
            pattern: ArrivalPattern::Poisson {
                jobs_per_hour: 60.0,
            },
        },
        cluster.catalog(),
    );

    // Hadar with its defaults: effective-throughput utility, auto DP/greedy
    // dual subroutine, 10-second assumed reallocation stall.
    let scheduler = HadarScheduler::new(HadarConfig::default());

    // 6-minute rounds, 10-second checkpoint-restart penalty (the paper's
    // simulation settings).
    let outcome = Simulation::new(cluster, trace, SimConfig::default())
        .run(scheduler)
        .expect("valid policy and config");

    let jct = outcome.metrics();
    println!("completed jobs      : {}", outcome.completed_jobs());
    println!("mean JCT            : {:.2} h", jct.mean / 3600.0);
    println!("median JCT          : {:.2} h", jct.median / 3600.0);
    println!("p95 JCT             : {:.2} h", jct.p95 / 3600.0);
    println!("makespan            : {:.2} h", outcome.makespan() / 3600.0);
    println!(
        "GPU utilization     : {:.1} % (demand-weighted)",
        outcome.demand_weighted_utilization() * 100.0
    );
    println!(
        "finish-time fairness: {:.3} (mean ρ, lower is better)",
        outcome.ftf().mean
    );
    println!(
        "queuing delay       : {:.2} h (mean)",
        outcome.queuing_delays().mean / 3600.0
    );
    println!(
        "reallocation rate   : {:.1} % of job-rounds",
        outcome.reallocation_rate() * 100.0
    );
}

//! The §II-A motivating example (Fig. 1), adapted to the formal model of
//! §III-A: a toy cluster with 2 × V100, 3 × P100, and 1 × K80, and three
//! 2-GPU jobs. Gavel's job-level granularity strands the leftover
//! {1 × P100, 1 × K80} pair — no single type has two free GPUs — while
//! Hadar's task-level allocation runs the third job on the mixed pair,
//! cutting its completion time and the average JCT.
//!
//! (The paper's own throughput matrix did not survive into our source text;
//! this example uses a matrix chosen to exhibit the same phenomenon — see
//! DESIGN.md §2.)
//!
//! Run with: `cargo run --release --example motivation`

use hadar::baselines::GavelScheduler;
use hadar::prelude::*;
use hadar::sim::PreemptionPenalty;
use hadar::workload::DlTask;

fn toy_jobs(catalog: &GpuCatalog) -> Vec<Job> {
    // Per-task iterations/sec on [V100, P100, K80].
    let profiles = [
        (vec![20.0, 12.0, 8.0], 80u64), // J1: 80 epochs
        (vec![15.0, 10.0, 5.0], 30),    // J2: 30 epochs
        (vec![10.0, 8.0, 6.0], 50),     // J3: 50 epochs
    ];
    assert_eq!(catalog.len(), 3);
    profiles
        .into_iter()
        .enumerate()
        .map(|(i, (rates, epochs))| {
            Job::new(
                JobId(i as u32),
                DlTask::CycleGan, // model tag only matters for checkpoint costs
                0.0,
                2,
                epochs,
                1200, // iterations per epoch
                ThroughputProfile::from_rates(rates),
            )
        })
        .collect()
}

fn run(name: &str, make: impl FnOnce() -> Box<dyn hadar::sim::Scheduler>) -> f64 {
    let cluster = Cluster::motivation_toy();
    let jobs = toy_jobs(cluster.catalog());
    let config = SimConfig {
        penalty: PreemptionPenalty::None,
        ..SimConfig::default()
    };
    let outcome = Simulation::new(cluster, jobs, config)
        .run(make())
        .expect("valid policy and config");

    println!("== {name} ==");
    for rec in &outcome.records {
        println!(
            "  J{}: gang {}, {} epochs -> JCT {:.0} s (first scheduled at {:.0} s)",
            rec.job.id.0 + 1,
            rec.job.gang,
            rec.job.epochs,
            rec.jct().expect("toy jobs complete"),
            rec.first_scheduled.expect("toy jobs run"),
        );
    }
    let mean = outcome.mean_jct();
    println!("  average JCT: {mean:.0} s\n");
    mean
}

fn main() {
    println!("Toy cluster: 2 x V100 | 3 x P100 | 1 x K80 ; three 2-GPU jobs\n");
    let hadar = run("Hadar (task-level heterogeneity-aware)", || {
        Box::new(HadarScheduler::new(HadarConfig::default()))
    });
    let gavel = run("Gavel (job-level, single type per job)", || {
        Box::new(GavelScheduler::paper_default())
    });
    println!(
        "Hadar improves the average JCT by {:.0} % on this toy workload.",
        (gavel - hadar) / gavel * 100.0
    );
}

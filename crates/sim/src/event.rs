//! Simulation event log.
//!
//! The engine records the lifecycle of every job as a stream of
//! [`SimEvent`]s — the "job events such as job arrival, completion, and
//! preemption" the paper's trace-driven simulator is built around. The log
//! supports post-hoc analysis (queuing breakdowns, migration traces) and
//! gives tests a precise ordering oracle.

use hadar_cluster::{JobId, MachineId};

/// One lifecycle event. Times are simulation seconds; events are appended
/// in non-decreasing time order (ties ordered by processing order within a
/// round).
#[derive(Debug, Clone, PartialEq)]
pub enum SimEvent {
    /// The job entered the scheduler's queue.
    Arrival {
        /// The job's submission time `a_j` (a mid-round arrival is only
        /// *admitted* at the next round boundary, but the event carries the
        /// true arrival so the log matches the trace).
        time: f64,
        /// The job.
        job: JobId,
    },
    /// The job received GPUs for the first time.
    Started {
        /// Round start time.
        time: f64,
        /// The job.
        job: JobId,
        /// Workers granted.
        workers: u32,
        /// Machines spanned.
        machines: usize,
    },
    /// A running job's placement changed (checkpoint-restart move).
    Migrated {
        /// Round start time.
        time: f64,
        /// The job.
        job: JobId,
        /// Machines spanned by the new placement.
        machines: usize,
    },
    /// A running job lost its GPUs without finishing.
    Preempted {
        /// Round start time.
        time: f64,
        /// The job.
        job: JobId,
    },
    /// The job finished all `E_j · N_j` iterations.
    Completed {
        /// Exact (sub-round) completion time `f_j`.
        time: f64,
        /// The job.
        job: JobId,
    },
    /// A machine went down (see [`crate::FailureModel`]).
    MachineFailed {
        /// Round start time.
        time: f64,
        /// The machine.
        machine: MachineId,
    },
    /// A failed machine came back.
    MachineRecovered {
        /// Round start time.
        time: f64,
        /// The machine.
        machine: MachineId,
    },
    /// A running job was forcibly preempted because one of its machines
    /// failed; the round's progress (work since the last round-boundary
    /// checkpoint) is lost and re-placement pays the restore penalty.
    JobEvicted {
        /// Round start time.
        time: f64,
        /// The job.
        job: JobId,
        /// The failed machine that triggered the eviction.
        machine: MachineId,
    },
}

impl SimEvent {
    /// The event's timestamp.
    pub fn time(&self) -> f64 {
        match *self {
            SimEvent::Arrival { time, .. }
            | SimEvent::Started { time, .. }
            | SimEvent::Migrated { time, .. }
            | SimEvent::Preempted { time, .. }
            | SimEvent::Completed { time, .. }
            | SimEvent::MachineFailed { time, .. }
            | SimEvent::MachineRecovered { time, .. }
            | SimEvent::JobEvicted { time, .. } => time,
        }
    }

    /// The job the event concerns, if any (machine failure/recovery events
    /// concern no job).
    pub fn job(&self) -> Option<JobId> {
        match *self {
            SimEvent::Arrival { job, .. }
            | SimEvent::Started { job, .. }
            | SimEvent::Migrated { job, .. }
            | SimEvent::Preempted { job, .. }
            | SimEvent::Completed { job, .. }
            | SimEvent::JobEvicted { job, .. } => Some(job),
            SimEvent::MachineFailed { .. } | SimEvent::MachineRecovered { .. } => None,
        }
    }
}

/// Validate fundamental lifecycle invariants over an event log:
/// per job, exactly one arrival and at most one completion; `Arrival ≤
/// Started ≤ Completed`; no events after completion; migrations and
/// preemptions only after a start. Returns a description of the first
/// violation found.
pub fn check_lifecycle(events: &[SimEvent], num_jobs: usize) -> Result<(), String> {
    #[derive(Clone, Copy, PartialEq)]
    enum Phase {
        Unseen,
        Queued,
        Started,
        Done,
    }
    let mut phase = vec![Phase::Unseen; num_jobs];
    let mut last_time = f64::NEG_INFINITY;
    for e in events {
        let t = e.time();
        if t < last_time - 1e-9 {
            return Err(format!("time went backwards at {e:?}"));
        }
        last_time = last_time.max(t);
        // Machine events carry no job; only the time ordering applies.
        let Some(job) = e.job() else { continue };
        let j = job.index();
        if j >= num_jobs {
            return Err(format!("unknown job in {e:?}"));
        }
        let p = phase[j];
        phase[j] = match (e, p) {
            (SimEvent::Arrival { .. }, Phase::Unseen) => Phase::Queued,
            (SimEvent::Arrival { .. }, _) => return Err(format!("duplicate arrival: {e:?}")),
            (SimEvent::Started { .. }, Phase::Queued) => Phase::Started,
            (SimEvent::Started { .. }, _) => return Err(format!("start out of order: {e:?}")),
            (
                SimEvent::Migrated { .. }
                | SimEvent::Preempted { .. }
                | SimEvent::JobEvicted { .. },
                Phase::Started,
            ) => Phase::Started,
            (
                SimEvent::Migrated { .. }
                | SimEvent::Preempted { .. }
                | SimEvent::JobEvicted { .. },
                _,
            ) => return Err(format!("move/preempt before start: {e:?}")),
            (SimEvent::Completed { .. }, Phase::Started) => Phase::Done,
            (SimEvent::Completed { .. }, _) => {
                return Err(format!("completion out of order: {e:?}"))
            }
            (SimEvent::MachineFailed { .. } | SimEvent::MachineRecovered { .. }, _) => {
                unreachable!("machine events have no job")
            }
        };
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn j(n: u32) -> JobId {
        JobId(n)
    }

    #[test]
    fn accessors() {
        let e = SimEvent::Completed {
            time: 42.0,
            job: j(3),
        };
        assert_eq!(e.time(), 42.0);
        assert_eq!(e.job(), Some(j(3)));
        let m = SimEvent::MachineFailed {
            time: 7.0,
            machine: MachineId(2),
        };
        assert_eq!(m.time(), 7.0);
        assert_eq!(m.job(), None);
    }

    #[test]
    fn failure_events_in_lifecycle() {
        let log = vec![
            SimEvent::Arrival {
                time: 0.0,
                job: j(0),
            },
            SimEvent::Started {
                time: 0.0,
                job: j(0),
                workers: 2,
                machines: 1,
            },
            SimEvent::MachineFailed {
                time: 360.0,
                machine: MachineId(0),
            },
            SimEvent::JobEvicted {
                time: 360.0,
                job: j(0),
                machine: MachineId(0),
            },
            SimEvent::Migrated {
                time: 360.0,
                job: j(0),
                machines: 1,
            },
            SimEvent::MachineRecovered {
                time: 720.0,
                machine: MachineId(0),
            },
            SimEvent::Completed {
                time: 900.0,
                job: j(0),
            },
        ];
        assert_eq!(check_lifecycle(&log, 1), Ok(()));
        // Eviction before a start is a violation like any preemption.
        let bad = vec![
            SimEvent::Arrival {
                time: 0.0,
                job: j(0),
            },
            SimEvent::JobEvicted {
                time: 0.0,
                job: j(0),
                machine: MachineId(0),
            },
        ];
        assert!(check_lifecycle(&bad, 1)
            .unwrap_err()
            .contains("before start"));
    }

    #[test]
    fn valid_lifecycle_accepted() {
        let log = vec![
            SimEvent::Arrival {
                time: 0.0,
                job: j(0),
            },
            SimEvent::Started {
                time: 0.0,
                job: j(0),
                workers: 2,
                machines: 1,
            },
            SimEvent::Migrated {
                time: 360.0,
                job: j(0),
                machines: 2,
            },
            SimEvent::Preempted {
                time: 720.0,
                job: j(0),
            },
            SimEvent::Started {
                time: 1080.0,
                job: j(0),
                workers: 2,
                machines: 1,
            },
        ];
        // Re-start after preemption is modeled as Migrated in the engine; a
        // second Started is rejected:
        assert!(check_lifecycle(&log, 1).is_err());
        let ok = vec![
            SimEvent::Arrival {
                time: 0.0,
                job: j(0),
            },
            SimEvent::Started {
                time: 0.0,
                job: j(0),
                workers: 2,
                machines: 1,
            },
            SimEvent::Preempted {
                time: 360.0,
                job: j(0),
            },
            SimEvent::Migrated {
                time: 720.0,
                job: j(0),
                machines: 1,
            },
            SimEvent::Completed {
                time: 900.0,
                job: j(0),
            },
        ];
        assert_eq!(check_lifecycle(&ok, 1), Ok(()));
    }

    #[test]
    fn violations_detected() {
        // Completion before start.
        let log = vec![
            SimEvent::Arrival {
                time: 0.0,
                job: j(0),
            },
            SimEvent::Completed {
                time: 1.0,
                job: j(0),
            },
        ];
        assert!(check_lifecycle(&log, 1).unwrap_err().contains("completion"));
        // Time going backwards.
        let log = vec![
            SimEvent::Arrival {
                time: 10.0,
                job: j(0),
            },
            SimEvent::Arrival {
                time: 5.0,
                job: j(1),
            },
        ];
        assert!(check_lifecycle(&log, 2).unwrap_err().contains("backwards"));
        // Unknown job.
        let log = vec![SimEvent::Arrival {
            time: 0.0,
            job: j(9),
        }];
        assert!(check_lifecycle(&log, 1).unwrap_err().contains("unknown"));
    }
}

#![warn(missing_docs)]

//! # hadar-sim
//!
//! Round-based, trace-driven discrete-time simulator for deep-learning
//! cluster schedulers — the instrument behind every figure of the paper's
//! evaluation (§IV-A).
//!
//! The simulator advances time in fixed scheduling rounds (default 6
//! minutes). Each round it:
//!
//! 1. admits newly arrived jobs to the queue,
//! 2. asks the active [`Scheduler`] for an [`Allocation`]
//!    (`w_{jh}^r(t)` for every job) and wall-clock-times the decision,
//! 3. validates the allocation against capacity (1d) and gang (1e)
//!    constraints,
//! 4. charges a checkpoint/restore penalty to every job whose allocation
//!    changed (the paper's 10-second default, or the calibrated
//!    [`CheckpointModel`]),
//! 5. advances each running job by its bottleneck throughput
//!    `x_j(t) · W_j · (L − penalty)` iterations (Eq. 1a/1b), degraded by the
//!    cross-server communication factor for non-consolidated placements, and
//! 6. records per-round utilization and completion events.
//!
//! Simulations are deterministic: same cluster, trace, scheduler, and
//! configuration ⇒ identical outcomes (decision *wall times* vary, nothing
//! else).

//!
//! ```
//! use hadar_sim::{Scheduler, SchedulerContext, SimConfig, Simulation};
//! use hadar_cluster::{Allocation, Cluster, JobPlacement, MachineId};
//! use hadar_workload::{generate_trace, ArrivalPattern, TraceConfig};
//!
//! /// A trivial policy: every queued job onto machine 0's V100s, FIFO.
//! struct Greedy;
//! impl Scheduler for Greedy {
//!     fn name(&self) -> &str { "greedy" }
//!     fn schedule(&mut self, ctx: &SchedulerContext<'_>) -> Allocation {
//!         let v100 = ctx.cluster.catalog().lookup("V100").unwrap();
//!         let mut free = ctx.cluster.capacity(MachineId(0), v100);
//!         let mut alloc = Allocation::empty();
//!         for s in ctx.jobs {
//!             if s.job.gang <= free {
//!                 alloc.set(s.job.id, JobPlacement::single(MachineId(0), v100, s.job.gang));
//!                 free -= s.job.gang;
//!             }
//!         }
//!         alloc
//!     }
//! }
//!
//! let cluster = Cluster::paper_simulation();
//! let jobs = generate_trace(
//!     &TraceConfig { num_jobs: 4, seed: 0, pattern: ArrivalPattern::Static },
//!     cluster.catalog(),
//! );
//! let out = Simulation::new(cluster, jobs, SimConfig::default())
//!     .run(Greedy)
//!     .expect("valid policy and config");
//! assert_eq!(out.completed_jobs(), 4);
//! assert!(hadar_sim::check_lifecycle(out.events(), 4).is_ok());
//! ```

pub mod checkpoint;
pub mod engine;
pub mod error;
pub mod event;
pub mod failure;
pub mod runner;
pub mod scheduler;
pub mod stats;
pub mod straggler;
pub mod telemetry;

pub use checkpoint::{CheckpointModel, PreemptionPenalty};
pub use engine::{job_rate, job_rate_full, job_rate_with, SimConfig, Simulation};
pub use error::{SimError, SimResult};
pub use event::{check_lifecycle, SimEvent};
pub use failure::{FailureModel, FailureState, FailureTransitions};
pub use runner::{run_parallel, CellResult, SweepRunner};
pub use scheduler::{DecisionPhases, JobState, Scheduler, SchedulerContext};
pub use stats::{JobRecord, RoundRecord, SimOutcome};
pub use straggler::{StragglerModel, StragglerState};
pub use telemetry::{RoundSnapshot, Telemetry, TelemetrySummary, TELEMETRY_SCHEMA};

//! The round-based simulation engine.

use std::collections::HashMap;
use std::time::Instant;

use hadar_cluster::{Cluster, CommCostModel, JobId, JobPlacement, MachineId};
use hadar_workload::Job;

use crate::checkpoint::PreemptionPenalty;
use crate::error::{SimError, SimResult};
use crate::event::SimEvent;
use crate::failure::{FailureModel, FailureState};
use crate::scheduler::{JobState, Scheduler, SchedulerContext};
use crate::stats::{JobRecord, RoundRecord, SimOutcome};
use crate::straggler::{StragglerModel, StragglerState};
use crate::telemetry::{RoundSnapshot, Telemetry};

/// Simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Scheduling-round length `L` in seconds (paper default: 6 minutes).
    pub round_length: f64,
    /// Penalty charged to a job whose allocation changed.
    pub penalty: PreemptionPenalty,
    /// Cross-server communication model.
    pub comm: CommCostModel,
    /// Hard cap on simulated rounds (safety net against livelock; a run
    /// hitting the cap is reported with `timed_out = true`).
    pub max_rounds: u64,
    /// Optional per-machine straggler injection.
    pub straggler: Option<StragglerModel>,
    /// Optional per-machine failure injection (whole machines going down,
    /// see [`FailureModel`]).
    pub failure: Option<FailureModel>,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            round_length: 360.0,
            penalty: PreemptionPenalty::default(),
            comm: CommCostModel::default(),
            max_rounds: 1_000_000,
            straggler: None,
            failure: None,
        }
    }
}

impl SimConfig {
    /// Check the configuration, so a bad sweep parameter surfaces as a
    /// [`SimError`] for that cell instead of aborting the process.
    pub fn validate(&self) -> Result<(), SimError> {
        if !self.round_length.is_finite() || self.round_length <= 0.0 {
            return Err(SimError::InvalidConfig(format!(
                "round length must be positive (got {})",
                self.round_length
            )));
        }
        if let Some(s) = &self.straggler {
            s.validate()
                .map_err(|e| SimError::InvalidConfig(format!("straggler model: {e}")))?;
        }
        if let Some(f) = &self.failure {
            f.validate()
                .map_err(|e| SimError::InvalidConfig(format!("failure model: {e}")))?;
        }
        Ok(())
    }
}

/// A configured simulation: cluster + trace + parameters.
///
/// Consume with [`Simulation::run`].
#[derive(Debug, Clone)]
pub struct Simulation {
    cluster: Cluster,
    jobs: Vec<Job>,
    config: SimConfig,
}

impl Simulation {
    /// Build a simulation. Jobs are admitted in arrival order; ids must be
    /// dense `0..n` (as produced by the trace generator).
    ///
    /// # Panics
    /// Panics if job ids are not dense `0..n`.
    pub fn new(cluster: Cluster, mut jobs: Vec<Job>, config: SimConfig) -> Self {
        // total_cmp: a NaN arrival (malformed trace) sorts last instead of
        // panicking mid-sort; the admission loop then simply never admits it
        // and the run ends at the round cap with an unstarted record.
        jobs.sort_by(|a, b| a.arrival.total_cmp(&b.arrival).then(a.id.cmp(&b.id)));
        let mut seen = vec![false; jobs.len()];
        for j in &jobs {
            assert!(
                j.id.index() < jobs.len() && !seen[j.id.index()],
                "job ids must be dense 0..n"
            );
            seen[j.id.index()] = true;
        }
        Self {
            cluster,
            jobs,
            config,
        }
    }

    /// The configured cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Run to completion (or the round cap) under `scheduler`.
    ///
    /// Returns a [`SimError`] instead of panicking when the configuration is
    /// invalid or the scheduler violates the allocation constraints, so one
    /// bad cell in a parallel sweep degrades into an error row rather than
    /// aborting every worker.
    pub fn run<S: Scheduler>(self, scheduler: S) -> SimResult {
        self.run_with_telemetry(scheduler, Telemetry::disabled())
    }

    /// [`Simulation::run`] with a [`Telemetry`] sink attached. The sink is
    /// purely observational: with [`Telemetry::disabled`] every emission is
    /// a no-op and this is exactly `run`; with [`Telemetry::enabled`] the
    /// outcome additionally carries a per-round JSONL stream
    /// ([`SimOutcome::telemetry_stream`]) and aggregate counters
    /// ([`SimOutcome::telemetry`]) — the simulated schedule itself is
    /// byte-identical either way.
    pub fn run_with_telemetry<S: Scheduler>(
        self,
        mut scheduler: S,
        telemetry: Telemetry,
    ) -> SimResult {
        let Simulation {
            cluster,
            jobs,
            config,
        } = self;
        config.validate()?;
        let num_jobs = jobs.len();
        let round = config.round_length;
        telemetry.begin_run(
            scheduler.name(),
            cluster.total_gpus(),
            cluster.num_machines(),
            num_jobs,
            round,
        );
        let type_names: Vec<String> = if telemetry.is_enabled() {
            cluster
                .catalog()
                .ids()
                .map(|r| cluster.catalog().name(r).to_owned())
                .collect()
        } else {
            Vec::new()
        };

        // Records indexed by job id.
        let mut records: Vec<Option<JobRecord>> = vec![None; num_jobs];
        let mut active: Vec<JobState> = Vec::new();
        let mut pending = jobs.into_iter().peekable();
        let mut rounds: Vec<RoundRecord> = Vec::new();
        let mut time = 0.0f64;
        let mut completed = 0usize;
        let mut timed_out = false;
        let mut round_no = 0u64;
        let mut stragglers = StragglerState::new(config.straggler, cluster.num_machines());
        let mut failures = FailureState::new(config.failure, cluster.num_machines());
        let mut events: Vec<SimEvent> = Vec::new();

        while completed < num_jobs {
            if round_no >= config.max_rounds {
                timed_out = true;
                break;
            }
            round_no += 1;

            // Admit arrivals. If the queue is idle, fast-forward to the
            // earliest round boundary that *admits* the next arrival — the
            // boundary it lands on exactly, or else the next one up. (Using
            // the floor boundary would run one spurious all-idle round for
            // every mid-round arrival into an empty queue.)
            if active.is_empty() {
                if let Some(next) = pending.peek() {
                    if next.arrival > time {
                        let below = (next.arrival / round).floor() * round;
                        time = if next.arrival <= below + f64::EPSILON * below.max(1.0) {
                            below
                        } else {
                            below + round
                        };
                    }
                }
            }
            let mut arrivals_this_round = 0u32;
            let mut evicted_this_round = 0u32;
            // A job arriving exactly at the round boundary is admitted; one
            // arriving mid-round waits for the next boundary.
            while pending
                .peek()
                .is_some_and(|j| j.arrival <= time + f64::EPSILON * time.max(1.0))
            {
                let job = pending.next().expect("peeked");
                scheduler.on_arrival(&job);
                // The event carries the job's true submission time `a_j`,
                // not the round boundary that admitted it. A mid-round
                // arrival can predate events already logged from the
                // previous round, so insert at the chronological position
                // to keep the log time-sorted.
                let idx = events.partition_point(|e| e.time() <= job.arrival);
                events.insert(
                    idx,
                    SimEvent::Arrival {
                        time: job.arrival,
                        job: job.id,
                    },
                );
                records[job.id.index()] = Some(JobRecord {
                    job: job.clone(),
                    first_scheduled: None,
                    finish: None,
                    rounds_run: 0,
                    reallocations: 0,
                });
                active.push(JobState::new(job));
                arrivals_this_round += 1;
            }

            // Advance the fault processes: straggler throughput factors,
            // then whole-machine failures. Down machines run at factor 0.0.
            let mut machine_factors = stragglers.step().to_vec();
            let transitions = failures.step();
            let availability = failures.availability();
            for &h in &transitions.failed {
                events.push(SimEvent::MachineFailed { time, machine: h });
            }
            for &h in &transitions.recovered {
                events.push(SimEvent::MachineRecovered { time, machine: h });
            }
            if availability.any_down() {
                for (i, f) in machine_factors.iter_mut().enumerate() {
                    if !availability.is_up(MachineId(i as u32)) {
                        *f = 0.0;
                    }
                }
                // Forcibly evict jobs whose placement touches a down
                // machine: the work since the last round-boundary
                // checkpoint (i.e. the failed round's progress) is lost,
                // and any re-placement pays the restore penalty below.
                for state in active.iter_mut() {
                    let dead = state
                        .placement
                        .slices()
                        .iter()
                        .find(|sl| !availability.is_up(sl.machine))
                        .map(|sl| sl.machine);
                    if let Some(machine) = dead {
                        events.push(SimEvent::JobEvicted {
                            time,
                            job: state.job.id,
                            machine,
                        });
                        state.remaining_iters += state.last_round_iters;
                        state.last_round_iters = 0.0;
                        state.placement = JobPlacement::empty();
                        evicted_this_round += 1;
                    }
                }
            }

            // Ask the policy for this round's allocation.
            let ctx = SchedulerContext {
                time,
                round_length: round,
                cluster: &cluster,
                jobs: &active,
                comm: &config.comm,
                machine_factors: &machine_factors,
                availability,
                telemetry: &telemetry,
            };
            let t0 = Instant::now();
            let allocation = scheduler.schedule(&ctx);
            let decision_seconds = t0.elapsed().as_secs_f64();
            let phases = scheduler.last_decision_phases();
            let bk0 = Instant::now();

            // Validate: capacity, gang sizes, and that only queued jobs are
            // scheduled. A violation is a policy bug — fail the run.
            let gang: HashMap<JobId, u32> = active.iter().map(|s| (s.job.id, s.job.gang)).collect();
            for (id, _) in allocation.iter() {
                if !gang.contains_key(&id) {
                    return Err(SimError::UnknownJobAllocated {
                        scheduler: scheduler.name().to_owned(),
                        job: id,
                        round: round_no,
                    });
                }
            }
            if let Err(e) = allocation.validate(&cluster, |id| gang[&id]) {
                return Err(SimError::InvalidAllocation {
                    scheduler: scheduler.name().to_owned(),
                    round: round_no,
                    detail: e.to_string(),
                });
            }

            // Advance every active job.
            let demand_gpus: u32 = active.iter().map(|s| s.job.gang).sum();
            let mut busy_gpu_seconds = 0.0;
            let mut held_gpu_seconds = 0.0;
            let mut reallocations = 0u32;
            let mut running_jobs = 0u32;
            let mut scheduled_this_round = 0u32;
            let mut preempted_this_round = 0u32;
            let queue_depth = active.len() as u32;
            // Allocated-GPU split per type, collected only when observing.
            let mut util_gpus: Vec<u32> = if telemetry.is_enabled() {
                vec![0; cluster.num_types()]
            } else {
                Vec::new()
            };
            let mut finished: Vec<JobId> = Vec::new();
            let mut completions: Vec<SimEvent> = Vec::new();

            for state in active.iter_mut() {
                let mut new_placement = allocation
                    .get(state.job.id)
                    .cloned()
                    .unwrap_or_else(JobPlacement::empty);
                // A placement touching a down machine cannot run: strip it,
                // so the job simply loses the round (zero-rate masking for
                // policies that ignore the availability mask).
                if availability.any_down()
                    && new_placement
                        .slices()
                        .iter()
                        .any(|sl| !availability.is_up(sl.machine))
                {
                    new_placement = JobPlacement::empty();
                }
                let changed = new_placement != state.placement;
                state.last_round_iters = 0.0;
                if new_placement.is_empty() {
                    if changed {
                        events.push(SimEvent::Preempted {
                            time,
                            job: state.job.id,
                        });
                        preempted_this_round += 1;
                    }
                    state.placement = new_placement;
                    continue;
                }
                if state.placement.is_empty() {
                    scheduled_this_round += 1;
                }
                if !util_gpus.is_empty() {
                    for sl in new_placement.slices() {
                        util_gpus[sl.gpu.index()] += sl.count;
                    }
                }
                if changed {
                    if state.first_scheduled.is_none() {
                        events.push(SimEvent::Started {
                            time,
                            job: state.job.id,
                            workers: new_placement.total_workers(),
                            machines: new_placement.num_machines(),
                        });
                    } else {
                        events.push(SimEvent::Migrated {
                            time,
                            job: state.job.id,
                            machines: new_placement.num_machines(),
                        });
                    }
                }
                running_jobs += 1;
                // An active job without a record is an engine bookkeeping
                // bug; degrade into an error row instead of panicking the
                // whole sweep worker.
                let Some(rec) = records[state.job.id.index()].as_mut() else {
                    return Err(SimError::MissingRecord { job: state.job.id });
                };
                rec.rounds_run += 1;
                if changed {
                    rec.reallocations += 1;
                    reallocations += 1;
                }
                if state.first_scheduled.is_none() {
                    state.first_scheduled = Some(time);
                    rec.first_scheduled = Some(time);
                }

                let penalty = if changed {
                    config.penalty.seconds(state.job.model)
                } else {
                    0.0
                };
                let eff = (round - penalty).max(0.0);
                let workers = new_placement.total_workers() as f64;
                held_gpu_seconds += workers * round;

                let rate = job_rate_full(
                    &state.job,
                    &new_placement,
                    &config.comm,
                    &machine_factors,
                    cluster.racks(),
                );
                if rate > 0.0 && eff > 0.0 {
                    let capacity_iters = rate * eff;
                    let work_time = if capacity_iters >= state.remaining_iters {
                        // Completes mid-round.
                        let t = state.remaining_iters / rate;
                        rec.finish = Some(time + penalty + t);
                        state.remaining_iters = 0.0;
                        finished.push(state.job.id);
                        completions.push(SimEvent::Completed {
                            time: time + penalty + t,
                            job: state.job.id,
                        });
                        t
                    } else {
                        state.remaining_iters -= capacity_iters;
                        state.last_round_iters = capacity_iters;
                        eff
                    };
                    state.service_seconds += work_time;
                    // Useful compute: a worker on a fast type in a mixed
                    // gang idles at the synchronization barrier while the
                    // bottleneck type catches up — weight its busy time by
                    // bottleneck/X_r (straggler factors included).
                    let factor_of = |h: MachineId| -> f64 {
                        machine_factors.get(h.index()).copied().unwrap_or(1.0)
                    };
                    let Some(bottleneck) = new_placement
                        .bottleneck_rate_per_slice(|h, r| state.job.profile.rate(r) * factor_of(h))
                    else {
                        // `rate > 0.0` above implies a positive bottleneck
                        // over the same slices; reaching this branch means
                        // the rate model disagrees with itself.
                        return Err(SimError::InvariantViolation {
                            scheduler: scheduler.name().to_owned(),
                            round: round_no,
                            detail: format!(
                                "job {} holds a non-empty placement with no \
                                 positive per-slice rate",
                                state.job.id
                            ),
                        });
                    };
                    for sl in new_placement.slices() {
                        let x = state.job.profile.rate(sl.gpu) * factor_of(sl.machine);
                        let weight = if x > 0.0 { bottleneck / x } else { 0.0 };
                        busy_gpu_seconds += sl.count as f64 * work_time * weight;
                    }
                }
                state.placement = new_placement;
            }

            completions.sort_by(|a, b| a.time().total_cmp(&b.time()));
            events.extend(completions);
            for id in &finished {
                scheduler.on_completion(*id);
            }
            completed += finished.len();
            active.retain(|s| s.remaining_iters > 0.0);
            time += round;

            rounds.push(RoundRecord {
                time: time - round,
                busy_gpu_seconds,
                held_gpu_seconds,
                decision_seconds,
                reallocations,
                running_jobs,
                demand_gpus,
                phases,
                bookkeeping_seconds: bk0.elapsed().as_secs_f64(),
            });
            if telemetry.is_enabled() {
                let util_by_type: Vec<(String, u32)> = type_names
                    .iter()
                    .cloned()
                    .zip(util_gpus.iter().copied())
                    .collect();
                telemetry.record_round(&RoundSnapshot {
                    round: round_no,
                    time: time - round,
                    queue_depth,
                    running: running_jobs,
                    scheduled: scheduled_this_round,
                    preempted: preempted_this_round,
                    evicted: evicted_this_round,
                    completed: finished.len() as u32,
                    arrivals: arrivals_this_round,
                    reallocations,
                    demand_gpus,
                    busy_gpu_seconds,
                    held_gpu_seconds,
                    machines_down: availability.num_down() as u32,
                    decision_seconds,
                    phases,
                    util_by_type: &util_by_type,
                });
            }
        }

        // A run that hits the round cap before every job has arrived leaves
        // the unadmitted jobs without records; synthesize unstarted ones so
        // the outcome still covers the whole trace.
        for job in pending {
            debug_assert!(timed_out, "job {} pending without timeout", job.id);
            let idx = job.id.index();
            records[idx] = Some(JobRecord {
                job,
                first_scheduled: None,
                finish: None,
                rounds_run: 0,
                reallocations: 0,
            });
        }
        let records = records
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                r.ok_or(SimError::MissingRecord {
                    job: JobId(i as u32),
                })
            })
            .collect::<Result<Vec<_>, _>>()?;

        telemetry.finish_run();
        let telemetry_summary = telemetry.summary();
        let telemetry_stream = telemetry.into_stream();
        Ok(SimOutcome::new(
            scheduler.name().to_owned(),
            records,
            rounds,
            round,
            cluster,
            timed_out,
            events,
            telemetry_summary,
            telemetry_stream,
        ))
    }
}

/// Effective aggregate rate of a job on `placement` (iterations/sec):
/// bottleneck per-task throughput (Eq. 1b) × gang size × the communication
/// degradation for non-consolidated placements.
pub fn job_rate(job: &Job, placement: &JobPlacement, comm: &CommCostModel) -> f64 {
    job_rate_with(job, placement, comm, &[])
}

/// [`job_rate`] with per-machine straggler factors applied to each task
/// before the synchronization barrier. Machines beyond `factors` are
/// treated as healthy (factor 1.0).
pub fn job_rate_with(
    job: &Job,
    placement: &JobPlacement,
    comm: &CommCostModel,
    factors: &[f64],
) -> f64 {
    job_rate_full(job, placement, comm, factors, None)
}

/// The full rate model: straggler factors per task plus the (optionally
/// rack-aware) communication degradation.
pub fn job_rate_full(
    job: &Job,
    placement: &JobPlacement,
    comm: &CommCostModel,
    factors: &[f64],
    racks: Option<&hadar_cluster::RackTopology>,
) -> f64 {
    let Some(bottleneck) = placement.bottleneck_rate_per_slice(|h, r| {
        job.profile.rate(r) * factors.get(h.index()).copied().unwrap_or(1.0)
    }) else {
        return 0.0;
    };
    bottleneck * placement.total_workers() as f64 * comm.placement_factor_racked(placement, racks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hadar_cluster::{Allocation, GpuTypeId};
    use hadar_workload::DlTask;

    /// Schedules every queued job greedily on machine 0's V100s, FIFO,
    /// non-preemptive — a minimal well-behaved test policy.
    struct FifoV100;

    impl Scheduler for FifoV100 {
        fn name(&self) -> &str {
            "FifoV100"
        }
        fn schedule(&mut self, ctx: &SchedulerContext<'_>) -> Allocation {
            let mut alloc = Allocation::empty();
            let v100 = ctx.cluster.catalog().lookup("V100").expect("V100");
            let mut free = ctx.cluster.capacity(MachineId(0), v100);
            for s in ctx.jobs {
                if s.job.gang <= free {
                    alloc.set(
                        s.job.id,
                        JobPlacement::single(MachineId(0), v100, s.job.gang),
                    );
                    free -= s.job.gang;
                }
            }
            alloc
        }
    }

    fn cluster() -> Cluster {
        Cluster::paper_simulation()
    }

    fn small_job(id: u32, arrival: f64, gang: u32, epochs: u64) -> Job {
        Job::for_model(
            JobId(id),
            DlTask::ResNet18,
            cluster().catalog(),
            arrival,
            gang,
            epochs,
        )
    }

    fn no_penalty_config() -> SimConfig {
        SimConfig {
            penalty: PreemptionPenalty::None,
            comm: CommCostModel::free(),
            ..SimConfig::default()
        }
    }

    #[test]
    fn single_job_completes_at_analytic_time() {
        // ResNet-18, 2 workers on V100: rate = 2 × 120 = 240 it/s.
        // 100 epochs × 390 = 39 000 iters → 162.5 s.
        let jobs = vec![small_job(0, 0.0, 2, 100)];
        let out = Simulation::new(cluster(), jobs, no_penalty_config())
            .run(FifoV100)
            .unwrap();
        assert_eq!(out.completed_jobs(), 1);
        let jct = out.records[0].jct().unwrap();
        assert!((jct - 162.5).abs() < 1e-6, "jct={jct}");
        assert!(!out.timed_out);
    }

    #[test]
    fn fixed_penalty_delays_completion() {
        let jobs = vec![small_job(0, 0.0, 2, 100)];
        let cfg = SimConfig {
            penalty: PreemptionPenalty::Fixed(10.0),
            comm: CommCostModel::free(),
            ..SimConfig::default()
        };
        let out = Simulation::new(cluster(), jobs, cfg).run(FifoV100).unwrap();
        let jct = out.records[0].jct().unwrap();
        // First allocation counts as "new" → one 10 s stall.
        assert!((jct - 172.5).abs() < 1e-6, "jct={jct}");
    }

    #[test]
    fn mid_round_arrival_waits_for_boundary() {
        let jobs = vec![small_job(0, 100.0, 1, 10)];
        let out = Simulation::new(cluster(), jobs, no_penalty_config())
            .run(FifoV100)
            .unwrap();
        // Arrives at 100 s; next boundary is 360 s.
        let first = out.records[0].first_scheduled.unwrap();
        assert_eq!(first, 360.0);
        assert_eq!(out.records[0].queuing_delay(), Some(260.0));
    }

    #[test]
    fn idle_gap_fast_forwards() {
        // Second job arrives hours later; the engine must not spin.
        let jobs = vec![small_job(0, 0.0, 1, 1), small_job(1, 36_000.0, 1, 1)];
        let out = Simulation::new(cluster(), jobs, no_penalty_config())
            .run(FifoV100)
            .unwrap();
        assert_eq!(out.completed_jobs(), 2);
        // Far fewer rounds than 36 000 / 360.
        assert!(out.rounds.len() < 10, "rounds={}", out.rounds.len());
    }

    #[test]
    fn idle_fast_forward_skips_spurious_round() {
        // Regression: a mid-round arrival into an idle queue used to land
        // the clock one boundary *before* the arrival, logging an all-idle
        // round before admitting the job.
        let jobs = vec![small_job(0, 0.0, 1, 1), small_job(1, 36_050.0, 1, 1)];
        let out = Simulation::new(cluster(), jobs, no_penalty_config())
            .run(FifoV100)
            .unwrap();
        assert_eq!(out.completed_jobs(), 2);
        for r in &out.rounds {
            assert!(r.demand_gpus > 0, "spurious all-idle round at t={}", r.time);
        }
        // 36 050 is mid-round; the admitting boundary is 36 360.
        assert_eq!(out.records[1].first_scheduled, Some(36_360.0));
    }

    #[test]
    fn queue_overflow_waits() {
        // Machine 0 has 4 V100s; three 2-GPU jobs → one must wait a round.
        let jobs = vec![
            small_job(0, 0.0, 2, 200),
            small_job(1, 0.0, 2, 200),
            small_job(2, 0.0, 2, 200),
        ];
        let out = Simulation::new(cluster(), jobs, no_penalty_config())
            .run(FifoV100)
            .unwrap();
        assert_eq!(out.completed_jobs(), 3);
        let starts: Vec<f64> = out
            .records
            .iter()
            .map(|r| r.first_scheduled.unwrap())
            .collect();
        assert_eq!(starts[0], 0.0);
        assert_eq!(starts[1], 0.0);
        assert_eq!(starts[2], 360.0);
    }

    #[test]
    fn deterministic_outcomes() {
        let jobs: Vec<Job> = (0..6).map(|i| small_job(i, 0.0, 1, 50)).collect();
        let a = Simulation::new(cluster(), jobs.clone(), no_penalty_config())
            .run(FifoV100)
            .unwrap();
        let b = Simulation::new(cluster(), jobs, no_penalty_config())
            .run(FifoV100)
            .unwrap();
        assert_eq!(a.jcts(), b.jcts());
        assert_eq!(a.makespan(), b.makespan());
    }

    #[test]
    fn round_cap_reports_timeout() {
        let jobs = vec![small_job(0, 0.0, 2, 10_000)];
        let cfg = SimConfig {
            max_rounds: 2,
            ..no_penalty_config()
        };
        let out = Simulation::new(cluster(), jobs, cfg).run(FifoV100).unwrap();
        assert!(out.timed_out);
        assert_eq!(out.completed_jobs(), 0);
    }

    #[test]
    fn timeout_before_all_arrivals_returns_outcome() {
        // Regression: the cap fires after one round while job 1 is still
        // months away; the engine used to panic on its missing record.
        let jobs = vec![small_job(0, 0.0, 1, 10_000), small_job(1, 1.0e9, 1, 10)];
        let cfg = SimConfig {
            max_rounds: 1,
            ..no_penalty_config()
        };
        let out = Simulation::new(cluster(), jobs, cfg).run(FifoV100).unwrap();
        assert!(out.timed_out);
        assert_eq!(out.records.len(), 2);
        let never_arrived = &out.records[1];
        assert_eq!(never_arrived.job.id, JobId(1));
        assert!(never_arrived.first_scheduled.is_none());
        assert!(never_arrived.finish.is_none());
        assert_eq!(never_arrived.rounds_run, 0);
        assert_eq!(never_arrived.reallocations, 0);
        assert_eq!(out.completed_jobs(), 0);
    }

    #[test]
    fn arrival_event_carries_true_arrival_time() {
        // Job 0 completes at 1.625 × 154 = 250.25 s (within round 0); job 1
        // arrives mid-round at 200 s and is admitted at the 360 s boundary.
        // Its Arrival event must carry 200 s and sit *before* the earlier
        // completion in the log, keeping the event stream time-sorted.
        let jobs = vec![small_job(0, 0.0, 2, 154), small_job(1, 200.0, 1, 10)];
        let out = Simulation::new(cluster(), jobs, no_penalty_config())
            .run(FifoV100)
            .unwrap();
        assert_eq!(out.completed_jobs(), 2);
        let arrivals: Vec<(f64, JobId)> = out
            .events()
            .iter()
            .filter_map(|e| match *e {
                SimEvent::Arrival { time, job } => Some((time, job)),
                _ => None,
            })
            .collect();
        assert_eq!(arrivals, vec![(0.0, JobId(0)), (200.0, JobId(1))]);
        // The job still waits for the boundary to be scheduled.
        assert_eq!(out.records[1].first_scheduled, Some(360.0));
        crate::event::check_lifecycle(out.events(), 2).expect("time-sorted log");
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn sparse_job_ids_rejected() {
        let jobs = vec![small_job(5, 0.0, 1, 1)];
        Simulation::new(cluster(), jobs, SimConfig::default());
    }

    struct OverAllocator;
    impl Scheduler for OverAllocator {
        fn name(&self) -> &str {
            "Over"
        }
        fn schedule(&mut self, ctx: &SchedulerContext<'_>) -> Allocation {
            let mut a = Allocation::empty();
            // 99 GPUs on machine 0 type 0: definitely over capacity.
            for s in ctx.jobs {
                a.set(
                    s.job.id,
                    JobPlacement::single(MachineId(0), GpuTypeId(0), 99),
                );
            }
            a
        }
    }

    #[test]
    fn invalid_allocation_is_an_error_not_a_panic() {
        let jobs = vec![small_job(0, 0.0, 99, 1)];
        let err = Simulation::new(cluster(), jobs, SimConfig::default())
            .run(OverAllocator)
            .unwrap_err();
        match &err {
            SimError::InvalidAllocation {
                scheduler, round, ..
            } => {
                assert_eq!(scheduler, "Over");
                assert_eq!(*round, 1);
            }
            other => panic!("expected InvalidAllocation, got {other:?}"),
        }
        assert!(err.to_string().contains("invalid allocation"));
    }

    #[test]
    fn invalid_config_is_an_error() {
        let jobs = vec![small_job(0, 0.0, 1, 1)];
        let cfg = SimConfig {
            round_length: 0.0,
            ..SimConfig::default()
        };
        let err = Simulation::new(cluster(), jobs, cfg)
            .run(FifoV100)
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)), "{err:?}");

        let jobs = vec![small_job(0, 0.0, 1, 1)];
        let cfg = SimConfig {
            straggler: Some(StragglerModel {
                slowdown: 0.0,
                ..StragglerModel::default()
            }),
            ..SimConfig::default()
        };
        let err = Simulation::new(cluster(), jobs, cfg)
            .run(FifoV100)
            .unwrap_err();
        assert!(err.to_string().contains("straggler"), "{err}");

        let jobs = vec![small_job(0, 0.0, 1, 1)];
        let cfg = SimConfig {
            failure: Some(FailureModel {
                mtbf_rounds: 0.0,
                ..FailureModel::default()
            }),
            ..SimConfig::default()
        };
        let err = Simulation::new(cluster(), jobs, cfg)
            .run(FifoV100)
            .unwrap_err();
        assert!(err.to_string().contains("failure"), "{err}");
    }

    /// A scheduler that keeps placing on machine 0 regardless of its
    /// availability — the engine must strip those placements while the
    /// machine is down.
    struct StubbornV100;
    impl Scheduler for StubbornV100 {
        fn name(&self) -> &str {
            "Stubborn"
        }
        fn schedule(&mut self, ctx: &SchedulerContext<'_>) -> Allocation {
            let mut alloc = Allocation::empty();
            let v100 = ctx.cluster.catalog().lookup("V100").expect("V100");
            for s in ctx.jobs {
                alloc.set(
                    s.job.id,
                    JobPlacement::single(MachineId(0), v100, s.job.gang),
                );
            }
            alloc
        }
    }

    fn failure_config(mtbf: f64, mttr: f64, seed: u64) -> SimConfig {
        SimConfig {
            penalty: PreemptionPenalty::None,
            comm: CommCostModel::free(),
            failure: Some(FailureModel {
                mtbf_rounds: mtbf,
                mttr_rounds: mttr,
                seed,
            }),
            max_rounds: 2_000,
            ..SimConfig::default()
        }
    }

    #[test]
    fn failures_evict_and_delay_but_jobs_still_finish() {
        // Aggressive failures against a scheduler that never moves off the
        // dead machine: the job only progresses while machine 0 is up, and
        // every failure evicts it and rolls back the failed round.
        let jobs = vec![small_job(0, 0.0, 2, 2_000)];
        let healthy = Simulation::new(cluster(), jobs.clone(), no_penalty_config())
            .run(StubbornV100)
            .unwrap();
        let out = Simulation::new(cluster(), jobs, failure_config(5.0, 3.0, 1))
            .run(StubbornV100)
            .unwrap();
        assert_eq!(out.completed_jobs(), 1);
        assert!(out.evictions() > 0, "no evictions at mtbf=5");
        assert!(out.machine_failures() > 0);
        assert!(
            out.records[0].jct().unwrap() > healthy.records[0].jct().unwrap(),
            "failures must delay completion"
        );
        crate::event::check_lifecycle(out.events(), 1).expect("valid lifecycle under failures");
    }

    #[test]
    fn eviction_rolls_back_the_lost_round() {
        // Deterministically fail machine 0 in round 2 via a model with
        // mtbf=1 (fails in the first stepped round after repair).
        let jobs = vec![small_job(0, 0.0, 2, 2_000)];
        let out = Simulation::new(cluster(), jobs, failure_config(1.0, 1.0, 0))
            .run(StubbornV100)
            .unwrap();
        // With mtbf_rounds = 1 every up-round immediately fails the
        // machine, so the job can never run: it times out with zero
        // service. The eviction path must still produce a valid log.
        assert!(out.timed_out);
        crate::event::check_lifecycle(out.events(), 1).expect("valid lifecycle");
    }

    #[test]
    fn failure_injection_is_deterministic() {
        let jobs: Vec<Job> = (0..4).map(|i| small_job(i, 0.0, 1, 400)).collect();
        let run = |seed: u64| {
            Simulation::new(cluster(), jobs.clone(), failure_config(10.0, 4.0, seed))
                .run(FifoV100)
                .unwrap()
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a.jcts(), b.jcts());
        assert_eq!(a.events(), b.events());
        let c = run(8);
        assert!(a.jcts() != c.jcts() || a.events() != c.events());
    }

    #[test]
    fn disabled_failure_model_changes_nothing() {
        let jobs: Vec<Job> = (0..4).map(|i| small_job(i, 0.0, 1, 200)).collect();
        let base = Simulation::new(cluster(), jobs.clone(), no_penalty_config())
            .run(FifoV100)
            .unwrap();
        let cfg = SimConfig {
            failure: None,
            ..no_penalty_config()
        };
        let with_none = Simulation::new(cluster(), jobs, cfg).run(FifoV100).unwrap();
        assert_eq!(base.jcts(), with_none.jcts());
        assert_eq!(base.events(), with_none.events());
    }

    #[test]
    fn nan_arrival_sorts_last_and_never_admits() {
        // Regression for the NaN-unsafe arrival comparator: a malformed
        // trace with a NaN arrival used to panic inside sort_by. With
        // total_cmp the job sorts last, is never admitted (NaN fails every
        // `arrival <= boundary` check), and the run ends at the round cap
        // with an unstarted record instead of aborting.
        // Job::new validates arrivals, so corrupt the field after
        // construction — mimicking a trace deserialized from a hand-edited
        // file that bypassed the constructor.
        let mut bad = small_job(1, 0.0, 1, 1);
        bad.arrival = f64::NAN;
        let jobs = vec![small_job(0, 0.0, 1, 1), bad];
        let cfg = SimConfig {
            max_rounds: 3,
            ..no_penalty_config()
        };
        let out = Simulation::new(cluster(), jobs, cfg).run(FifoV100).unwrap();
        assert!(out.timed_out);
        assert_eq!(out.completed_jobs(), 1);
        assert!(out.records[1].first_scheduled.is_none());
        assert!(out.records[1].finish.is_none());
    }

    #[test]
    fn rounds_report_bookkeeping_and_no_phases_for_plain_policies() {
        // FifoV100 does not override last_decision_phases: every round must
        // carry None phases and a finite bookkeeping time.
        let jobs = vec![small_job(0, 0.0, 2, 100)];
        let out = Simulation::new(cluster(), jobs, no_penalty_config())
            .run(FifoV100)
            .unwrap();
        assert!(!out.rounds.is_empty());
        for r in &out.rounds {
            assert!(r.phases.is_none());
            assert!(r.bookkeeping_seconds >= 0.0);
        }
        assert_eq!(out.dp_budget_exhausted_rounds(), 0);
        assert_eq!(out.reused_rounds(), 0);
    }

    #[test]
    fn job_rate_applies_comm_factor() {
        let c = cluster();
        let job = small_job(0, 0.0, 2, 1);
        let v100 = c.catalog().lookup("V100").unwrap();
        let spread = JobPlacement::from_slices([
            hadar_cluster::PlacementSlice {
                machine: MachineId(0),
                gpu: v100,
                count: 1,
            },
            hadar_cluster::PlacementSlice {
                machine: MachineId(1),
                gpu: v100,
                count: 1,
            },
        ]);
        let comm = CommCostModel {
            throughput_penalty_per_hop: 0.1,
            price_surcharge_per_hop: 0.0,
            rack_penalty_per_hop: 0.0,
        };
        let r = job_rate(&job, &spread, &comm);
        assert!((r - 2.0 * 120.0 * 0.9).abs() < 1e-9);
        assert_eq!(job_rate(&job, &JobPlacement::empty(), &comm), 0.0);
    }
}

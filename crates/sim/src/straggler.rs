//! Straggler injection (§IV-A-1: Hadar's "awareness of straggling tasks and
//! the strategic task allocation policy").
//!
//! Real clusters exhibit transient per-machine slowdowns — thermal
//! throttling, PCIe contention, noisy neighbours on the storage path. The
//! model here is a two-state Markov process per machine: a healthy machine
//! starts straggling with probability [`StragglerModel::incidence`] per
//! round, runs all its GPUs at [`StragglerModel::slowdown`] of nominal
//! speed, and recovers after a geometrically distributed number of rounds
//! (mean [`StragglerModel::mean_duration_rounds`]). Evolution is driven by
//! a dedicated seeded RNG, so simulations remain fully deterministic.
//!
//! The simulator multiplies each *task's* rate by its host machine's factor
//! before the gang's synchronization barrier (Eq. 1b), so one straggling
//! task drags the whole gang — unless the scheduler reacts. The current
//! factors are exposed to schedulers via
//! [`crate::SchedulerContext::machine_factors`]; Hadar folds them into its
//! candidate evaluation and migrates off slow machines, while the
//! heterogeneity-oblivious baselines keep paying the penalty.

use hadar_rng::{Rng, StdRng};

/// Parameters of the per-machine straggler process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StragglerModel {
    /// Probability a healthy machine starts straggling in a given round.
    pub incidence: f64,
    /// Throughput multiplier while straggling (0 < slowdown ≤ 1).
    pub slowdown: f64,
    /// Mean straggle duration in rounds (geometric recovery).
    pub mean_duration_rounds: f64,
    /// Seed for the straggler RNG (independent of the trace seed).
    pub seed: u64,
}

impl Default for StragglerModel {
    fn default() -> Self {
        Self {
            incidence: 0.02,
            slowdown: 0.4,
            mean_duration_rounds: 5.0,
            seed: 0,
        }
    }
}

impl StragglerModel {
    /// Check the parameters, returning a description of the first problem.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.incidence) {
            return Err(format!(
                "incidence must be a probability (got {})",
                self.incidence
            ));
        }
        if !(self.slowdown > 0.0 && self.slowdown <= 1.0) {
            return Err(format!(
                "slowdown must be in (0, 1] (got {})",
                self.slowdown
            ));
        }
        if !self.mean_duration_rounds.is_finite() || self.mean_duration_rounds < 1.0 {
            return Err(format!(
                "mean_duration_rounds must be finite and >= 1 (got {})",
                self.mean_duration_rounds
            ));
        }
        Ok(())
    }
}

/// Evolving straggler state for a cluster of `num_machines` machines.
#[derive(Debug, Clone)]
pub struct StragglerState {
    model: Option<StragglerModel>,
    rng: StdRng,
    /// Remaining straggle rounds per machine (0 = healthy).
    remaining: Vec<u32>,
    factors: Vec<f64>,
}

impl StragglerState {
    /// Create the state; `model = None` disables injection (all factors 1).
    ///
    /// Parameters are assumed valid — the engine checks
    /// [`StragglerModel::validate`] via `SimConfig` before construction, so
    /// a bad sweep parameter surfaces as a `SimError`, not an abort.
    pub fn new(model: Option<StragglerModel>, num_machines: usize) -> Self {
        let seed = model.map_or(0, |m| m.seed);
        Self {
            model,
            rng: StdRng::seed_from_u64(seed ^ 0x5744_4C53_7472_6167),
            remaining: vec![0; num_machines],
            factors: vec![1.0; num_machines],
        }
    }

    /// Advance one round and return the per-machine throughput factors.
    pub fn step(&mut self) -> &[f64] {
        let Some(model) = self.model else {
            return &self.factors;
        };
        for (left, factor) in self.remaining.iter_mut().zip(self.factors.iter_mut()) {
            if *left > 0 {
                *left -= 1;
                *factor = if *left > 0 { model.slowdown } else { 1.0 };
            } else if self.rng.gen_f64() < model.incidence {
                // Geometric duration with the configured mean, at least 1.
                let p = 1.0 / model.mean_duration_rounds;
                let u: f64 = self.rng.gen_f64().max(f64::MIN_POSITIVE);
                let dur = ((u.ln() / (1.0 - p).ln()).ceil()).max(1.0) as u32;
                *left = dur;
                *factor = model.slowdown;
            } else {
                *factor = 1.0;
            }
        }
        &self.factors
    }

    /// Current factors (without advancing).
    pub fn factors(&self) -> &[f64] {
        &self.factors
    }

    /// Number of machines currently straggling.
    pub fn num_straggling(&self) -> usize {
        self.factors.iter().filter(|&&f| f < 1.0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_model_is_identity() {
        let mut s = StragglerState::new(None, 4);
        for _ in 0..10 {
            assert!(s.step().iter().all(|&f| f == 1.0));
        }
        assert_eq!(s.num_straggling(), 0);
    }

    #[test]
    fn deterministic_under_seed() {
        let model = StragglerModel {
            incidence: 0.3,
            ..StragglerModel::default()
        };
        let run = |seed: u64| -> Vec<Vec<f64>> {
            let mut s = StragglerState::new(Some(StragglerModel { seed, ..model }), 6);
            (0..50).map(|_| s.step().to_vec()).collect()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn stragglers_occur_and_recover() {
        let mut s = StragglerState::new(
            Some(StragglerModel {
                incidence: 0.5,
                slowdown: 0.25,
                mean_duration_rounds: 2.0,
                seed: 3,
            }),
            8,
        );
        let mut saw_straggle = false;
        let mut saw_recovery_after_straggle = false;
        let mut prev_straggling = 0;
        for _ in 0..200 {
            s.step();
            let now = s.num_straggling();
            if now > 0 {
                saw_straggle = true;
                assert!(s.factors().iter().all(|&f| f == 1.0 || f == 0.25));
            }
            if prev_straggling > 0 && now < prev_straggling {
                saw_recovery_after_straggle = true;
            }
            prev_straggling = now;
        }
        assert!(saw_straggle, "no straggle event in 200 rounds at p=0.5");
        assert!(saw_recovery_after_straggle, "machines never recovered");
    }

    #[test]
    fn incidence_rate_roughly_matches() {
        let mut s = StragglerState::new(
            Some(StragglerModel {
                incidence: 0.1,
                slowdown: 0.5,
                mean_duration_rounds: 1.0,
                seed: 9,
            }),
            1,
        );
        // With mean duration 1, the fraction of straggling rounds ≈ the
        // incidence probability.
        let rounds = 20_000;
        let mut straggling = 0;
        for _ in 0..rounds {
            s.step();
            straggling += s.num_straggling();
        }
        let frac = straggling as f64 / rounds as f64;
        assert!((frac - 0.1).abs() < 0.02, "fraction {frac}");
    }

    #[test]
    fn invalid_slowdown_rejected() {
        let err = StragglerModel {
            slowdown: 0.0,
            ..StragglerModel::default()
        }
        .validate()
        .unwrap_err();
        assert!(err.contains("slowdown"), "{err}");
        assert!(StragglerModel::default().validate().is_ok());
        assert!(StragglerModel {
            incidence: 1.5,
            ..StragglerModel::default()
        }
        .validate()
        .unwrap_err()
        .contains("incidence"));
    }
}

//! Structured simulation errors.
//!
//! The engine used to `panic!` on policy bugs (invalid allocations,
//! inconsistent records), which aborted the whole process — under
//! [`crate::SweepRunner`] that meant one bad cell killed every worker
//! thread of a parallel sweep. These paths now surface as [`SimError`]s:
//! the failing cell degrades into an error row and the rest of the sweep
//! completes.

use std::fmt;

use hadar_cluster::JobId;

/// Why a simulation run could not produce a [`crate::SimOutcome`].
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The [`crate::SimConfig`] is unusable (non-positive round length,
    /// invalid straggler or failure model parameters, …).
    InvalidConfig(String),
    /// The scheduler allocated GPUs to a job that is not in the active set
    /// (unknown, finished, or not yet admitted).
    UnknownJobAllocated {
        /// Scheduler display name.
        scheduler: String,
        /// The offending job id.
        job: JobId,
        /// 1-based round number in which the violation occurred.
        round: u64,
    },
    /// The scheduler returned an allocation violating capacity (1d) or gang
    /// (1e) constraints.
    InvalidAllocation {
        /// Scheduler display name.
        scheduler: String,
        /// 1-based round number in which the violation occurred.
        round: u64,
        /// The validation failure, rendered.
        detail: String,
    },
    /// Internal bookkeeping inconsistency: a job finished the run without a
    /// record. Indicates an engine bug rather than a policy bug.
    MissingRecord {
        /// The job without a record.
        job: JobId,
    },
    /// The engine caught a mid-round invariant violation (e.g. a non-empty
    /// placement with no positive bottleneck rate). Like
    /// [`SimError::MissingRecord`] this indicates an engine or model bug,
    /// but surfaces as an error row instead of a panicked sweep cell.
    InvariantViolation {
        /// Scheduler display name.
        scheduler: String,
        /// 1-based round number in which the violation was detected.
        round: u64,
        /// The broken invariant, rendered.
        detail: String,
    },
    /// A sweep cell panicked; the payload is the panic message. Produced by
    /// [`crate::SweepRunner`], never by the engine itself.
    CellPanicked(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig(msg) => write!(f, "invalid simulation config: {msg}"),
            SimError::UnknownJobAllocated {
                scheduler,
                job,
                round,
            } => write!(
                f,
                "{scheduler}: allocated unknown/finished job {job} in round {round}"
            ),
            SimError::InvalidAllocation {
                scheduler,
                round,
                detail,
            } => write!(
                f,
                "{scheduler}: invalid allocation in round {round}: {detail}"
            ),
            SimError::MissingRecord { job } => {
                write!(f, "job {job} finished the run without a record")
            }
            SimError::InvariantViolation {
                scheduler,
                round,
                detail,
            } => write!(
                f,
                "{scheduler}: engine invariant violated in round {round}: {detail}"
            ),
            SimError::CellPanicked(msg) => write!(f, "sweep cell panicked: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Result alias used throughout the simulator.
pub type SimResult = Result<crate::SimOutcome, SimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::InvalidAllocation {
            scheduler: "Over".into(),
            round: 3,
            detail: "machine 0 over capacity".into(),
        };
        let s = e.to_string();
        assert!(s.contains("Over"), "{s}");
        assert!(s.contains("invalid allocation"), "{s}");
        assert!(s.contains("round 3"), "{s}");

        assert!(SimError::InvalidConfig("bad".into())
            .to_string()
            .contains("bad"));
        assert!(SimError::CellPanicked("boom".into())
            .to_string()
            .contains("boom"));
        assert!(SimError::MissingRecord { job: JobId(4) }
            .to_string()
            .contains("J4"));
        assert!(SimError::UnknownJobAllocated {
            scheduler: "X".into(),
            job: JobId(1),
            round: 1
        }
        .to_string()
        .contains("unknown"));

        let iv = SimError::InvariantViolation {
            scheduler: "Fifo".into(),
            round: 9,
            detail: "zero-rate placement for J2".into(),
        };
        let s = iv.to_string();
        assert!(s.contains("Fifo"), "{s}");
        assert!(s.contains("round 9"), "{s}");
        assert!(s.contains("invariant"), "{s}");
    }
}

//! Parallel experiment execution.
//!
//! Figure sweeps (λ sweeps, round-length sweeps, multiple seeds) run many
//! independent simulations; [`run_parallel`] fans them out over OS threads
//! with `crossbeam::scope` so borrowed configuration can be shared without
//! `'static` bounds.

use crate::stats::SimOutcome;

/// Run `tasks` (each producing one [`SimOutcome`]) across up to
/// `max_threads` worker threads, preserving input order in the result.
///
/// Each task is a closure so callers can capture per-run configuration
/// (seed, scheduler, round length) by move.
pub fn run_parallel<F>(tasks: Vec<F>, max_threads: usize) -> Vec<SimOutcome>
where
    F: FnOnce() -> SimOutcome + Send,
{
    assert!(max_threads >= 1);
    let n = tasks.len();
    let mut results: Vec<Option<SimOutcome>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    if n == 0 {
        return Vec::new();
    }

    // Work-stealing by atomic index over a shared task list.
    let tasks: Vec<parking_lot::Mutex<Option<F>>> = tasks
        .into_iter()
        .map(|t| parking_lot::Mutex::new(Some(t)))
        .collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<parking_lot::Mutex<Option<SimOutcome>>> =
        results.into_iter().map(parking_lot::Mutex::new).collect();

    let workers = max_threads.min(n);
    crossbeam::scope(|s| {
        for _ in 0..workers {
            s.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let task = tasks[i].lock().take().expect("each task taken once");
                let outcome = task();
                *slots[i].lock() = Some(outcome);
            });
        }
    })
    .expect("simulation worker panicked");

    slots
        .into_iter()
        .map(|m| m.into_inner().expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{SimConfig, Simulation};
    use crate::scheduler::{Scheduler, SchedulerContext};
    use hadar_cluster::{Allocation, Cluster, JobPlacement, MachineId};
    use hadar_workload::{Job, JobId};

    struct Fifo;
    impl Scheduler for Fifo {
        fn name(&self) -> &str {
            "Fifo"
        }
        fn schedule(&mut self, ctx: &SchedulerContext<'_>) -> Allocation {
            let mut alloc = Allocation::empty();
            let v100 = ctx.cluster.catalog().lookup("V100").unwrap();
            let mut free = ctx.cluster.capacity(MachineId(0), v100);
            for s in ctx.jobs {
                if s.job.gang <= free {
                    alloc.set(
                        s.job.id,
                        JobPlacement::single(MachineId(0), v100, s.job.gang),
                    );
                    free -= s.job.gang;
                }
            }
            alloc
        }
    }

    fn one_sim(epochs: u64) -> SimOutcome {
        let cluster = Cluster::paper_simulation();
        let jobs = vec![Job::for_model(
            JobId(0),
            hadar_workload::DlTask::ResNet18,
            cluster.catalog(),
            0.0,
            1,
            epochs,
        )];
        Simulation::new(cluster, jobs, SimConfig::default()).run(Fifo)
    }

    #[test]
    fn parallel_results_preserve_order() {
        let tasks: Vec<Box<dyn FnOnce() -> SimOutcome + Send>> = (1..=6)
            .map(|i| {
                Box::new(move || one_sim(i * 50)) as Box<dyn FnOnce() -> SimOutcome + Send>
            })
            .collect();
        let out = run_parallel(tasks, 3);
        assert_eq!(out.len(), 6);
        // Larger epoch counts finish later: JCTs must be non-decreasing in
        // input order.
        let jcts: Vec<f64> = out.iter().map(|o| o.mean_jct()).collect();
        assert!(jcts.windows(2).all(|w| w[0] <= w[1]), "{jcts:?}");
    }

    #[test]
    fn empty_task_list() {
        let tasks: Vec<Box<dyn FnOnce() -> SimOutcome + Send>> = Vec::new();
        assert!(run_parallel(tasks, 4).is_empty());
    }

    #[test]
    fn single_thread_works() {
        let tasks: Vec<Box<dyn FnOnce() -> SimOutcome + Send>> =
            vec![Box::new(|| one_sim(10))];
        let out = run_parallel(tasks, 1);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].completed_jobs(), 1);
    }
}

//! Parallel experiment execution.
//!
//! Figure sweeps (λ sweeps, round-length sweeps, multiple seeds, scheduler
//! comparisons) run many independent simulation *cells*; the [`SweepRunner`]
//! fans them out over a scoped OS-thread pool (`std::thread::scope`, so
//! borrowed configuration can be captured without `'static` bounds),
//! collects every cell's [`SimResult`] in deterministic cell order, and
//! reports per-cell wall-clock time.
//!
//! Cells are fallible: an invalid configuration or a policy bug surfaces as
//! a [`SimError`] row for that cell, and a cell that *panics* is caught and
//! degraded into [`SimError::CellPanicked`] — one bad cell no longer kills
//! every worker of a `--threads N` sweep.
//!
//! With `threads == 1` the runner degrades to a strict serial loop on the
//! caller's thread — the reference path. Because each cell is an
//! independent deterministic simulation and results are stored by cell
//! index, the parallel path produces identical outcomes (and therefore
//! byte-identical result CSVs) to the serial one; only wall-clock differs.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::error::{SimError, SimResult};
use crate::stats::SimOutcome;

/// One completed sweep cell: the simulation result (outcome or structured
/// error) plus how long the cell took to execute on its worker thread.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// The simulation outcome, or the error that degraded this cell.
    pub outcome: SimResult,
    /// Wall-clock seconds the cell spent executing (excludes queueing).
    pub wall_seconds: f64,
}

/// Scoped thread-pool executor for independent simulation cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepRunner {
    threads: usize,
}

impl Default for SweepRunner {
    fn default() -> Self {
        Self::from_env()
    }
}

impl SweepRunner {
    /// A runner with exactly `threads` workers (1 = serial fallback).
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "SweepRunner needs at least one thread");
        Self { threads }
    }

    /// The strict serial reference runner.
    pub fn serial() -> Self {
        Self { threads: 1 }
    }

    /// Thread count from the `HADAR_THREADS` environment variable if set
    /// (and ≥ 1), else `available_parallelism()` capped at 16.
    pub fn from_env() -> Self {
        let threads = std::env::var("HADAR_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(4)
                    .min(16)
            });
        Self { threads }
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Execute every cell and return the timed results in cell order.
    ///
    /// Cells are closures so callers can capture per-cell configuration
    /// (scheduler, seed, arrival pattern, round length) by move. A cell
    /// returning `Err` — or panicking — degrades into an error result for
    /// that cell only; all other cells still complete.
    pub fn run<F>(&self, cells: Vec<F>) -> Vec<CellResult>
    where
        F: FnOnce() -> SimResult + Send,
    {
        let execute = |cell: F| {
            let start = Instant::now();
            let outcome = match catch_unwind(AssertUnwindSafe(cell)) {
                Ok(result) => result,
                Err(payload) => Err(SimError::CellPanicked(panic_message(payload))),
            };
            CellResult {
                outcome,
                wall_seconds: start.elapsed().as_secs_f64(),
            }
        };

        let n = cells.len();
        if n == 0 {
            return Vec::new();
        }
        if self.threads == 1 || n == 1 {
            // Serial fallback: caller's thread, strict input order.
            return cells.into_iter().map(execute).collect();
        }

        // Work-stealing by atomic index over a shared cell list; each
        // worker writes its result into the slot of the cell it claimed,
        // so output order never depends on thread interleaving.
        let cells: Vec<Mutex<Option<F>>> = cells.into_iter().map(|c| Mutex::new(Some(c))).collect();
        let mut slots: Vec<Mutex<Option<CellResult>>> = Vec::with_capacity(n);
        slots.resize_with(n, || Mutex::new(None));
        let next = AtomicUsize::new(0);

        let workers = self.threads.min(n);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let cell = cells[i]
                        .lock()
                        .expect("cell mutex poisoned")
                        .take()
                        .expect("each cell taken once");
                    *slots[i].lock().expect("slot mutex poisoned") = Some(execute(cell));
                });
            }
        });

        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("slot mutex poisoned")
                    .expect("every slot filled")
            })
            .collect()
    }

    /// Execute every cell and return just the outcomes in cell order.
    ///
    /// # Panics
    /// Panics if any cell fails — use [`SweepRunner::run`] when errors
    /// should degrade gracefully.
    pub fn run_outcomes<F>(&self, cells: Vec<F>) -> Vec<SimOutcome>
    where
        F: FnOnce() -> SimResult + Send,
    {
        self.run(cells)
            .into_iter()
            .map(|c| {
                c.outcome
                    .unwrap_or_else(|e| panic!("sweep cell failed: {e}"))
            })
            .collect()
    }
}

/// Render a panic payload as a message (the common `&str` / `String`
/// payloads verbatim, anything else a placeholder).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Run `tasks` (each producing one [`SimResult`]) across up to
/// `max_threads` worker threads, preserving input order in the result.
///
/// Compatibility shim over [`SweepRunner::run_outcomes`]; panics if any
/// cell fails.
pub fn run_parallel<F>(tasks: Vec<F>, max_threads: usize) -> Vec<SimOutcome>
where
    F: FnOnce() -> SimResult + Send,
{
    SweepRunner::new(max_threads).run_outcomes(tasks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{SimConfig, Simulation};
    use crate::scheduler::{Scheduler, SchedulerContext};
    use hadar_cluster::{Allocation, Cluster, GpuTypeId, JobPlacement, MachineId};
    use hadar_workload::{Job, JobId};

    struct Fifo;
    impl Scheduler for Fifo {
        fn name(&self) -> &str {
            "Fifo"
        }
        fn schedule(&mut self, ctx: &SchedulerContext<'_>) -> Allocation {
            let mut alloc = Allocation::empty();
            let v100 = ctx.cluster.catalog().lookup("V100").unwrap();
            let mut free = ctx.cluster.capacity(MachineId(0), v100);
            for s in ctx.jobs {
                if s.job.gang <= free {
                    alloc.set(
                        s.job.id,
                        JobPlacement::single(MachineId(0), v100, s.job.gang),
                    );
                    free -= s.job.gang;
                }
            }
            alloc
        }
    }

    fn one_sim(epochs: u64) -> SimResult {
        let cluster = Cluster::paper_simulation();
        let jobs = vec![Job::for_model(
            JobId(0),
            hadar_workload::DlTask::ResNet18,
            cluster.catalog(),
            0.0,
            1,
            epochs,
        )];
        Simulation::new(cluster, jobs, SimConfig::default()).run(Fifo)
    }

    #[test]
    fn parallel_results_preserve_order() {
        let tasks: Vec<Box<dyn FnOnce() -> SimResult + Send>> = (1..=6)
            .map(|i| Box::new(move || one_sim(i * 50)) as Box<dyn FnOnce() -> SimResult + Send>)
            .collect();
        let out = run_parallel(tasks, 3);
        assert_eq!(out.len(), 6);
        // Larger epoch counts finish later: JCTs must be non-decreasing in
        // input order.
        let jcts: Vec<f64> = out.iter().map(|o| o.mean_jct()).collect();
        assert!(jcts.windows(2).all(|w| w[0] <= w[1]), "{jcts:?}");
    }

    #[test]
    fn empty_task_list() {
        let tasks: Vec<Box<dyn FnOnce() -> SimResult + Send>> = Vec::new();
        assert!(run_parallel(tasks, 4).is_empty());
    }

    #[test]
    fn single_thread_works() {
        let tasks: Vec<Box<dyn FnOnce() -> SimResult + Send>> = vec![Box::new(|| one_sim(10))];
        let out = run_parallel(tasks, 1);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].completed_jobs(), 1);
    }

    fn cell_jcts(runner: &SweepRunner) -> Vec<Vec<f64>> {
        let cells: Vec<Box<dyn FnOnce() -> SimResult + Send>> = (1..=8)
            .map(|i| Box::new(move || one_sim(i * 25)) as Box<dyn FnOnce() -> SimResult + Send>)
            .collect();
        runner
            .run(cells)
            .into_iter()
            .map(|c| c.outcome.unwrap().jcts())
            .collect()
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let serial = cell_jcts(&SweepRunner::serial());
        let parallel = cell_jcts(&SweepRunner::new(4));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn parallel_runs_are_deterministic() {
        let a = cell_jcts(&SweepRunner::new(4));
        let b = cell_jcts(&SweepRunner::new(4));
        assert_eq!(a, b);
    }

    #[test]
    fn cells_report_wall_clock() {
        let cells: Vec<Box<dyn FnOnce() -> SimResult + Send>> = vec![Box::new(|| one_sim(100))];
        let res = SweepRunner::new(2).run(cells);
        assert_eq!(res.len(), 1);
        assert!(res[0].wall_seconds >= 0.0);
        assert!(res[0].wall_seconds.is_finite());
    }

    /// A policy that over-allocates machine 0 — an invalid allocation the
    /// engine must turn into a [`SimError`], not a panic.
    struct OverAllocator;
    impl Scheduler for OverAllocator {
        fn name(&self) -> &str {
            "Over"
        }
        fn schedule(&mut self, ctx: &SchedulerContext<'_>) -> Allocation {
            let mut a = Allocation::empty();
            for s in ctx.jobs {
                a.set(
                    s.job.id,
                    JobPlacement::single(MachineId(0), GpuTypeId(0), 99),
                );
            }
            a
        }
    }

    fn bad_cell() -> SimResult {
        let cluster = Cluster::paper_simulation();
        let jobs = vec![Job::for_model(
            JobId(0),
            hadar_workload::DlTask::ResNet18,
            cluster.catalog(),
            0.0,
            99,
            10,
        )];
        Simulation::new(cluster, jobs, SimConfig::default()).run(OverAllocator)
    }

    #[test]
    fn invalid_allocation_degrades_one_cell_not_the_sweep() {
        for threads in [1, 4] {
            let cells: Vec<Box<dyn FnOnce() -> SimResult + Send>> = vec![
                Box::new(|| one_sim(10)),
                Box::new(bad_cell),
                Box::new(|| one_sim(20)),
                Box::new(|| one_sim(30)),
            ];
            let res = SweepRunner::new(threads).run(cells);
            assert_eq!(res.len(), 4);
            assert!(res[0].outcome.is_ok());
            assert!(res[2].outcome.is_ok());
            assert!(res[3].outcome.is_ok());
            match res[1].outcome.as_ref().unwrap_err() {
                SimError::InvalidAllocation { scheduler, .. } => assert_eq!(scheduler, "Over"),
                other => panic!("expected InvalidAllocation, got {other:?}"),
            }
        }
    }

    #[test]
    fn panicking_cell_degrades_into_error() {
        let cells: Vec<Box<dyn FnOnce() -> SimResult + Send>> = vec![
            Box::new(|| one_sim(10)),
            Box::new(|| panic!("cell exploded")),
            Box::new(|| one_sim(20)),
        ];
        let res = SweepRunner::new(2).run(cells);
        assert_eq!(res.len(), 3);
        assert!(res[0].outcome.is_ok());
        assert!(res[2].outcome.is_ok());
        match res[1].outcome.as_ref().unwrap_err() {
            SimError::CellPanicked(msg) => assert!(msg.contains("exploded"), "{msg}"),
            other => panic!("expected CellPanicked, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        SweepRunner::new(0);
    }

    #[test]
    fn from_env_yields_at_least_one_thread() {
        assert!(SweepRunner::from_env().threads() >= 1);
    }
}

//! The scheduler interface every policy implements (Hadar, Gavel, Tiresias,
//! YARN-CS, and any user-defined policy).

use hadar_cluster::{Allocation, Availability, Cluster, CommCostModel, JobPlacement};
use hadar_workload::Job;

use crate::telemetry::Telemetry;

/// The simulator-maintained state of one job visible to schedulers.
#[derive(Debug, Clone)]
pub struct JobState {
    /// The immutable job record (`a_j`, `W_j`, `E_j·N_j`, `X_j^r`).
    pub job: Job,
    /// Iterations still required to finish.
    pub remaining_iters: f64,
    /// The placement the job held in the previous round (empty if it was not
    /// running). Schedulers use this to avoid gratuitous reallocation.
    pub placement: JobPlacement,
    /// Accumulated seconds of service received so far (used by LAS policies
    /// such as Tiresias: attained service = `gang · service_seconds`).
    pub service_seconds: f64,
    /// Time the job first received an allocation, if ever.
    pub first_scheduled: Option<f64>,
    /// Iterations completed in the most recent round (0 while idle). When a
    /// machine fails, jobs it hosted lose the work since their last
    /// round-boundary checkpoint — the engine rolls this amount back onto
    /// `remaining_iters`.
    pub last_round_iters: f64,
}

impl JobState {
    /// Fresh state for a newly admitted job.
    pub fn new(job: Job) -> Self {
        let remaining = job.total_iterations();
        Self {
            job,
            remaining_iters: remaining,
            placement: JobPlacement::empty(),
            service_seconds: 0.0,
            first_scheduled: None,
            last_round_iters: 0.0,
        }
    }

    /// Whether the job is currently holding GPUs.
    pub fn is_running(&self) -> bool {
        !self.placement.is_empty()
    }

    /// Attained service in GPU-seconds (the Tiresias priority input).
    pub fn attained_service(&self) -> f64 {
        self.job.gang as f64 * self.service_seconds
    }
}

/// Everything a scheduler may consult when making a round's decision.
#[derive(Debug)]
pub struct SchedulerContext<'a> {
    /// Current simulation time (start of the round), seconds.
    pub time: f64,
    /// Round length `L` in seconds.
    pub round_length: f64,
    /// The cluster topology.
    pub cluster: &'a Cluster,
    /// All admitted, unfinished jobs in arrival order.
    pub jobs: &'a [JobState],
    /// The communication cost model in effect.
    pub comm: &'a CommCostModel,
    /// Per-machine throughput factors this round (1.0 = healthy; < 1.0 =
    /// straggling, see [`crate::StragglerModel`]; 0.0 = down, see
    /// [`crate::FailureModel`]). May be empty when injection is disabled.
    pub machine_factors: &'a [f64],
    /// Per-machine up/down mask this round (see [`crate::FailureModel`]).
    /// Down machines must not be placed on; the engine strips any placement
    /// that touches one, so the job loses the round.
    pub availability: &'a Availability,
    /// The run's telemetry sink. Policies fold per-round counters into it
    /// via [`Telemetry::incr`] / [`Telemetry::gauge`]; every call is a no-op
    /// when the sink is disabled (the default), so emission must stay purely
    /// observational — never consult the sink to make a decision.
    pub telemetry: &'a Telemetry,
}

impl SchedulerContext<'_> {
    /// Convenience: per-type total free capacity if nothing were allocated
    /// this round (i.e. the full cluster minus failed machines —
    /// round-based schedulers place from scratch each round).
    pub fn capacity_of(&self, r: hadar_cluster::GpuTypeId) -> u32 {
        self.availability.available_of_type(self.cluster, r)
    }

    /// The throughput factor of machine `h` (1.0 when injection is
    /// disabled, 0.0 while the machine is down).
    pub fn machine_factor(&self, h: hadar_cluster::MachineId) -> f64 {
        self.machine_factors.get(h.index()).copied().unwrap_or(1.0)
    }

    /// Whether machine `h` is up this round.
    pub fn is_up(&self, h: hadar_cluster::MachineId) -> bool {
        self.availability.is_up(h)
    }
}

/// Per-phase wall-clock breakdown of one scheduling decision, reported by
/// schedulers that instrument their round path (Hadar does). All durations
/// are in seconds; phases not applicable to a policy stay 0.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DecisionPhases {
    /// Time spent recomputing marginal prices (Eq. 5).
    pub price_seconds: f64,
    /// Time spent generating/pricing placement candidates (cache misses and
    /// parallel prefetch batches).
    pub candidates_seconds: f64,
    /// Time spent in subset selection (DP or greedy admission) *excluding*
    /// candidate generation.
    pub select_seconds: f64,
    /// Whether the DP dual subroutine hit its node budget and fell back to
    /// (or was beaten by) the greedy floor this round.
    pub dp_budget_hit: bool,
    /// Whether the round reused the previous decision outright (the §IV-A-5
    /// incremental fast path) instead of re-optimizing.
    pub reused: bool,
}

/// A round-based cluster scheduler.
///
/// The simulator calls [`Scheduler::schedule`] once per round; the returned
/// allocation fully replaces the previous round's (jobs absent from it are
/// preempted). Implementations must respect capacity and gang constraints —
/// the engine validates every allocation and fails the run with a
/// [`crate::SimError`] on violations, treating them as policy bugs.
pub trait Scheduler {
    /// Display name used in reports ("Hadar", "Gavel", …).
    fn name(&self) -> &str;

    /// Decide the allocation for the round described by `ctx`.
    fn schedule(&mut self, ctx: &SchedulerContext<'_>) -> Allocation;

    /// Notification: `job` was admitted to the queue (called before the
    /// round's `schedule`).
    fn on_arrival(&mut self, _job: &Job) {}

    /// Notification: `job` finished during the previous round (called before
    /// the round's `schedule`).
    fn on_completion(&mut self, _job: hadar_cluster::JobId) {}

    /// Per-phase timing of the most recent [`Scheduler::schedule`] call, if
    /// the policy instruments its round path (`None` otherwise — the
    /// default). The engine polls this right after each decision and attaches
    /// it to the round record.
    fn last_decision_phases(&self) -> Option<DecisionPhases> {
        None
    }
}

/// Blanket impl so a mutable reference can be passed to
/// [`crate::Simulation::run`] while the caller keeps the scheduler (e.g. to
/// read post-run state like Hadar's competitive bound).
impl<S: Scheduler + ?Sized> Scheduler for &mut S {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn schedule(&mut self, ctx: &SchedulerContext<'_>) -> Allocation {
        (**self).schedule(ctx)
    }
    fn on_arrival(&mut self, job: &Job) {
        (**self).on_arrival(job)
    }
    fn on_completion(&mut self, job: hadar_cluster::JobId) {
        (**self).on_completion(job)
    }
    fn last_decision_phases(&self) -> Option<DecisionPhases> {
        (**self).last_decision_phases()
    }
}

/// Blanket impl so `Box<dyn Scheduler>` is itself a scheduler (lets the
/// experiment harness mix policies in one collection).
impl Scheduler for Box<dyn Scheduler + '_> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn schedule(&mut self, ctx: &SchedulerContext<'_>) -> Allocation {
        (**self).schedule(ctx)
    }
    fn on_arrival(&mut self, job: &Job) {
        (**self).on_arrival(job)
    }
    fn on_completion(&mut self, job: hadar_cluster::JobId) {
        (**self).on_completion(job)
    }
    fn last_decision_phases(&self) -> Option<DecisionPhases> {
        (**self).last_decision_phases()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hadar_cluster::JobId;
    use hadar_workload::DlTask;

    fn job() -> Job {
        let cluster = Cluster::paper_simulation();
        Job::for_model(JobId(0), DlTask::ResNet18, cluster.catalog(), 0.0, 2, 10)
    }

    #[test]
    fn fresh_state() {
        let j = job();
        let s = JobState::new(j.clone());
        assert_eq!(s.remaining_iters, j.total_iterations());
        assert!(!s.is_running());
        assert_eq!(s.attained_service(), 0.0);
        assert_eq!(s.first_scheduled, None);
    }

    #[test]
    fn attained_service_scales_with_gang() {
        let mut s = JobState::new(job());
        s.service_seconds = 100.0;
        assert_eq!(s.attained_service(), 200.0); // gang = 2
    }
}

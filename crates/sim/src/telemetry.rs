//! Structured per-round telemetry.
//!
//! A [`Telemetry`] sink travels through the engine and (via
//! [`crate::SchedulerContext`]) through every policy's round path. The
//! engine records one structured record per scheduling round — queue depth,
//! scheduling/preemption/eviction counts, allocation churn, the GPU-type
//! utilization split, failure-model state — and policies fold in their own
//! counters (Hadar price-vector stats and phase timings, Gavel LP solve and
//! warm-start counts, Tiresias queue depths, …) through [`Telemetry::incr`]
//! and [`Telemetry::gauge`].
//!
//! Output is twofold:
//!
//! * a JSONL stream (one JSON object per line: a `meta` header, one `round`
//!   record per round, a final `summary`), hand-rolled per DESIGN.md §8 (no
//!   serde) and validated by `hadar_metrics::telemetry`;
//! * cheap in-memory counters aggregated into a [`TelemetrySummary`] that
//!   the engine attaches to [`crate::SimOutcome`].
//!
//! **Zero-cost when disabled.** A disabled sink ([`Telemetry::disabled`],
//! which [`crate::Simulation::run`] uses) makes every method an early-return
//! no-op: no allocation, no formatting, no counter map. Telemetry is purely
//! observational either way — it never influences a scheduling decision, so
//! enabling it cannot perturb simulation outcomes, only record them.

use std::cell::RefCell;
use std::collections::BTreeMap;

use crate::scheduler::DecisionPhases;

/// The JSONL schema identifier written to every `meta` record.
pub const TELEMETRY_SCHEMA: &str = "hadar.telemetry.v1";

/// Deterministic aggregate counters of one run, attached to
/// [`crate::SimOutcome`]. Empty (`default`) when the sink was disabled.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySummary {
    /// Scheduling rounds recorded.
    pub rounds: u64,
    /// Jobs that went from holding no GPUs to holding GPUs, summed over
    /// rounds (first starts and restarts after preemption/eviction).
    pub jobs_scheduled: u64,
    /// Jobs whose allocation was taken away by a scheduling decision,
    /// summed over rounds.
    pub jobs_preempted: u64,
    /// Forced evictions caused by machine failures, summed over rounds.
    pub jobs_evicted: u64,
    /// Jobs completed, summed over rounds.
    pub jobs_completed: u64,
    /// Largest number of admitted, unfinished jobs seen at any round start.
    pub max_queue_depth: u32,
    /// Lifetime sums of every policy-emitted counter/gauge, keyed by the
    /// name the policy used (e.g. `gavel.lp_solves`).
    pub policy: BTreeMap<String, f64>,
}

/// Everything the engine hands the sink about one finished round.
#[derive(Debug, Clone)]
pub struct RoundSnapshot<'a> {
    /// 1-based round number.
    pub round: u64,
    /// Round start time, seconds.
    pub time: f64,
    /// Admitted, unfinished jobs at the round start (running + waiting).
    pub queue_depth: u32,
    /// Jobs holding GPUs this round.
    pub running: u32,
    /// Jobs that went from no GPUs to holding GPUs this round.
    pub scheduled: u32,
    /// Jobs whose allocation the scheduler took away this round.
    pub preempted: u32,
    /// Jobs forcibly evicted by machine failures this round.
    pub evicted: u32,
    /// Jobs that completed this round.
    pub completed: u32,
    /// Jobs admitted this round.
    pub arrivals: u32,
    /// Jobs whose allocation changed this round.
    pub reallocations: u32,
    /// Total GPU demand (Σ gang sizes) of the queue.
    pub demand_gpus: u32,
    /// Useful-compute GPU-seconds delivered this round.
    pub busy_gpu_seconds: f64,
    /// GPU-seconds held by jobs this round.
    pub held_gpu_seconds: f64,
    /// Machines down this round.
    pub machines_down: u32,
    /// Scheduler decision wall-clock seconds (non-deterministic).
    pub decision_seconds: f64,
    /// Per-phase decision breakdown, when the policy reports one.
    pub phases: Option<DecisionPhases>,
    /// Allocated GPUs per type this round, as `(type name, count)` in
    /// catalog order.
    pub util_by_type: &'a [(String, u32)],
}

#[derive(Debug, Default)]
struct Inner {
    /// Policy counters for the current round, drained by `record_round`.
    round: BTreeMap<String, f64>,
    /// The JSONL stream, one record per entry.
    lines: Vec<String>,
    summary: TelemetrySummary,
}

/// The telemetry sink. See the [module docs](self) for the contract.
#[derive(Debug, Default)]
pub struct Telemetry {
    enabled: bool,
    inner: RefCell<Inner>,
}

impl Telemetry {
    /// A no-op sink: every method early-returns. This is what
    /// [`crate::Simulation::run`] uses.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// A recording sink.
    pub fn enabled() -> Self {
        Self {
            enabled: true,
            inner: RefCell::default(),
        }
    }

    /// Whether the sink records anything. Policies computing something
    /// non-trivial purely for telemetry should gate on this.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Add `delta` to this round's counter `key` (created at 0). No-op when
    /// disabled. Counters drain into the round's JSONL record and accumulate
    /// into [`TelemetrySummary::policy`].
    pub fn incr(&self, key: &str, delta: f64) {
        if !self.enabled {
            return;
        }
        *self
            .inner
            .borrow_mut()
            .round
            .entry(key.to_owned())
            .or_insert(0.0) += delta;
    }

    /// Set this round's gauge `key` to `value` (last write wins). No-op when
    /// disabled.
    pub fn gauge(&self, key: &str, value: f64) {
        if !self.enabled {
            return;
        }
        self.inner.borrow_mut().round.insert(key.to_owned(), value);
    }

    /// Write the stream's `meta` header. Called once by the engine before
    /// the first round.
    pub fn begin_run(
        &self,
        scheduler: &str,
        total_gpus: u32,
        machines: usize,
        jobs: usize,
        round_length: f64,
    ) {
        if !self.enabled {
            return;
        }
        let line = format!(
            "{{\"type\":\"meta\",\"schema\":\"{TELEMETRY_SCHEMA}\",\"scheduler\":{},\
             \"total_gpus\":{total_gpus},\"machines\":{machines},\"jobs\":{jobs},\
             \"round_length_s\":{}}}",
            json_string(scheduler),
            json_number(round_length),
        );
        self.inner.borrow_mut().lines.push(line);
    }

    /// Record one finished round: emits the `round` JSONL record (draining
    /// this round's policy counters into it) and updates the in-memory
    /// aggregates.
    pub fn record_round(&self, snap: &RoundSnapshot<'_>) {
        if !self.enabled {
            return;
        }
        let mut inner = self.inner.borrow_mut();
        let round_counters = std::mem::take(&mut inner.round);
        for (k, v) in &round_counters {
            *inner.summary.policy.entry(k.clone()).or_insert(0.0) += v;
        }
        let s = &mut inner.summary;
        s.rounds += 1;
        s.jobs_scheduled += u64::from(snap.scheduled);
        s.jobs_preempted += u64::from(snap.preempted);
        s.jobs_evicted += u64::from(snap.evicted);
        s.jobs_completed += u64::from(snap.completed);
        s.max_queue_depth = s.max_queue_depth.max(snap.queue_depth);

        let mut line = format!(
            "{{\"type\":\"round\",\"round\":{},\"time_s\":{},\"queue_depth\":{},\
             \"running\":{},\"scheduled\":{},\"preempted\":{},\"evicted\":{},\
             \"completed\":{},\"arrivals\":{},\"reallocations\":{},\"demand_gpus\":{},\
             \"busy_gpu_s\":{},\"held_gpu_s\":{},\"machines_down\":{},\"decision_s\":{}",
            snap.round,
            json_number(snap.time),
            snap.queue_depth,
            snap.running,
            snap.scheduled,
            snap.preempted,
            snap.evicted,
            snap.completed,
            snap.arrivals,
            snap.reallocations,
            snap.demand_gpus,
            json_number(snap.busy_gpu_seconds),
            json_number(snap.held_gpu_seconds),
            snap.machines_down,
            json_number(snap.decision_seconds),
        );
        line.push_str(",\"util_by_type\":{");
        for (i, (name, count)) in snap.util_by_type.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&format!("{}:{count}", json_string(name)));
        }
        line.push('}');
        if let Some(p) = snap.phases {
            line.push_str(&format!(
                ",\"phases\":{{\"price_s\":{},\"candidates_s\":{},\"select_s\":{},\
                 \"dp_budget_hit\":{},\"reused\":{}}}",
                json_number(p.price_seconds),
                json_number(p.candidates_seconds),
                json_number(p.select_seconds),
                p.dp_budget_hit,
                p.reused,
            ));
        }
        if !round_counters.is_empty() {
            line.push_str(",\"policy\":{");
            for (i, (k, v)) in round_counters.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                line.push_str(&format!("{}:{}", json_string(k), json_number(*v)));
            }
            line.push('}');
        }
        line.push('}');
        inner.lines.push(line);
    }

    /// Write the final `summary` record. Called once by the engine after the
    /// last round.
    pub fn finish_run(&self) {
        if !self.enabled {
            return;
        }
        let mut inner = self.inner.borrow_mut();
        let s = &inner.summary;
        let mut line = format!(
            "{{\"type\":\"summary\",\"rounds\":{},\"scheduled\":{},\"preempted\":{},\
             \"evicted\":{},\"completed\":{},\"max_queue_depth\":{}",
            s.rounds,
            s.jobs_scheduled,
            s.jobs_preempted,
            s.jobs_evicted,
            s.jobs_completed,
            s.max_queue_depth,
        );
        if !s.policy.is_empty() {
            line.push_str(",\"policy\":{");
            for (i, (k, v)) in s.policy.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                line.push_str(&format!("{}:{}", json_string(k), json_number(*v)));
            }
            line.push('}');
        }
        line.push('}');
        inner.lines.push(line);
    }

    /// The aggregate counters so far (default/empty when disabled).
    pub fn summary(&self) -> TelemetrySummary {
        if !self.enabled {
            return TelemetrySummary::default();
        }
        self.inner.borrow().summary.clone()
    }

    /// Consume the sink, yielding the JSONL stream (`None` when disabled).
    pub fn into_stream(self) -> Option<String> {
        if !self.enabled {
            return None;
        }
        let lines = self.inner.into_inner().lines;
        let mut out = lines.join("\n");
        out.push('\n');
        Some(out)
    }
}

/// A JSON string literal (quoted, escaped).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A JSON number: Rust's shortest-roundtrip float formatting is valid JSON
/// for every finite value; non-finite values (which JSON cannot express)
/// render as `null`.
fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot<'a>(util: &'a [(String, u32)]) -> RoundSnapshot<'a> {
        RoundSnapshot {
            round: 1,
            time: 0.0,
            queue_depth: 3,
            running: 2,
            scheduled: 2,
            preempted: 0,
            evicted: 1,
            completed: 0,
            arrivals: 3,
            reallocations: 2,
            demand_gpus: 8,
            busy_gpu_seconds: 1440.0,
            held_gpu_seconds: 1440.0,
            machines_down: 1,
            decision_seconds: 0.002,
            phases: None,
            util_by_type: util,
        }
    }

    #[test]
    fn disabled_sink_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        t.incr("x", 1.0);
        t.gauge("y", 2.0);
        t.begin_run("S", 4, 1, 2, 360.0);
        t.record_round(&snapshot(&[]));
        t.finish_run();
        assert_eq!(t.summary(), TelemetrySummary::default());
        assert_eq!(t.into_stream(), None);
    }

    #[test]
    fn stream_has_meta_rounds_summary() {
        let t = Telemetry::enabled();
        t.begin_run("Test", 8, 2, 3, 360.0);
        t.incr("policy.widgets", 2.0);
        t.incr("policy.widgets", 1.0);
        t.gauge("policy.depth", 5.0);
        let util = vec![("K80".to_owned(), 0), ("V100".to_owned(), 4)];
        t.record_round(&snapshot(&util));
        t.finish_run();
        let summary = t.summary();
        assert_eq!(summary.rounds, 1);
        assert_eq!(summary.jobs_scheduled, 2);
        assert_eq!(summary.jobs_evicted, 1);
        assert_eq!(summary.max_queue_depth, 3);
        assert_eq!(summary.policy["policy.widgets"], 3.0);
        assert_eq!(summary.policy["policy.depth"], 5.0);

        let stream = t.into_stream().unwrap();
        let lines: Vec<&str> = stream.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"type\":\"meta\""), "{}", lines[0]);
        assert!(lines[0].contains(TELEMETRY_SCHEMA));
        assert!(lines[1].contains("\"type\":\"round\""), "{}", lines[1]);
        assert!(lines[1].contains("\"policy.widgets\":3"), "{}", lines[1]);
        assert!(lines[1].contains("\"util_by_type\":{\"K80\":0,\"V100\":4}"));
        assert!(lines[2].contains("\"type\":\"summary\""), "{}", lines[2]);
        assert!(lines[2].contains("\"evicted\":1"), "{}", lines[2]);
    }

    #[test]
    fn round_counters_drain_between_rounds() {
        let t = Telemetry::enabled();
        t.begin_run("Test", 4, 1, 1, 360.0);
        t.incr("k", 1.0);
        t.record_round(&snapshot(&[]));
        // Second round emits no counter: the record must carry no policy map.
        t.record_round(&snapshot(&[]));
        t.finish_run();
        assert_eq!(t.summary().policy["k"], 1.0);
        let stream = t.into_stream().unwrap();
        let rounds: Vec<&str> = stream
            .lines()
            .filter(|l| l.contains("\"type\":\"round\""))
            .collect();
        assert!(rounds[0].contains("\"policy\""));
        assert!(!rounds[1].contains("\"policy\""));
    }

    #[test]
    fn phases_render_when_present() {
        let t = Telemetry::enabled();
        let util: Vec<(String, u32)> = Vec::new();
        let mut snap = snapshot(&util);
        snap.phases = Some(DecisionPhases {
            price_seconds: 0.001,
            candidates_seconds: 0.002,
            select_seconds: 0.003,
            dp_budget_hit: true,
            reused: false,
        });
        t.record_round(&snap);
        let stream = t.into_stream().unwrap();
        assert!(stream.contains("\"dp_budget_hit\":true"), "{stream}");
        assert!(stream.contains("\"price_s\":0.001"), "{stream}");
    }

    #[test]
    fn json_helpers_escape_and_null() {
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("tab\there"), "\"tab\\there\"");
        assert_eq!(json_number(360.0), "360");
        assert_eq!(json_number(0.25), "0.25");
        assert_eq!(json_number(f64::NAN), "null");
        assert_eq!(json_number(f64::INFINITY), "null");
    }
}

//! Preemption / checkpoint-restart overhead models (§IV-A, Table IV).
//!
//! When a round-based preemptive scheduler moves a job, the job must save a
//! model checkpoint, restart its workers on the new GPUs, and reload the
//! checkpoint before resuming. The paper's simulator charges a flat
//! 10-second delay per reallocation, justified by prototype measurements
//! (Table IV). This module ships both that flat model and the calibrated
//! cost model behind Table IV:
//!
//! * save time = `checkpoint_mib / effective_bandwidth`,
//! * reallocation overhead = save + load + worker re-initialization,
//! * steady-state overhead (no move) = the periodic checkpoint save alone.

use hadar_workload::DlTask;

/// Calibrated checkpoint-cost model.
///
/// The prototype's gp2 SSD sustains 1000 MiB/s raw, but serialization,
/// small-file overhead, and framework stalls reduce the *effective*
/// checkpoint bandwidth; 250 MiB/s reproduces the Table IV percentages with
/// the model footprints in [`DlTask::checkpoint_mib`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckpointModel {
    /// Effective read/write bandwidth in MiB/s.
    pub effective_bandwidth_mib_s: f64,
}

impl Default for CheckpointModel {
    fn default() -> Self {
        Self {
            effective_bandwidth_mib_s: 250.0,
        }
    }
}

impl CheckpointModel {
    /// Seconds to save one checkpoint of `model`.
    pub fn save_seconds(&self, model: DlTask) -> f64 {
        model.checkpoint_mib() / self.effective_bandwidth_mib_s
    }

    /// Seconds to load one checkpoint of `model`.
    pub fn load_seconds(&self, model: DlTask) -> f64 {
        // Reads and writes run at the same effective bandwidth on gp2.
        self.save_seconds(model)
    }

    /// Total stall when the job is moved to a different allocation:
    /// save + load + worker re-initialization.
    pub fn reallocation_seconds(&self, model: DlTask) -> f64 {
        self.save_seconds(model) + self.load_seconds(model) + model.reinit_seconds()
    }

    /// Stall per round when the allocation is unchanged: the periodic
    /// checkpoint save only.
    pub fn steady_seconds(&self, model: DlTask) -> f64 {
        self.save_seconds(model)
    }

    /// Table IV entry: overhead as a percentage of a round of
    /// `round_seconds`, with (`true`) or without (`false`) reallocation.
    pub fn overhead_percent(&self, model: DlTask, round_seconds: f64, realloc: bool) -> f64 {
        let stall = if realloc {
            self.reallocation_seconds(model)
        } else {
            self.steady_seconds(model)
        };
        stall / round_seconds * 100.0
    }
}

/// The penalty the simulator charges a job whose allocation changed this
/// round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PreemptionPenalty {
    /// Flat delay in seconds per reallocation — the paper's simulation
    /// setting ("a 10-second delay for each job that has received a new
    /// allocation").
    Fixed(f64),
    /// Per-model delay from the calibrated [`CheckpointModel`].
    Modeled(CheckpointModel),
    /// No overhead (idealized ablations).
    None,
}

impl Default for PreemptionPenalty {
    fn default() -> Self {
        PreemptionPenalty::Fixed(10.0)
    }
}

impl PreemptionPenalty {
    /// Seconds of stall charged to `model` when its allocation changes.
    pub fn seconds(&self, model: DlTask) -> f64 {
        match *self {
            PreemptionPenalty::Fixed(s) => s,
            PreemptionPenalty::Modeled(m) => m.reallocation_seconds(model),
            PreemptionPenalty::None => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_without_reallocation() {
        // Paper Table IV, "w/o reallocation" column.
        let m = CheckpointModel::default();
        let expect = [
            (DlTask::ResNet50, 0.33),
            (DlTask::ResNet18, 0.21),
            (DlTask::Lstm, 0.87),
            (DlTask::CycleGan, 0.13),
            (DlTask::Transformer, 0.17),
        ];
        for (task, pct) in expect {
            let got = m.overhead_percent(task, 360.0, false);
            assert!((got - pct).abs() < 0.03, "{task}: {got:.2}% vs {pct}%");
        }
    }

    #[test]
    fn table4_with_reallocation() {
        // Paper Table IV, "w/ reallocation" column.
        let m = CheckpointModel::default();
        let expect = [
            (DlTask::ResNet50, 2.1),
            (DlTask::ResNet18, 1.29),
            (DlTask::Lstm, 2.01),
            (DlTask::CycleGan, 0.68),
            (DlTask::Transformer, 0.71),
        ];
        for (task, pct) in expect {
            let got = m.overhead_percent(task, 360.0, true);
            assert!((got - pct).abs() < 0.05, "{task}: {got:.2}% vs {pct}%");
        }
    }

    #[test]
    fn reallocation_costs_more_than_steady() {
        let m = CheckpointModel::default();
        for t in DlTask::ALL {
            assert!(m.reallocation_seconds(t) > m.steady_seconds(t));
        }
    }

    #[test]
    fn penalty_variants() {
        assert_eq!(PreemptionPenalty::default().seconds(DlTask::Lstm), 10.0);
        assert_eq!(PreemptionPenalty::None.seconds(DlTask::Lstm), 0.0);
        let modeled = PreemptionPenalty::Modeled(CheckpointModel::default());
        assert!(modeled.seconds(DlTask::ResNet50) > 7.0);
        assert!(modeled.seconds(DlTask::ResNet50) < 9.0);
    }
}

//! Simulation outcome records and derived metrics.

use hadar_cluster::{Cluster, JobId};

use crate::event::SimEvent;
use crate::scheduler::DecisionPhases;
use crate::telemetry::TelemetrySummary;
use hadar_metrics::stats::{cdf_points, SummaryStats};
use hadar_metrics::{finish_time_fairness, isolated_finish_time};
use hadar_workload::Job;

/// Per-job outcome.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// The job as submitted.
    pub job: Job,
    /// Time the job first received GPUs, if ever.
    pub first_scheduled: Option<f64>,
    /// Completion time `f_j`, if the job finished before the simulation
    /// ended.
    pub finish: Option<f64>,
    /// Number of rounds in which the job held an allocation.
    pub rounds_run: u32,
    /// Number of rounds in which the job's allocation *changed* (incurring a
    /// preemption penalty) — drives the §IV-A-5 reallocation-rate statistic.
    pub reallocations: u32,
}

impl JobRecord {
    /// Job completion time `f_j − a_j`, if finished.
    pub fn jct(&self) -> Option<f64> {
        self.finish.map(|f| f - self.job.arrival)
    }

    /// Queuing delay: time from arrival to first allocation, if ever
    /// scheduled.
    pub fn queuing_delay(&self) -> Option<f64> {
        self.first_scheduled.map(|s| s - self.job.arrival)
    }
}

/// Per-round cluster telemetry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundRecord {
    /// Round start time.
    pub time: f64,
    /// GPU-seconds of useful compute delivered this round (excludes
    /// checkpoint stalls).
    pub busy_gpu_seconds: f64,
    /// GPU-seconds held by jobs this round (includes stalls).
    pub held_gpu_seconds: f64,
    /// Wall-clock seconds the scheduler spent deciding.
    pub decision_seconds: f64,
    /// Jobs whose allocation changed this round.
    pub reallocations: u32,
    /// Jobs holding GPUs this round.
    pub running_jobs: u32,
    /// Total GPU demand at the round start: Σ `W_j` over admitted,
    /// unfinished jobs (capped at nothing — may exceed the cluster size).
    pub demand_gpus: u32,
    /// Per-phase breakdown of the decision, when the scheduler reports one
    /// (see [`crate::Scheduler::last_decision_phases`]).
    pub phases: Option<DecisionPhases>,
    /// Wall-clock seconds the engine spent on round bookkeeping *outside*
    /// the scheduler call: allocation validation, penalty charging, progress
    /// advancement, and event recording.
    pub bookkeeping_seconds: f64,
}

/// Complete result of one simulation run.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Scheduler display name.
    pub scheduler: String,
    /// Per-job outcomes, indexed by job id.
    pub records: Vec<JobRecord>,
    /// Per-round telemetry.
    pub rounds: Vec<RoundRecord>,
    /// Round length used.
    pub round_length: f64,
    /// Total GPUs in the cluster.
    pub total_gpus: u32,
    /// Whether the simulation hit its round cap before all jobs finished.
    pub timed_out: bool,
    /// Aggregate telemetry counters (empty/default when the run used a
    /// disabled [`crate::Telemetry`] sink, i.e. plain
    /// [`crate::Simulation::run`]).
    pub telemetry: TelemetrySummary,
    cluster: Cluster,
    events: Vec<SimEvent>,
    telemetry_stream: Option<String>,
}

impl SimOutcome {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        scheduler: String,
        records: Vec<JobRecord>,
        rounds: Vec<RoundRecord>,
        round_length: f64,
        cluster: Cluster,
        timed_out: bool,
        events: Vec<SimEvent>,
        telemetry: TelemetrySummary,
        telemetry_stream: Option<String>,
    ) -> Self {
        let total_gpus = cluster.total_gpus();
        Self {
            scheduler,
            records,
            rounds,
            round_length,
            total_gpus,
            timed_out,
            telemetry,
            cluster,
            events,
            telemetry_stream,
        }
    }

    /// The per-round JSONL telemetry stream, when the run was executed with
    /// an enabled [`crate::Telemetry`] sink
    /// ([`crate::Simulation::run_with_telemetry`]); `None` otherwise.
    pub fn telemetry_stream(&self) -> Option<&str> {
        self.telemetry_stream.as_deref()
    }

    /// The chronological lifecycle event log of the run.
    pub fn events(&self) -> &[SimEvent] {
        &self.events
    }

    /// The cluster the run used.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Number of jobs that finished.
    pub fn completed_jobs(&self) -> usize {
        self.records.iter().filter(|r| r.finish.is_some()).count()
    }

    /// All finished jobs' JCTs.
    pub fn jcts(&self) -> Vec<f64> {
        self.records.iter().filter_map(|r| r.jct()).collect()
    }

    /// Summary statistics over JCTs.
    pub fn metrics(&self) -> SummaryStats {
        SummaryStats::of(&self.jcts())
    }

    /// Mean JCT in seconds (0 if nothing finished).
    pub fn mean_jct(&self) -> f64 {
        self.metrics().mean
    }

    /// Median JCT in seconds.
    pub fn median_jct(&self) -> f64 {
        self.metrics().median
    }

    /// Makespan: latest finish time across jobs (the paper's
    /// `max_j f_j`). 0 if nothing finished.
    pub fn makespan(&self) -> f64 {
        self.records
            .iter()
            .filter_map(|r| r.finish)
            .fold(0.0, f64::max)
    }

    /// Queuing-delay statistics over jobs that were ever scheduled.
    pub fn queuing_delays(&self) -> SummaryStats {
        let v: Vec<f64> = self
            .records
            .iter()
            .filter_map(|r| r.queuing_delay())
            .collect();
        SummaryStats::of(&v)
    }

    /// Cluster-wide GPU utilization over `[0, makespan]`: useful GPU-seconds
    /// delivered divided by total GPU-seconds available.
    pub fn gpu_utilization(&self) -> f64 {
        let span = self.makespan();
        if span <= 0.0 || self.total_gpus == 0 {
            return 0.0;
        }
        let busy: f64 = self
            .rounds
            .iter()
            .filter(|r| r.time < span)
            .map(|r| {
                // Clip the final partial round at the makespan boundary.
                let frac = ((span - r.time) / self.round_length).min(1.0);
                r.busy_gpu_seconds * frac
            })
            .sum();
        busy / (self.total_gpus as f64 * span)
    }

    /// Demand-constrained cluster utilization: useful GPU-seconds divided
    /// by the GPU-seconds that *could* have served demand — per round,
    /// `min(total GPUs, Σ W_j over unfinished jobs) · L`. Unlike
    /// [`SimOutcome::gpu_utilization`], the drain-out tail (when fewer jobs
    /// remain than GPUs) does not dilute the score, so the metric isolates
    /// the Fig. 4 effect: GPUs idling *while jobs wait* because a scheduler
    /// cannot use a heterogeneous leftover mix.
    pub fn demand_weighted_utilization(&self) -> f64 {
        let mut busy = 0.0;
        let mut capacity = 0.0;
        for r in &self.rounds {
            busy += r.busy_gpu_seconds;
            capacity += f64::from(r.demand_gpus.min(self.total_gpus)) * self.round_length;
        }
        if capacity <= 0.0 {
            0.0
        } else {
            (busy / capacity).min(1.0)
        }
    }

    /// GPU utilization in the Fig. 4 sense — "the percentage of total job
    /// run-time during which the GPUs are utilized": useful compute
    /// GPU-seconds divided by GPU-seconds *held by jobs*. Checkpoint/restore
    /// stalls and gang members idling at a synchronization barrier count as
    /// held-but-not-utilized; GPUs no scheduler allocated do not enter this
    /// metric (see [`SimOutcome::gpu_utilization`] for the cluster-wide
    /// variant). A non-preemptive scheduler that never stalls (YARN-CS)
    /// scores ~1.0 here.
    pub fn held_utilization(&self) -> f64 {
        let held: f64 = self.rounds.iter().map(|r| r.held_gpu_seconds).sum();
        if held <= 0.0 {
            return 0.0;
        }
        let busy: f64 = self.rounds.iter().map(|r| r.busy_gpu_seconds).sum();
        busy / held
    }

    /// Finish-time-fairness ρ per finished job (Fig. 5 input).
    pub fn ftf_values(&self) -> Vec<f64> {
        let n = self.records.len();
        self.records
            .iter()
            .filter_map(|r| {
                r.jct()
                    .map(|jct| finish_time_fairness(&r.job, &self.cluster, n, jct))
            })
            .collect()
    }

    /// Summary of FTF ρ values.
    pub fn ftf(&self) -> SummaryStats {
        SummaryStats::of(&self.ftf_values())
    }

    /// Fig. 3 series: `(completion time, cumulative fraction completed)`.
    pub fn completion_cdf(&self) -> Vec<(f64, f64)> {
        let times: Vec<f64> = self.records.iter().filter_map(|r| r.finish).collect();
        cdf_points(&times)
    }

    /// Fraction of job-rounds whose allocation changed (§IV-A-5 reports
    /// ~30 % for Hadar).
    pub fn reallocation_rate(&self) -> f64 {
        let runs: u64 = self.records.iter().map(|r| r.rounds_run as u64).sum();
        let moves: u64 = self.records.iter().map(|r| r.reallocations as u64).sum();
        if runs == 0 {
            0.0
        } else {
            moves as f64 / runs as f64
        }
    }

    /// Mean scheduler decision wall time per round, seconds.
    pub fn mean_decision_seconds(&self) -> f64 {
        if self.rounds.is_empty() {
            return 0.0;
        }
        self.rounds.iter().map(|r| r.decision_seconds).sum::<f64>() / self.rounds.len() as f64
    }

    /// Number of rounds whose DP dual subroutine hit its node budget (and
    /// therefore fell back to — or was beaten by — the greedy floor). Only
    /// counted for schedulers that report [`DecisionPhases`]; 0 otherwise.
    pub fn dp_budget_exhausted_rounds(&self) -> usize {
        self.rounds
            .iter()
            .filter(|r| r.phases.is_some_and(|p| p.dp_budget_hit))
            .count()
    }

    /// Number of rounds that reused the previous decision outright via the
    /// incremental fast path (per reported [`DecisionPhases`]).
    pub fn reused_rounds(&self) -> usize {
        self.rounds
            .iter()
            .filter(|r| r.phases.is_some_and(|p| p.reused))
            .count()
    }

    /// Summed per-phase decision timings across all rounds that reported
    /// them: `(price, candidate generation, selection)` in seconds.
    pub fn phase_totals(&self) -> (f64, f64, f64) {
        let mut t = (0.0, 0.0, 0.0);
        for p in self.rounds.iter().filter_map(|r| r.phases) {
            t.0 += p.price_seconds;
            t.1 += p.candidates_seconds;
            t.2 += p.select_seconds;
        }
        t
    }

    /// Total wall-clock seconds of engine bookkeeping (validation, penalty
    /// charging, progress advancement) across all rounds.
    pub fn total_bookkeeping_seconds(&self) -> f64 {
        self.rounds.iter().map(|r| r.bookkeeping_seconds).sum()
    }

    /// Total wall-clock seconds of scheduler decisions across all rounds.
    pub fn total_decision_seconds(&self) -> f64 {
        self.rounds.iter().map(|r| r.decision_seconds).sum()
    }

    /// Isolated finish time of job `id` under this run's cluster and job
    /// count (exposed for FTF debugging / tests).
    pub fn isolated_finish_time(&self, id: JobId) -> f64 {
        isolated_finish_time(
            &self.records[id.index()].job,
            &self.cluster,
            self.records.len(),
        )
    }

    /// End of simulated time: the start of the last round plus one round
    /// length (0 if no round ran).
    fn sim_end(&self) -> f64 {
        self.rounds
            .last()
            .map_or(0.0, |r| r.time + self.round_length)
    }

    /// Number of forced evictions: jobs kicked off a machine because it
    /// failed (see [`crate::FailureModel`]).
    pub fn evictions(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, SimEvent::JobEvicted { .. }))
            .count()
    }

    /// Number of machine-failure events over the run.
    pub fn machine_failures(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, SimEvent::MachineFailed { .. }))
            .count()
    }

    /// GPU-seconds of capacity lost to machine downtime: for every failure
    /// interval (failure → recovery, or failure → end of run), the interval
    /// length times the failed machine's GPU count.
    pub fn lost_gpu_seconds(&self) -> f64 {
        let machine_gpus = |m: hadar_cluster::MachineId| -> f64 {
            self.cluster.machine(m).capacities().iter().sum::<u32>() as f64
        };
        let mut down_since: std::collections::HashMap<hadar_cluster::MachineId, f64> =
            std::collections::HashMap::new();
        let mut lost = 0.0;
        for e in &self.events {
            match *e {
                SimEvent::MachineFailed { time, machine } => {
                    down_since.entry(machine).or_insert(time);
                }
                SimEvent::MachineRecovered { time, machine } => {
                    if let Some(start) = down_since.remove(&machine) {
                        lost += (time - start) * machine_gpus(machine);
                    }
                }
                _ => {}
            }
        }
        let end = self.sim_end();
        for (machine, start) in down_since {
            lost += (end - start).max(0.0) * machine_gpus(machine);
        }
        lost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hadar_workload::DlTask;

    fn outcome() -> SimOutcome {
        let cluster = Cluster::paper_simulation();
        let mk = |id: u32, arrival: f64, finish: Option<f64>| JobRecord {
            job: Job::for_model(
                JobId(id),
                DlTask::ResNet18,
                cluster.catalog(),
                arrival,
                1,
                10,
            ),
            first_scheduled: Some(arrival + 60.0),
            finish,
            rounds_run: 10,
            reallocations: 3,
        };
        SimOutcome::new(
            "Test".into(),
            vec![
                mk(0, 0.0, Some(3600.0)),
                mk(1, 100.0, Some(1900.0)),
                mk(2, 0.0, None),
            ],
            vec![
                RoundRecord {
                    time: 0.0,
                    busy_gpu_seconds: 30.0 * 360.0,
                    held_gpu_seconds: 30.0 * 360.0,
                    decision_seconds: 0.001,
                    reallocations: 1,
                    running_jobs: 2,
                    demand_gpus: 45,
                    phases: None,
                    bookkeeping_seconds: 0.0,
                },
                RoundRecord {
                    time: 360.0,
                    busy_gpu_seconds: 15.0 * 360.0,
                    held_gpu_seconds: 15.0 * 360.0,
                    decision_seconds: 0.003,
                    reallocations: 0,
                    running_jobs: 1,
                    demand_gpus: 20,
                    phases: None,
                    bookkeeping_seconds: 0.0,
                },
            ],
            360.0,
            cluster,
            false,
            Vec::new(),
            TelemetrySummary::default(),
            None,
        )
    }

    #[test]
    fn jct_and_queuing_delay() {
        let o = outcome();
        assert_eq!(o.completed_jobs(), 2);
        let jcts = o.jcts();
        assert_eq!(jcts, vec![3600.0, 1800.0]);
        assert!((o.mean_jct() - 2700.0).abs() < 1e-9);
        assert_eq!(o.records[1].queuing_delay(), Some(60.0));
    }

    #[test]
    fn makespan_is_latest_finish() {
        assert_eq!(outcome().makespan(), 3600.0);
    }

    #[test]
    fn utilization_counts_busy_fraction() {
        let o = outcome();
        // busy = 30*360 + 15*360 GPU-s over 60 GPUs * 3600 s... but rounds
        // only cover 720 s; utilization over makespan 3600 s.
        let expect = (30.0 * 360.0 + 15.0 * 360.0) / (60.0 * 3600.0);
        assert!((o.gpu_utilization() - expect).abs() < 1e-9);
    }

    #[test]
    fn reallocation_rate() {
        let o = outcome();
        // 3 moves / 10 rounds for each of 3 jobs.
        assert!((o.reallocation_rate() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn ftf_values_only_for_finished() {
        let o = outcome();
        assert_eq!(o.ftf_values().len(), 2);
        assert!(o.ftf().mean > 0.0);
    }

    #[test]
    fn completion_cdf_reaches_one() {
        let o = outcome();
        let cdf = o.completion_cdf();
        assert_eq!(cdf.last().unwrap().1, 1.0);
        assert_eq!(cdf.first().unwrap().0, 1900.0);
    }

    #[test]
    fn decision_time_mean() {
        assert!((outcome().mean_decision_seconds() - 0.002).abs() < 1e-12);
    }

    #[test]
    fn nan_jct_sample_does_not_panic_metrics() {
        // Regression: a corrupt finish time used to abort `metrics()` inside
        // SummaryStats' partial_cmp sort. The NaN sample is now filtered and
        // surfaced via `nan_count` instead.
        let mut o = outcome();
        o.records[0].finish = Some(f64::NAN);
        let m = o.metrics();
        assert_eq!(m.nan_count, 1);
        assert_eq!(m.count, 1); // only the finite JCT remains
        assert!(m.mean.is_finite());
        assert!(o.mean_jct().is_finite());
    }

    #[test]
    fn telemetry_default_when_disabled() {
        let o = outcome();
        assert_eq!(o.telemetry, TelemetrySummary::default());
        assert!(o.telemetry_stream().is_none());
    }

    #[test]
    fn failure_stats_derived_from_events() {
        use hadar_cluster::MachineId;
        let base = outcome();
        assert_eq!(base.evictions(), 0);
        assert_eq!(base.machine_failures(), 0);
        assert_eq!(base.lost_gpu_seconds(), 0.0);

        let cluster = Cluster::paper_simulation(); // machines have 4 GPUs
        let events = vec![
            SimEvent::MachineFailed {
                time: 0.0,
                machine: MachineId(0),
            },
            SimEvent::JobEvicted {
                time: 0.0,
                job: JobId(0),
                machine: MachineId(0),
            },
            SimEvent::MachineRecovered {
                time: 360.0,
                machine: MachineId(0),
            },
            SimEvent::MachineFailed {
                time: 360.0,
                machine: MachineId(1),
            },
        ];
        let o = SimOutcome::new(
            "Test".into(),
            Vec::new(),
            vec![
                RoundRecord {
                    time: 0.0,
                    busy_gpu_seconds: 0.0,
                    held_gpu_seconds: 0.0,
                    decision_seconds: 0.0,
                    reallocations: 0,
                    running_jobs: 0,
                    demand_gpus: 0,
                    phases: None,
                    bookkeeping_seconds: 0.0,
                },
                RoundRecord {
                    time: 360.0,
                    busy_gpu_seconds: 0.0,
                    held_gpu_seconds: 0.0,
                    decision_seconds: 0.0,
                    reallocations: 0,
                    running_jobs: 0,
                    demand_gpus: 0,
                    phases: None,
                    bookkeeping_seconds: 0.0,
                },
            ],
            360.0,
            cluster,
            false,
            events,
            TelemetrySummary::default(),
            None,
        );
        assert_eq!(o.evictions(), 1);
        assert_eq!(o.machine_failures(), 2);
        // Machine 0 down [0, 360) and machine 1 down [360, end=720): each
        // interval is 360 s × 4 GPUs.
        assert!((o.lost_gpu_seconds() - 2.0 * 360.0 * 4.0).abs() < 1e-9);
    }
}

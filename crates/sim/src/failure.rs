//! Machine failure injection.
//!
//! Whole-machine crashes are the dominant disruption in production DL
//! clusters (the Philly trace our workload model is calibrated against is
//! full of them), and Gavel-style evaluations judge policies under dynamic
//! GPU availability. The model here mirrors the straggler process
//! ([`crate::StragglerModel`]) but takes the machine *all the way down*: a
//! healthy machine fails with probability `1 / mtbf_rounds` per round and
//! comes back after a geometrically distributed repair time with mean
//! `mttr_rounds`. Evolution is driven by a dedicated seeded RNG (distinct
//! stream from the straggler RNG), so runs stay fully deterministic.
//!
//! The engine folds the resulting [`Availability`] mask into the per-round
//! scheduler context: down machines report factor 0.0 in
//! [`crate::SchedulerContext::machine_factors`], jobs placed on them are
//! forcibly evicted (losing the failed round's progress — work since the
//! last round-boundary checkpoint), and re-placement pays the usual
//! checkpoint-restore penalty.

use hadar_cluster::{Availability, MachineId};
use hadar_rng::{Rng, StdRng};

/// Domain-separation constant XORed into the failure RNG seed so the
/// failure stream is independent of the straggler stream even under equal
/// seeds.
const FAILURE_SEED_SALT: u64 = 0x4661_696C_4D61_6368; // "FailMach"

/// Parameters of the per-machine failure process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureModel {
    /// Mean time between failures, in rounds (per machine; failure
    /// probability per healthy round is `1 / mtbf_rounds`).
    pub mtbf_rounds: f64,
    /// Mean time to repair, in rounds (geometric, at least one round).
    pub mttr_rounds: f64,
    /// Seed for the failure RNG (independent of trace and straggler seeds).
    pub seed: u64,
}

impl Default for FailureModel {
    fn default() -> Self {
        Self {
            // 240 six-minute rounds = one failure per machine-day.
            mtbf_rounds: 240.0,
            // 10 rounds = one hour of repair.
            mttr_rounds: 10.0,
            seed: 0,
        }
    }
}

impl FailureModel {
    /// Check the parameters, returning a description of the first problem.
    pub fn validate(&self) -> Result<(), String> {
        if !self.mtbf_rounds.is_finite() || self.mtbf_rounds < 1.0 {
            return Err(format!(
                "mtbf_rounds must be finite and >= 1 (got {})",
                self.mtbf_rounds
            ));
        }
        if !self.mttr_rounds.is_finite() || self.mttr_rounds < 1.0 {
            return Err(format!(
                "mttr_rounds must be finite and >= 1 (got {})",
                self.mttr_rounds
            ));
        }
        Ok(())
    }
}

/// Machines that changed state in one round.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FailureTransitions {
    /// Machines that went down this round, in id order.
    pub failed: Vec<MachineId>,
    /// Machines that came back this round, in id order.
    pub recovered: Vec<MachineId>,
}

/// Evolving failure state for a cluster of `num_machines` machines.
#[derive(Debug, Clone)]
pub struct FailureState {
    model: Option<FailureModel>,
    rng: StdRng,
    /// Remaining repair rounds per machine (0 = up).
    remaining: Vec<u32>,
    availability: Availability,
}

impl FailureState {
    /// Create the state; `model = None` disables injection (everything up).
    ///
    /// Parameters are assumed valid — the engine checks
    /// [`FailureModel::validate`] via `SimConfig` before construction.
    pub fn new(model: Option<FailureModel>, num_machines: usize) -> Self {
        let seed = model.map_or(0, |m| m.seed);
        Self {
            model,
            rng: StdRng::seed_from_u64(seed ^ FAILURE_SEED_SALT),
            remaining: vec![0; num_machines],
            availability: Availability::all_up(num_machines),
        }
    }

    /// Advance one round; returns the machines that failed or recovered.
    pub fn step(&mut self) -> FailureTransitions {
        let mut transitions = FailureTransitions::default();
        let Some(model) = self.model else {
            return transitions;
        };
        let p_fail = 1.0 / model.mtbf_rounds;
        for (i, left) in self.remaining.iter_mut().enumerate() {
            let h = MachineId(i as u32);
            if *left > 0 {
                *left -= 1;
                if *left == 0 {
                    self.availability.set(h, true);
                    transitions.recovered.push(h);
                }
            } else if self.rng.gen_f64() < p_fail {
                // Geometric repair duration with the configured mean, at
                // least one round (same construction as the straggler model).
                let p = 1.0 / model.mttr_rounds;
                let u: f64 = self.rng.gen_f64().max(f64::MIN_POSITIVE);
                let dur = ((u.ln() / (1.0 - p).ln()).ceil()).max(1.0) as u32;
                *left = dur;
                self.availability.set(h, false);
                transitions.failed.push(h);
            }
        }
        transitions
    }

    /// Current availability mask (without advancing).
    pub fn availability(&self) -> &Availability {
        &self.availability
    }

    /// Number of machines currently down.
    pub fn num_down(&self) -> usize {
        self.availability.num_down()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_model_keeps_everything_up() {
        let mut s = FailureState::new(None, 6);
        for _ in 0..20 {
            let t = s.step();
            assert!(t.failed.is_empty() && t.recovered.is_empty());
        }
        assert_eq!(s.num_down(), 0);
        assert!(!s.availability().any_down());
    }

    #[test]
    fn deterministic_under_seed() {
        let model = FailureModel {
            mtbf_rounds: 4.0,
            mttr_rounds: 2.0,
            seed: 0,
        };
        let run = |seed: u64| -> Vec<usize> {
            let mut s = FailureState::new(Some(FailureModel { seed, ..model }), 8);
            (0..100)
                .map(|_| {
                    s.step();
                    s.num_down()
                })
                .collect()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn failure_stream_differs_from_straggler_stream() {
        // Equal seeds must not produce correlated processes: the salt
        // separates the two RNG domains.
        let mut f = FailureState::new(
            Some(FailureModel {
                mtbf_rounds: 2.0,
                mttr_rounds: 1.0,
                seed: 42,
            }),
            16,
        );
        let mut g = crate::straggler::StragglerState::new(
            Some(crate::StragglerModel {
                incidence: 0.5,
                slowdown: 0.5,
                mean_duration_rounds: 1.0,
                seed: 42,
            }),
            16,
        );
        let downs: Vec<usize> = (0..50)
            .map(|_| {
                f.step();
                f.num_down()
            })
            .collect();
        let slows: Vec<usize> = (0..50)
            .map(|_| {
                g.step();
                g.num_straggling()
            })
            .collect();
        assert_ne!(downs, slows);
    }

    #[test]
    fn machines_fail_and_recover() {
        let mut s = FailureState::new(
            Some(FailureModel {
                mtbf_rounds: 3.0,
                mttr_rounds: 2.0,
                seed: 5,
            }),
            8,
        );
        let mut saw_failure = false;
        let mut saw_recovery = false;
        for _ in 0..200 {
            let t = s.step();
            if !t.failed.is_empty() {
                saw_failure = true;
                for h in &t.failed {
                    assert!(!s.availability().is_up(*h));
                }
            }
            if !t.recovered.is_empty() {
                saw_recovery = true;
                for h in &t.recovered {
                    assert!(s.availability().is_up(*h));
                }
            }
            assert_eq!(s.num_down(), s.availability().num_down());
        }
        assert!(saw_failure, "no failure in 200 rounds at mtbf=3");
        assert!(saw_recovery, "no recovery in 200 rounds at mttr=2");
    }

    #[test]
    fn downtime_fraction_roughly_matches_theory() {
        // Steady-state unavailability ≈ MTTR / (MTBF + MTTR).
        let mtbf = 10.0;
        let mttr = 5.0;
        let mut s = FailureState::new(
            Some(FailureModel {
                mtbf_rounds: mtbf,
                mttr_rounds: mttr,
                seed: 11,
            }),
            1,
        );
        let rounds = 50_000;
        let mut down = 0usize;
        for _ in 0..rounds {
            s.step();
            down += s.num_down();
        }
        let frac = down as f64 / rounds as f64;
        let expect = mttr / (mtbf + mttr);
        assert!((frac - expect).abs() < 0.05, "fraction {frac} vs {expect}");
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(FailureModel {
            mtbf_rounds: 0.5,
            ..FailureModel::default()
        }
        .validate()
        .unwrap_err()
        .contains("mtbf"));
        assert!(FailureModel {
            mttr_rounds: f64::NAN,
            ..FailureModel::default()
        }
        .validate()
        .unwrap_err()
        .contains("mttr"));
        assert!(FailureModel::default().validate().is_ok());
    }
}

//! Importer for Microsoft Philly-style production traces.
//!
//! The paper draws its workload from the Microsoft trace of [Jeon et al.,
//! ATC '19]: it selects jobs from "the busiest hour range (hours 3–10)",
//! keeps each job's submission time, requested GPU count, and duration, and
//! — because the trace carries no model information — buckets jobs by total
//! GPU-time and assigns each bucket a representative Table II model.
//!
//! This module implements that exact pipeline for traces exported to a
//! simple CSV (`job_id,submit_time_s,num_gpus,duration_s`, easily produced
//! from the published `cluster_job_log`): [`parse_philly_csv`] reads rows,
//! [`busiest_window`] selects the densest submission window, and
//! [`jobs_from_philly`] applies the §IV-A recipe to produce scheduler-ready
//! [`Job`]s whose best-case GPU-time matches the recorded one.

use hadar_rng::{Rng, StdRng};

use hadar_cluster::{GpuCatalog, JobId};

use crate::categories::SizeClass;
use crate::job::Job;
use crate::model::DlTask;
use crate::throughput::ThroughputProfile;

/// One job record of a Philly-style trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhillyRow {
    /// Submission time in seconds from the trace start.
    pub submit_time_s: f64,
    /// Requested GPU count (the gang size).
    pub gpus: u32,
    /// Recorded run duration in seconds (interpreted as best-case-device
    /// time).
    pub duration_s: f64,
}

impl PhillyRow {
    /// Total GPU-time of the job in hours.
    pub fn gpu_hours(&self) -> f64 {
        self.gpus as f64 * self.duration_s / 3600.0
    }
}

/// Parse the CSV export (`job_id,submit_time_s,num_gpus,duration_s`, header
/// required; the job id column is ignored).
pub fn parse_philly_csv(text: &str) -> Result<Vec<PhillyRow>, String> {
    let mut rows = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if lineno == 0 || line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 4 {
            return Err(format!("line {}: expected 4 fields", lineno + 1));
        }
        let err = |what: &str| format!("line {}: bad {what}", lineno + 1);
        let submit_time_s: f64 = fields[1].parse().map_err(|_| err("submit time"))?;
        let gpus: u32 = fields[2].parse().map_err(|_| err("gpu count"))?;
        let duration_s: f64 = fields[3].parse().map_err(|_| err("duration"))?;
        if gpus == 0 || duration_s <= 0.0 || submit_time_s < 0.0 {
            return Err(err("value range"));
        }
        rows.push(PhillyRow {
            submit_time_s,
            gpus,
            duration_s,
        });
    }
    Ok(rows)
}

/// Select the jobs submitted within the busiest `window_hours`-hour window
/// of the trace (most submissions), re-based so the window starts at t = 0
/// and sorted by submission time. Candidate windows start at each
/// submission instant.
pub fn busiest_window(rows: &[PhillyRow], window_hours: f64) -> Vec<PhillyRow> {
    assert!(window_hours > 0.0);
    if rows.is_empty() {
        return Vec::new();
    }
    let mut sorted: Vec<PhillyRow> = rows.to_vec();
    sorted.sort_by(|a, b| {
        a.submit_time_s
            .partial_cmp(&b.submit_time_s)
            .expect("finite times")
    });
    let window = window_hours * 3600.0;
    // Two-pointer sweep over window starts anchored at submissions.
    let (mut best_start, mut best_count, mut hi) = (0usize, 0usize, 0usize);
    for lo in 0..sorted.len() {
        if hi < lo {
            hi = lo;
        }
        while hi < sorted.len() && sorted[hi].submit_time_s <= sorted[lo].submit_time_s + window {
            hi += 1;
        }
        if hi - lo > best_count {
            best_count = hi - lo;
            best_start = lo;
        }
    }
    let t0 = sorted[best_start].submit_time_s;
    sorted[best_start..best_start + best_count]
        .iter()
        .map(|r| PhillyRow {
            submit_time_s: r.submit_time_s - t0,
            ..*r
        })
        .collect()
}

/// Apply the §IV-A recipe: classify each row by GPU-time, sample a Table II
/// model of that size class (seeded), and fit `E_j` so the job's best-case
/// GPU-time equals the recorded one. Job ids are dense in row order.
pub fn jobs_from_philly(rows: &[PhillyRow], catalog: &GpuCatalog, seed: u64) -> Vec<Job> {
    let mut rng = StdRng::seed_from_u64(seed);
    rows.iter()
        .enumerate()
        .map(|(i, row)| {
            let class = SizeClass::of_gpu_hours(row.gpu_hours());
            let models = models_of_class(class);
            let model = models[rng.gen_range_usize(0..models.len())];
            let profile = ThroughputProfile::for_model(model, catalog);
            let x_max = profile.max_rate();
            assert!(x_max > 0.0, "{model} cannot run on any catalog type");
            let n = model.iterations_per_epoch();
            // duration (best-case) = E·N / (W · x_max) · W / W… the recorded
            // duration is per-job wall time: E·N = duration · W · x_max.
            let epochs = ((row.duration_s * row.gpus as f64 * x_max) / n as f64)
                .round()
                .max(1.0) as u64;
            Job::new(
                JobId(i as u32),
                model,
                row.submit_time_s,
                row.gpus,
                epochs,
                n,
                profile,
            )
        })
        .collect()
}

fn models_of_class(class: SizeClass) -> &'static [DlTask] {
    match class {
        SizeClass::Small => &[DlTask::ResNet18],
        SizeClass::Medium => &[DlTask::CycleGan],
        SizeClass::Large => &[DlTask::Lstm, DlTask::Transformer],
        SizeClass::XLarge => &[DlTask::ResNet50],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> GpuCatalog {
        GpuCatalog::from_names(["V100", "P100", "K80"])
    }

    #[test]
    fn parses_well_formed_csv() {
        let csv = "job_id,submit_time_s,num_gpus,duration_s\n\
                   a1,0,2,3600\n\
                   a2,120.5,1,7200\n";
        let rows = parse_philly_csv(csv).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].gpus, 2);
        assert!((rows[0].gpu_hours() - 2.0).abs() < 1e-12);
        assert_eq!(rows[1].submit_time_s, 120.5);
    }

    #[test]
    fn rejects_malformed_rows() {
        assert!(parse_philly_csv("h\n1,2\n").is_err());
        assert!(parse_philly_csv("h\nx,0,0,100\n")
            .unwrap_err()
            .contains("range"));
        assert!(parse_philly_csv("h\nx,1,one,100\n")
            .unwrap_err()
            .contains("gpu count"));
        assert!(parse_philly_csv("h\nx,1,1,-5\n")
            .unwrap_err()
            .contains("range"));
    }

    #[test]
    fn busiest_window_finds_the_burst() {
        // 3 early stragglers, then a 5-job burst at hour 10.
        let mut rows: Vec<PhillyRow> = (0..3)
            .map(|i| PhillyRow {
                submit_time_s: i as f64 * 7200.0,
                gpus: 1,
                duration_s: 600.0,
            })
            .collect();
        for i in 0..5 {
            rows.push(PhillyRow {
                submit_time_s: 36_000.0 + i as f64 * 60.0,
                gpus: 2,
                duration_s: 600.0,
            });
        }
        let w = busiest_window(&rows, 1.0);
        assert_eq!(w.len(), 5);
        assert_eq!(w[0].submit_time_s, 0.0); // re-based
        assert_eq!(w[4].submit_time_s, 240.0);
        assert!(w.iter().all(|r| r.gpus == 2));
    }

    #[test]
    fn busiest_window_of_empty_trace() {
        assert!(busiest_window(&[], 8.0).is_empty());
    }

    #[test]
    fn recipe_preserves_gpu_time_and_classes() {
        let rows = vec![
            PhillyRow {
                submit_time_s: 0.0,
                gpus: 1,
                duration_s: 1800.0, // 0.5 GPU-h → Small
            },
            PhillyRow {
                submit_time_s: 60.0,
                gpus: 4,
                duration_s: 18_000.0, // 20 GPU-h → Large
            },
            PhillyRow {
                submit_time_s: 120.0,
                gpus: 8,
                duration_s: 36_000.0, // 80 GPU-h → XLarge
            },
        ];
        let jobs = jobs_from_philly(&rows, &catalog(), 1);
        assert_eq!(jobs.len(), 3);
        assert_eq!(jobs[0].model, DlTask::ResNet18);
        assert!(matches!(jobs[1].model, DlTask::Lstm | DlTask::Transformer));
        assert_eq!(jobs[2].model, DlTask::ResNet50);
        for (job, row) in jobs.iter().zip(&rows) {
            assert_eq!(job.gang, row.gpus);
            assert_eq!(job.arrival, row.submit_time_s);
            // Best-case GPU-hours within epoch-rounding error of the trace.
            let rel = (job.gpu_hours() - row.gpu_hours()).abs() / row.gpu_hours();
            assert!(rel < 0.02, "gpu-hours off by {:.1}%", rel * 100.0);
        }
    }

    #[test]
    fn recipe_is_deterministic_per_seed() {
        let rows = vec![PhillyRow {
            submit_time_s: 0.0,
            gpus: 2,
            duration_s: 40_000.0,
        }];
        let a = jobs_from_philly(&rows, &catalog(), 5);
        let b = jobs_from_philly(&rows, &catalog(), 5);
        assert_eq!(a, b);
    }

    #[test]
    fn end_to_end_import_pipeline() {
        // Synthesize a "trace export", pick the busiest 8 hours, build jobs,
        // and run a quick simulation sanity pass at the workload layer.
        let mut csv = String::from("job_id,submit_time_s,num_gpus,duration_s\n");
        for i in 0..40 {
            // Burst between hours 3 and 10.
            let t = 3.0 * 3600.0 + (i as f64 / 40.0) * 7.0 * 3600.0;
            csv.push_str(&format!("j{i},{t},{},{}\n", 1 + i % 4, 600 * (1 + i % 5)));
        }
        let rows = parse_philly_csv(&csv).unwrap();
        let window = busiest_window(&rows, 8.0);
        assert_eq!(window.len(), 40);
        let jobs = jobs_from_philly(&window, &catalog(), 0);
        assert_eq!(jobs.len(), 40);
        assert!(jobs.iter().all(|j| j.total_iterations() > 0.0));
    }
}

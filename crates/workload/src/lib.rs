#![warn(missing_docs)]

//! # hadar-workload
//!
//! DNN-training workload model and trace generation for the Hadar scheduler
//! reproduction (IPDPS 2024, §IV-A).
//!
//! The paper evaluates on 480 jobs drawn from the busiest hours of a
//! Microsoft production trace. The trace records gang size, submission time,
//! and duration but *not* model architectures, so the authors bucket jobs by
//! total GPU-time into four size classes (Small/Medium/Large/XLarge) and
//! assign each a representative model + dataset from Table II. This crate
//! implements exactly that recipe:
//!
//! * [`DlTask`] — the five Table II workloads (ResNet-50, ResNet-18, LSTM,
//!   CycleGAN, Transformer) with per-GPU-type throughputs mirroring Gavel's
//!   published heterogeneity ratios and checkpoint footprints for the
//!   preemption-overhead model (Table IV),
//! * [`SizeClass`] — the four GPU-hour buckets,
//! * [`Job`] — the scheduler-facing job record (`a_j`, `W_j`, `E_j`, `N_j`,
//!   `X_j^r`),
//! * [`ArrivalPattern`] — *static* (all at t=0) and *continuous* (Poisson)
//!   arrival processes,
//! * [`TraceConfig`] / [`generate_trace`] — the seeded synthetic trace
//!   generator, plus CSV round-tripping for reproducible experiment inputs.

//!
//! ```
//! use hadar_workload::{generate_trace, ArrivalPattern, TraceConfig};
//! use hadar_cluster::GpuCatalog;
//! let catalog = GpuCatalog::from_names(["V100", "P100", "K80"]);
//! let jobs = generate_trace(
//!     &TraceConfig { num_jobs: 8, seed: 1, pattern: ArrivalPattern::Static },
//!     &catalog,
//! );
//! assert_eq!(jobs.len(), 8);
//! assert!(jobs.iter().all(|j| j.total_iterations() > 0.0));
//! ```

pub mod arrivals;
pub mod categories;
pub mod job;
pub mod model;
pub mod philly;
pub mod stats;
pub mod throughput;
pub mod trace;

pub use arrivals::ArrivalPattern;
pub use categories::SizeClass;
pub use hadar_cluster::JobId;
pub use job::Job;
pub use model::DlTask;
pub use philly::{busiest_window, jobs_from_philly, parse_philly_csv, PhillyRow};
pub use stats::TraceStats;
pub use throughput::ThroughputProfile;
pub use trace::{generate_trace, load_trace_csv, save_trace_csv, TraceConfig};

//! The five Table II workloads and their device-heterogeneity profiles.
//!
//! Gavel (OSDI '20) observed that DNN training throughput varies across GPU
//! generations by model-dependent factors — e.g. ResNet-50 runs ~10× faster
//! on a V100 than a K80 while recurrent models see only ~2–3×. The paper
//! reuses Gavel's measured throughputs as scheduling input; since those raw
//! measurements are not in the paper, we ship a synthetic table that
//! preserves the published *ratios* (the only thing scheduling decisions
//! depend on). Checkpoint footprints and re-initialization times are
//! calibrated against Table IV (preemption overhead) assuming the prototype's
//! 1000 MiB/s SSD with a 0.25 effective-bandwidth serialization factor.

use crate::categories::SizeClass;

/// The representative deep-learning tasks of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DlTask {
    /// Image classification, ResNet-50 on ImageNet (XLarge).
    ResNet50,
    /// Image classification, ResNet-18 on CIFAR-10 (Small).
    ResNet18,
    /// Language modeling, 2-layer LSTM on Wikitext-2 (Large).
    Lstm,
    /// Image-to-image translation, CycleGAN on monet2photo (Medium).
    CycleGan,
    /// Language translation, Transformer on Multi30K de-en (Large).
    Transformer,
}

/// Per-GPU-type training throughput in iterations/second for one task
/// (one worker). Mirrors Gavel's heterogeneity ratios:
/// V100:K80 is 10× for ResNet-50, ~3× for the LSTM, intermediate otherwise.
const THROUGHPUT_TABLE: &[(DlTask, &[(&str, f64)])] = &[
    (
        DlTask::ResNet50,
        &[
            ("V100", 30.0),
            ("P100", 15.0),
            ("K80", 3.0),
            ("T4", 18.0),
            ("K520", 2.0),
        ],
    ),
    (
        DlTask::ResNet18,
        &[
            ("V100", 120.0),
            ("P100", 70.0),
            ("K80", 20.0),
            ("T4", 90.0),
            ("K520", 12.0),
        ],
    ),
    (
        DlTask::Lstm,
        &[
            ("V100", 60.0),
            ("P100", 40.0),
            ("K80", 20.0),
            ("T4", 45.0),
            ("K520", 12.0),
        ],
    ),
    (
        DlTask::CycleGan,
        &[
            ("V100", 8.0),
            ("P100", 5.0),
            ("K80", 1.5),
            ("T4", 6.0),
            ("K520", 1.0),
        ],
    ),
    (
        DlTask::Transformer,
        &[
            ("V100", 50.0),
            ("P100", 30.0),
            ("K80", 12.0),
            ("T4", 35.0),
            ("K520", 8.0),
        ],
    ),
];

impl DlTask {
    /// All tasks in Table II order.
    pub const ALL: [DlTask; 5] = [
        DlTask::ResNet50,
        DlTask::ResNet18,
        DlTask::Lstm,
        DlTask::CycleGan,
        DlTask::Transformer,
    ];

    /// Short model name as printed in tables.
    pub fn model_name(self) -> &'static str {
        match self {
            DlTask::ResNet50 => "ResNet-50",
            DlTask::ResNet18 => "ResNet-18",
            DlTask::Lstm => "LSTM",
            DlTask::CycleGan => "CycleGAN",
            DlTask::Transformer => "Transformer",
        }
    }

    /// Task category as in Table II.
    pub fn task_name(self) -> &'static str {
        match self {
            DlTask::ResNet50 | DlTask::ResNet18 => "Image Classification",
            DlTask::Lstm => "Language Modeling",
            DlTask::CycleGan => "Image-to-Image Translation",
            DlTask::Transformer => "Language Translation",
        }
    }

    /// Training dataset as in Table II.
    pub fn dataset(self) -> &'static str {
        match self {
            DlTask::ResNet50 => "ImageNet",
            DlTask::ResNet18 => "CIFAR-10",
            DlTask::Lstm => "Wikitext-2",
            DlTask::CycleGan => "monet2photo",
            DlTask::Transformer => "Multi30K (de-en)",
        }
    }

    /// The Table II relative-size class of this workload.
    pub fn size_class(self) -> SizeClass {
        match self {
            DlTask::ResNet50 => SizeClass::XLarge,
            DlTask::ResNet18 => SizeClass::Small,
            DlTask::Lstm => SizeClass::Large,
            DlTask::CycleGan => SizeClass::Medium,
            DlTask::Transformer => SizeClass::Large,
        }
    }

    /// Parse a model name produced by [`DlTask::model_name`].
    pub fn from_model_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|t| t.model_name() == name)
    }

    /// Iterations/second for one task of this model on the named GPU type,
    /// or `None` for an unknown type.
    pub fn throughput_on(self, gpu_name: &str) -> Option<f64> {
        let (_, row) = THROUGHPUT_TABLE.iter().find(|(t, _)| *t == self)?;
        row.iter().find(|(g, _)| *g == gpu_name).map(|&(_, x)| x)
    }

    /// Checkpoint footprint in MiB (parameters + optimizer state),
    /// calibrated against Table IV.
    pub fn checkpoint_mib(self) -> f64 {
        match self {
            DlTask::ResNet50 => 298.0,
            DlTask::ResNet18 => 189.0,
            DlTask::Lstm => 783.0,
            DlTask::CycleGan => 117.0,
            DlTask::Transformer => 153.0,
        }
    }

    /// Worker re-initialization time in seconds when a job is moved to a new
    /// allocation (process restart, gRPC re-registration, CUDA context and
    /// data-pipeline warm-up). Calibrated against Table IV.
    pub fn reinit_seconds(self) -> f64 {
        match self {
            DlTask::ResNet50 => 5.18,
            DlTask::ResNet18 => 3.13,
            DlTask::Lstm => 0.97,
            DlTask::CycleGan => 1.51,
            DlTask::Transformer => 1.33,
        }
    }

    /// A representative iterations-per-epoch (`N_j`, "data chunks" in the
    /// paper's terminology) for the model's dataset at its usual batch size.
    pub fn iterations_per_epoch(self) -> u64 {
        match self {
            DlTask::ResNet50 => 5_000,  // ImageNet / 256
            DlTask::ResNet18 => 390,    // CIFAR-10 / 128
            DlTask::Lstm => 1_320,      // Wikitext-2 bptt batches
            DlTask::CycleGan => 1_070,  // monet2photo pairs
            DlTask::Transformer => 906, // Multi30K / 32
        }
    }
}

impl std::fmt::Display for DlTask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.model_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heterogeneity_ratios_match_gavel_observations() {
        // ResNet-50: ~10x between V100 and K80 (paper §I cites this).
        let r50_v = DlTask::ResNet50.throughput_on("V100").unwrap();
        let r50_k = DlTask::ResNet50.throughput_on("K80").unwrap();
        assert!((r50_v / r50_k - 10.0).abs() < 1e-9);
        // LSTM: ~3x only (recurrent models benefit less).
        let lstm_v = DlTask::Lstm.throughput_on("V100").unwrap();
        let lstm_k = DlTask::Lstm.throughput_on("K80").unwrap();
        assert!((lstm_v / lstm_k - 3.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_covers_all_five_gpu_types() {
        for t in DlTask::ALL {
            for g in ["V100", "P100", "K80", "T4", "K520"] {
                let x = t.throughput_on(g).unwrap();
                assert!(x > 0.0, "{t} on {g}");
            }
            assert_eq!(t.throughput_on("TPUv4"), None);
        }
    }

    #[test]
    fn v100_dominates_every_model() {
        for t in DlTask::ALL {
            let v = t.throughput_on("V100").unwrap();
            for g in ["P100", "K80", "T4", "K520"] {
                assert!(v > t.throughput_on(g).unwrap(), "{t}: V100 vs {g}");
            }
        }
    }

    #[test]
    fn table2_metadata() {
        assert_eq!(DlTask::ResNet50.size_class(), SizeClass::XLarge);
        assert_eq!(DlTask::ResNet18.size_class(), SizeClass::Small);
        assert_eq!(DlTask::CycleGan.size_class(), SizeClass::Medium);
        assert_eq!(DlTask::Lstm.size_class(), SizeClass::Large);
        assert_eq!(DlTask::Transformer.size_class(), SizeClass::Large);
        assert_eq!(DlTask::Transformer.dataset(), "Multi30K (de-en)");
        assert_eq!(DlTask::CycleGan.task_name(), "Image-to-Image Translation");
    }

    #[test]
    fn model_name_roundtrip() {
        for t in DlTask::ALL {
            assert_eq!(DlTask::from_model_name(t.model_name()), Some(t));
        }
        assert_eq!(DlTask::from_model_name("AlexNet"), None);
    }

    #[test]
    fn checkpoint_calibration_against_table4() {
        // Table IV (w/o reallocation): overhead = save_time / 360 s where
        // save_time = ckpt_mib / 250 MiB/s effective bandwidth.
        let expect = [
            (DlTask::ResNet50, 0.33),
            (DlTask::ResNet18, 0.21),
            (DlTask::Lstm, 0.87),
            (DlTask::CycleGan, 0.13),
            (DlTask::Transformer, 0.17),
        ];
        for (t, pct) in expect {
            let save = t.checkpoint_mib() / 250.0;
            let overhead = save / 360.0 * 100.0;
            assert!(
                (overhead - pct).abs() < 0.03,
                "{t}: modeled {overhead:.2}% vs paper {pct}%"
            );
        }
    }
}

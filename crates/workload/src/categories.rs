//! The four GPU-hour size classes used to bucket trace jobs (§IV-A).

use std::ops::Range;

/// Size class of a job by its total GPU-time, as defined in §IV-A:
/// Small (0–1 GPU-hours), Medium (1–10), Large (10–50), XLarge (60–100).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SizeClass {
    /// 0–1 GPU-hours.
    Small,
    /// 1–10 GPU-hours.
    Medium,
    /// 10–50 GPU-hours.
    Large,
    /// 60–100 GPU-hours.
    XLarge,
}

impl SizeClass {
    /// All classes, smallest first.
    pub const ALL: [SizeClass; 4] = [
        SizeClass::Small,
        SizeClass::Medium,
        SizeClass::Large,
        SizeClass::XLarge,
    ];

    /// The GPU-hour range of this class (paper §IV-A).
    ///
    /// Note the paper's buckets leave a gap at 50–60 GPU-hours; jobs there do
    /// not occur in generated traces, and [`SizeClass::of_gpu_hours`] assigns
    /// them to `XLarge`.
    pub fn gpu_hour_range(self) -> Range<f64> {
        match self {
            SizeClass::Small => 0.05..1.0,
            SizeClass::Medium => 1.0..10.0,
            SizeClass::Large => 10.0..50.0,
            SizeClass::XLarge => 60.0..100.0,
        }
    }

    /// Classify a GPU-hour total.
    pub fn of_gpu_hours(hours: f64) -> SizeClass {
        if hours < 1.0 {
            SizeClass::Small
        } else if hours < 10.0 {
            SizeClass::Medium
        } else if hours < 50.0 {
            SizeClass::Large
        } else {
            SizeClass::XLarge
        }
    }

    /// Short label as used in Table II ("S", "M", "L", "XL").
    pub fn label(self) -> &'static str {
        match self {
            SizeClass::Small => "S",
            SizeClass::Medium => "M",
            SizeClass::Large => "L",
            SizeClass::XLarge => "XL",
        }
    }

    /// Gang-size choices and weights conditioned on the class. Mirrors the
    /// heavy-tailed Philly-trace request pattern: most jobs are small gangs;
    /// big-GPU-time jobs request larger gangs.
    pub fn gang_distribution(self) -> &'static [(u32, f64)] {
        match self {
            SizeClass::Small => &[(1, 0.7), (2, 0.3)],
            SizeClass::Medium => &[(1, 0.4), (2, 0.4), (4, 0.2)],
            SizeClass::Large => &[(2, 0.3), (4, 0.5), (8, 0.2)],
            SizeClass::XLarge => &[(4, 0.5), (8, 0.5)],
        }
    }
}

impl std::fmt::Display for SizeClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_ranges() {
        assert_eq!(SizeClass::of_gpu_hours(0.2), SizeClass::Small);
        assert_eq!(SizeClass::of_gpu_hours(1.0), SizeClass::Medium);
        assert_eq!(SizeClass::of_gpu_hours(9.99), SizeClass::Medium);
        assert_eq!(SizeClass::of_gpu_hours(10.0), SizeClass::Large);
        assert_eq!(SizeClass::of_gpu_hours(55.0), SizeClass::XLarge);
        assert_eq!(SizeClass::of_gpu_hours(99.0), SizeClass::XLarge);
    }

    #[test]
    fn every_range_classifies_to_itself() {
        for c in SizeClass::ALL {
            let r = c.gpu_hour_range();
            assert_eq!(SizeClass::of_gpu_hours(r.start), c);
            assert_eq!(SizeClass::of_gpu_hours((r.start + r.end) / 2.0), c);
        }
    }

    #[test]
    fn gang_distributions_are_normalized() {
        for c in SizeClass::ALL {
            let total: f64 = c.gang_distribution().iter().map(|&(_, w)| w).sum();
            assert!((total - 1.0).abs() < 1e-12, "{c}: weights sum to {total}");
            for &(g, _) in c.gang_distribution() {
                assert!((1..=8).contains(&g));
            }
        }
    }

    #[test]
    fn labels() {
        let labels: Vec<_> = SizeClass::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels, vec!["S", "M", "L", "XL"]);
    }
}

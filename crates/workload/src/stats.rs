//! Trace statistics: the workload-shape summaries used to sanity-check
//! generated traces against the Philly-trace characteristics the paper's
//! recipe targets (heavy-tailed GPU-time, mixed gang sizes, Poisson
//! arrivals).

use std::collections::BTreeMap;

use crate::categories::SizeClass;
use crate::job::Job;
use crate::model::DlTask;

/// Aggregate shape of a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Jobs per size class.
    pub per_class: BTreeMap<SizeClass, usize>,
    /// Jobs per model.
    pub per_model: BTreeMap<DlTask, usize>,
    /// Jobs per gang size.
    pub per_gang: BTreeMap<u32, usize>,
    /// Total GPU-hours across the trace (best-case device).
    pub total_gpu_hours: f64,
    /// Mean inter-arrival gap in seconds (0 for static traces).
    pub mean_interarrival_s: f64,
    /// Fraction of total GPU-hours contributed by the largest decile of
    /// jobs — the heavy-tail indicator (Philly-style traces are dominated
    /// by their biggest jobs).
    pub top_decile_gpu_hour_share: f64,
}

impl TraceStats {
    /// Compute statistics over `jobs`.
    pub fn of(jobs: &[Job]) -> Self {
        let mut per_class = BTreeMap::new();
        let mut per_model = BTreeMap::new();
        let mut per_gang = BTreeMap::new();
        let mut hours: Vec<f64> = Vec::with_capacity(jobs.len());
        for j in jobs {
            *per_class.entry(j.size_class()).or_insert(0) += 1;
            *per_model.entry(j.model).or_insert(0) += 1;
            *per_gang.entry(j.gang).or_insert(0) += 1;
            hours.push(j.gpu_hours());
        }
        let total_gpu_hours: f64 = hours.iter().sum();

        let mean_interarrival_s = if jobs.len() > 1 {
            let mut arrivals: Vec<f64> = jobs.iter().map(|j| j.arrival).collect();
            arrivals.sort_by(|a, b| a.partial_cmp(b).expect("finite arrivals"));
            (arrivals.last().expect("non-empty") - arrivals[0]) / (jobs.len() - 1) as f64
        } else {
            0.0
        };

        let top_decile_gpu_hour_share = if total_gpu_hours > 0.0 && !hours.is_empty() {
            hours.sort_by(|a, b| b.partial_cmp(a).expect("finite hours"));
            let top = hours.len().div_ceil(10);
            hours.iter().take(top).sum::<f64>() / total_gpu_hours
        } else {
            0.0
        };

        Self {
            per_class,
            per_model,
            per_gang,
            total_gpu_hours,
            mean_interarrival_s,
            top_decile_gpu_hour_share,
        }
    }

    /// Render a compact human-readable summary.
    pub fn render(&self) -> String {
        let classes: Vec<String> = self
            .per_class
            .iter()
            .map(|(c, n)| format!("{c}:{n}"))
            .collect();
        let gangs: Vec<String> = self
            .per_gang
            .iter()
            .map(|(g, n)| format!("{g}-GPU:{n}"))
            .collect();
        format!(
            "classes [{}], gangs [{}], {:.0} GPU-hours total, top-decile share {:.0}%, mean gap {:.0}s",
            classes.join(" "),
            gangs.join(" "),
            self.total_gpu_hours,
            self.top_decile_gpu_hour_share * 100.0,
            self.mean_interarrival_s,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{generate_trace, TraceConfig};
    use hadar_cluster::GpuCatalog;

    fn catalog() -> GpuCatalog {
        GpuCatalog::from_names(["V100", "P100", "K80"])
    }

    #[test]
    fn paper_trace_shape_is_philly_like() {
        let jobs = generate_trace(&TraceConfig::paper_static(7), &catalog());
        let s = TraceStats::of(&jobs);
        // All four classes populated, roughly uniformly (±50 %).
        for c in SizeClass::ALL {
            let n = *s.per_class.get(&c).unwrap_or(&0);
            assert!(
                (60..=180).contains(&n),
                "{c}: {n} jobs out of 480 is not ~uniform"
            );
        }
        // Heavy tail: the top 10 % of jobs carry over half the GPU-time.
        assert!(
            s.top_decile_gpu_hour_share > 0.25,
            "share {}",
            s.top_decile_gpu_hour_share
        );
        // Static trace → no inter-arrival gap.
        assert_eq!(s.mean_interarrival_s, 0.0);
        // Gangs follow the class-conditional distributions (1..8).
        assert!(s.per_gang.keys().all(|g| [1, 2, 4, 8].contains(g)));
    }

    #[test]
    fn poisson_interarrival_matches_rate() {
        let jobs = generate_trace(&TraceConfig::paper_continuous(3), &catalog());
        let s = TraceStats::of(&jobs);
        // λ = 60/hour → mean gap ≈ 60 s.
        assert!(
            (s.mean_interarrival_s - 60.0).abs() < 12.0,
            "gap {}",
            s.mean_interarrival_s
        );
    }

    #[test]
    fn render_mentions_all_sections() {
        let jobs = generate_trace(&TraceConfig::paper_static(1), &catalog());
        let r = TraceStats::of(&jobs).render();
        assert!(r.contains("classes"));
        assert!(r.contains("GPU-hours"));
    }

    #[test]
    fn empty_trace() {
        let s = TraceStats::of(&[]);
        assert_eq!(s.total_gpu_hours, 0.0);
        assert_eq!(s.top_decile_gpu_hour_share, 0.0);
        assert!(s.per_class.is_empty());
    }
}

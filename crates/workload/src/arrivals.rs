//! Job arrival processes (§IV-A): *static* (all jobs available at t = 0) and
//! *continuous* (Poisson arrivals with a configurable rate λ).

use hadar_rng::Rng;

/// Arrival pattern for a generated trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalPattern {
    /// All jobs submitted at time 0; no later arrivals.
    Static,
    /// Poisson process with `jobs_per_hour` mean arrival rate λ.
    Poisson {
        /// Mean arrivals per hour.
        jobs_per_hour: f64,
    },
}

impl ArrivalPattern {
    /// The paper's continuous-trace default: 480 jobs over the 8 busiest
    /// trace hours ⇒ λ = 60 jobs/hour.
    pub fn paper_continuous() -> Self {
        ArrivalPattern::Poisson {
            jobs_per_hour: 60.0,
        }
    }

    /// Generate `n` arrival times in seconds, non-decreasing.
    pub fn generate<R: Rng>(&self, n: usize, rng: &mut R) -> Vec<f64> {
        match *self {
            ArrivalPattern::Static => vec![0.0; n],
            ArrivalPattern::Poisson { jobs_per_hour } => {
                assert!(
                    jobs_per_hour > 0.0 && jobs_per_hour.is_finite(),
                    "Poisson rate must be positive"
                );
                let mean_gap_s = 3600.0 / jobs_per_hour;
                let mut t = 0.0;
                (0..n)
                    .map(|_| {
                        // Inverse-CDF exponential sample; `1 - u ∈ (0, 1]`
                        // keeps ln() finite.
                        let u: f64 = rng.gen_f64();
                        t += -mean_gap_s * (1.0 - u).ln();
                        t
                    })
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hadar_rng::StdRng;

    #[test]
    fn static_pattern_is_all_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = ArrivalPattern::Static.generate(5, &mut rng);
        assert_eq!(a, vec![0.0; 5]);
    }

    #[test]
    fn poisson_is_sorted_and_positive() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = ArrivalPattern::Poisson {
            jobs_per_hour: 60.0,
        }
        .generate(200, &mut rng);
        assert_eq!(a.len(), 200);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        assert!(a[0] > 0.0);
    }

    #[test]
    fn poisson_mean_gap_matches_rate() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let a = ArrivalPattern::Poisson {
            jobs_per_hour: 120.0,
        }
        .generate(n, &mut rng);
        let mean_gap = a.last().unwrap() / n as f64;
        // Expected gap 30 s; the sample mean should be within a few percent.
        assert!(
            (mean_gap - 30.0).abs() < 1.5,
            "mean gap {mean_gap} far from 30 s"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let gen = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            ArrivalPattern::paper_continuous().generate(50, &mut rng)
        };
        assert_eq!(gen(3), gen(3));
        assert_ne!(gen(3), gen(4));
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        ArrivalPattern::Poisson { jobs_per_hour: 0.0 }.generate(1, &mut rng);
    }
}

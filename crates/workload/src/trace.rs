//! Synthetic Philly-style trace generation (§IV-A) and CSV round-tripping.
//!
//! The paper samples 480 jobs from the busiest hours of the Microsoft trace,
//! buckets them by GPU-time into four classes, and — because the trace lacks
//! model information — *uniformly samples the job type from these categories*
//! and assigns the Table II model of that size. [`generate_trace`] implements
//! the same recipe with a seeded RNG so every experiment is reproducible.

use hadar_rng::{Rng, StdRng};

use hadar_cluster::{GpuCatalog, JobId};

use crate::arrivals::ArrivalPattern;
use crate::categories::SizeClass;
use crate::job::Job;
use crate::model::DlTask;

/// Configuration of a synthetic trace.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Number of jobs (the paper uses 480).
    pub num_jobs: usize,
    /// RNG seed; equal seeds yield identical traces.
    pub seed: u64,
    /// Arrival process.
    pub pattern: ArrivalPattern,
}

impl TraceConfig {
    /// The paper's static-trace setting: 480 jobs, all present at t = 0.
    pub fn paper_static(seed: u64) -> Self {
        Self {
            num_jobs: 480,
            seed,
            pattern: ArrivalPattern::Static,
        }
    }

    /// The paper's continuous-trace setting: 480 jobs, Poisson λ = 60/hour.
    pub fn paper_continuous(seed: u64) -> Self {
        Self {
            num_jobs: 480,
            seed,
            pattern: ArrivalPattern::paper_continuous(),
        }
    }
}

/// Table II models available for a size class.
fn models_of_class(class: SizeClass) -> &'static [DlTask] {
    match class {
        SizeClass::Small => &[DlTask::ResNet18],
        SizeClass::Medium => &[DlTask::CycleGan],
        SizeClass::Large => &[DlTask::Lstm, DlTask::Transformer],
        SizeClass::XLarge => &[DlTask::ResNet50],
    }
}

/// Sample from a discrete weighted distribution.
fn weighted_choice<R: Rng>(choices: &[(u32, f64)], rng: &mut R) -> u32 {
    let total: f64 = choices.iter().map(|&(_, w)| w).sum();
    let mut x = rng.gen_f64() * total;
    for &(v, w) in choices {
        if x < w {
            return v;
        }
        x -= w;
    }
    choices.last().expect("non-empty distribution").0
}

/// Generate a trace against `catalog` (which decides which GPU types the
/// throughput rows cover).
///
/// Job ids are dense `0..num_jobs` in arrival order.
pub fn generate_trace(config: &TraceConfig, catalog: &GpuCatalog) -> Vec<Job> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut arrivals = config.pattern.generate(config.num_jobs, &mut rng);
    arrivals.sort_by(|a, b| a.partial_cmp(b).expect("arrival times are finite"));

    (0..config.num_jobs)
        .map(|i| {
            // Uniformly sample the size class (§IV-A), then GPU-hours within
            // the class range, then a Table II model of that size.
            let class = SizeClass::ALL[rng.gen_range_usize(0..SizeClass::ALL.len())];
            let range = class.gpu_hour_range();
            let gpu_hours = rng.gen_range_f64(range.start..range.end);
            let models = models_of_class(class);
            let model = models[rng.gen_range_usize(0..models.len())];
            let gang = weighted_choice(class.gang_distribution(), &mut rng);

            // Choose E_j so the job's best-case GPU-time equals the sampled
            // bucket value: gpu_hours = W · t_min / 3600 with
            // t_min = E·N / (W · X_max)  ⇒  E = gpu_hours·3600·X_max / N.
            let profile = crate::throughput::ThroughputProfile::for_model(model, catalog);
            let n = model.iterations_per_epoch();
            let x_max = profile.max_rate();
            assert!(x_max > 0.0, "{model} cannot run on any catalog type");
            let epochs = ((gpu_hours * 3600.0 * x_max) / n as f64).round().max(1.0) as u64;

            Job::new(
                JobId(i as u32),
                model,
                arrivals[i],
                gang,
                epochs,
                n,
                profile,
            )
        })
        .collect()
}

/// Serialize a trace to CSV (`id,model,arrival_s,gang,epochs,iters_per_epoch`).
pub fn save_trace_csv(jobs: &[Job]) -> String {
    let mut out = String::from("id,model,arrival_s,gang,epochs,iters_per_epoch\n");
    for j in jobs {
        out.push_str(&format!(
            "{},{},{},{},{},{}\n",
            j.id.0,
            j.model.model_name(),
            j.arrival,
            j.gang,
            j.epochs,
            j.iters_per_epoch
        ));
    }
    out
}

/// Parse a CSV produced by [`save_trace_csv`], resolving throughput rows
/// against `catalog`.
///
/// Returns an error message describing the first malformed line, if any.
pub fn load_trace_csv(csv: &str, catalog: &GpuCatalog) -> Result<Vec<Job>, String> {
    let mut jobs = Vec::new();
    for (lineno, line) in csv.lines().enumerate() {
        if lineno == 0 || line.trim().is_empty() {
            continue; // header / blank
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 6 {
            return Err(format!("line {}: expected 6 fields", lineno + 1));
        }
        let parse_err = |what: &str| format!("line {}: bad {what}", lineno + 1);
        let id: u32 = fields[0].parse().map_err(|_| parse_err("id"))?;
        let model = DlTask::from_model_name(fields[1]).ok_or_else(|| parse_err("model name"))?;
        let arrival: f64 = fields[2].parse().map_err(|_| parse_err("arrival"))?;
        let gang: u32 = fields[3].parse().map_err(|_| parse_err("gang"))?;
        let epochs: u64 = fields[4].parse().map_err(|_| parse_err("epochs"))?;
        let n: u64 = fields[5]
            .parse()
            .map_err(|_| parse_err("iters_per_epoch"))?;
        jobs.push(Job::new(
            JobId(id),
            model,
            arrival,
            gang,
            epochs,
            n,
            crate::throughput::ThroughputProfile::for_model(model, catalog),
        ));
    }
    Ok(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> GpuCatalog {
        GpuCatalog::from_names(["V100", "P100", "K80"])
    }

    #[test]
    fn trace_is_deterministic_per_seed() {
        let cfg = TraceConfig::paper_static(11);
        let a = generate_trace(&cfg, &catalog());
        let b = generate_trace(&cfg, &catalog());
        assert_eq!(a, b);
        let c = generate_trace(&TraceConfig::paper_static(12), &catalog());
        assert_ne!(a, c);
    }

    #[test]
    fn paper_static_shape() {
        let jobs = generate_trace(&TraceConfig::paper_static(1), &catalog());
        assert_eq!(jobs.len(), 480);
        assert!(jobs.iter().all(|j| j.arrival == 0.0));
        assert!(jobs.iter().all(|j| j.gang >= 1 && j.gang <= 8));
        // All four classes present in a 480-job uniform sample.
        for class in SizeClass::ALL {
            assert!(
                jobs.iter().any(|j| j.size_class() == class),
                "missing class {class}"
            );
        }
    }

    #[test]
    fn generated_gpu_hours_land_in_sampled_class() {
        // E_j is rounded, so the realized GPU-hours may drift slightly; the
        // class should still be overwhelmingly consistent with Table II's
        // model-size mapping.
        let jobs = generate_trace(&TraceConfig::paper_static(5), &catalog());
        let consistent = jobs
            .iter()
            .filter(|j| j.size_class() == j.model.size_class())
            .count();
        assert!(
            consistent as f64 >= 0.95 * jobs.len() as f64,
            "only {consistent}/480 jobs in their model's size class"
        );
    }

    #[test]
    fn continuous_trace_arrives_over_hours() {
        let jobs = generate_trace(&TraceConfig::paper_continuous(2), &catalog());
        let last = jobs.last().unwrap().arrival;
        // 480 jobs at 60/hour ≈ 8 hours ≈ 28 800 s.
        assert!(last > 3600.0 * 5.0 && last < 3600.0 * 12.0, "last={last}");
        assert!(jobs.windows(2).all(|w| w[0].arrival <= w[1].arrival));
    }

    #[test]
    fn csv_roundtrip() {
        let cfg = TraceConfig {
            num_jobs: 25,
            seed: 3,
            pattern: ArrivalPattern::paper_continuous(),
        };
        let jobs = generate_trace(&cfg, &catalog());
        let csv = save_trace_csv(&jobs);
        let back = load_trace_csv(&csv, &catalog()).unwrap();
        assert_eq!(jobs, back);
    }

    #[test]
    fn csv_rejects_malformed_lines() {
        let cat = catalog();
        assert!(load_trace_csv("id\n1,2\n", &cat).is_err());
        assert!(load_trace_csv("h\n0,NotAModel,0.0,1,1,10\n", &cat)
            .unwrap_err()
            .contains("model name"));
        assert!(load_trace_csv("h\n0,LSTM,zero,1,1,10\n", &cat)
            .unwrap_err()
            .contains("arrival"));
    }

    #[test]
    fn weighted_choice_respects_support() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            let v = weighted_choice(&[(1, 0.5), (4, 0.5)], &mut rng);
            assert!(v == 1 || v == 4);
        }
    }
}

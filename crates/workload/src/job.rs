//! The scheduler-facing job record.

use hadar_cluster::{GpuCatalog, JobId};

use crate::categories::SizeClass;
use crate::model::DlTask;
use crate::throughput::ThroughputProfile;

/// A deep-learning training job as seen by the scheduler (§III-A / Table I):
/// arrival time `a_j`, gang size `W_j`, epochs `E_j`, iterations per epoch
/// `N_j`, and the device-throughput row `X_j^r`.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// Dense job id.
    pub id: JobId,
    /// The model behind this job (Table II).
    pub model: DlTask,
    /// Arrival (submission) time `a_j` in seconds.
    pub arrival: f64,
    /// Gang size `W_j`: number of workers the job must receive each round it
    /// runs (All-or-Nothing, constraint 1e).
    pub gang: u32,
    /// Total training epochs `E_j`.
    pub epochs: u64,
    /// Iterations ("data chunks") per epoch, `N_j`.
    pub iters_per_epoch: u64,
    /// Device throughput row `X_j^r` (iterations/sec per worker).
    pub profile: ThroughputProfile,
}

impl Job {
    /// Construct a job; validates that the gang size and work are non-zero.
    pub fn new(
        id: JobId,
        model: DlTask,
        arrival: f64,
        gang: u32,
        epochs: u64,
        iters_per_epoch: u64,
        profile: ThroughputProfile,
    ) -> Self {
        assert!(gang >= 1, "gang size W_j must be at least 1");
        assert!(epochs >= 1 && iters_per_epoch >= 1, "job must carry work");
        assert!(arrival >= 0.0 && arrival.is_finite());
        Self {
            id,
            model,
            arrival,
            gang,
            epochs,
            iters_per_epoch,
            profile,
        }
    }

    /// Construct directly from a model and a catalog, resolving throughput.
    #[allow(clippy::too_many_arguments)]
    pub fn for_model(
        id: JobId,
        model: DlTask,
        catalog: &GpuCatalog,
        arrival: f64,
        gang: u32,
        epochs: u64,
    ) -> Self {
        Self::new(
            id,
            model,
            arrival,
            gang,
            epochs,
            model.iterations_per_epoch(),
            ThroughputProfile::for_model(model, catalog),
        )
    }

    /// Total iterations to completion, `E_j · N_j` (constraint 1a's
    /// right-hand side).
    #[inline]
    pub fn total_iterations(&self) -> f64 {
        (self.epochs as f64) * (self.iters_per_epoch as f64)
    }

    /// The job's best-case aggregate rate: `W_j · max_r X_j^r`
    /// iterations/sec when all workers sit on the fastest type.
    pub fn best_rate(&self) -> f64 {
        self.gang as f64 * self.profile.max_rate()
    }

    /// The job's worst-case usable aggregate rate:
    /// `W_j · min_r X_j^r` over usable types.
    pub fn worst_rate(&self) -> f64 {
        self.gang as f64 * self.profile.min_usable_rate()
    }

    /// `t_j^min` (Eq. 8): minimum possible runtime, all workers on the
    /// fastest device type.
    pub fn min_runtime(&self) -> f64 {
        self.total_iterations() / self.best_rate()
    }

    /// `t_j^max` (Eq. 8): maximum runtime when stuck on the slowest usable
    /// type. Infinite if the job cannot run at all.
    pub fn max_runtime(&self) -> f64 {
        let worst = self.worst_rate();
        if worst > 0.0 {
            self.total_iterations() / worst
        } else {
            f64::INFINITY
        }
    }

    /// Total GPU-time of the job in hours, assuming it runs on the fastest
    /// type: `W_j · t_j^min / 3600` — the quantity the paper buckets into
    /// size classes.
    pub fn gpu_hours(&self) -> f64 {
        self.gang as f64 * self.min_runtime() / 3600.0
    }

    /// The size class of this job by its GPU-hours.
    pub fn size_class(&self) -> SizeClass {
        SizeClass::of_gpu_hours(self.gpu_hours())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> GpuCatalog {
        GpuCatalog::from_names(["V100", "P100", "K80"])
    }

    #[test]
    fn derived_quantities() {
        // ResNet-18: V100 120 it/s, K80 20 it/s, N = 390.
        let j = Job::for_model(JobId(0), DlTask::ResNet18, &catalog(), 0.0, 2, 100);
        assert_eq!(j.total_iterations(), 39_000.0);
        assert_eq!(j.best_rate(), 240.0);
        assert_eq!(j.worst_rate(), 40.0);
        assert!((j.min_runtime() - 39_000.0 / 240.0).abs() < 1e-9);
        assert!((j.max_runtime() - 39_000.0 / 40.0).abs() < 1e-9);
        // 2 GPUs * 162.5 s = 0.09 GPU-hours => Small.
        assert_eq!(j.size_class(), SizeClass::Small);
    }

    #[test]
    fn unrunnable_job_has_infinite_max_runtime() {
        let p = ThroughputProfile::from_rates(vec![0.0]);
        let j = Job::new(JobId(1), DlTask::Lstm, 0.0, 1, 1, 10, p);
        assert!(j.max_runtime().is_infinite());
        assert_eq!(j.worst_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "gang size")]
    fn zero_gang_rejected() {
        let p = ThroughputProfile::from_rates(vec![1.0]);
        Job::new(JobId(0), DlTask::Lstm, 0.0, 0, 1, 1, p);
    }

    #[test]
    #[should_panic(expected = "carry work")]
    fn zero_work_rejected() {
        let p = ThroughputProfile::from_rates(vec![1.0]);
        Job::new(JobId(0), DlTask::Lstm, 0.0, 1, 0, 5, p);
    }

    #[test]
    fn gpu_hours_scales_with_epochs() {
        let a = Job::for_model(JobId(0), DlTask::ResNet50, &catalog(), 0.0, 4, 10);
        let b = Job::for_model(JobId(1), DlTask::ResNet50, &catalog(), 0.0, 4, 20);
        assert!((b.gpu_hours() / a.gpu_hours() - 2.0).abs() < 1e-9);
    }
}

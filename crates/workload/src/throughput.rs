//! Per-job device throughput `X_j^r`, resolved against a cluster catalog.

use hadar_cluster::{GpuCatalog, GpuTypeId};

use crate::model::DlTask;

/// A job's iterations/second on each GPU type of a specific catalog:
/// the `X_j^r` row of the paper's throughput matrix.
///
/// Types the model cannot run on (unknown hardware) carry rate 0 and are
/// never selected by any scheduler.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputProfile {
    rates: Vec<f64>,
    /// Preference order (descending rate, zero-rate types excluded),
    /// precomputed at construction: `FIND_ALLOC` consults it for every
    /// candidate enumeration, so sorting on each call was pure waste.
    prefs: Vec<GpuTypeId>,
}

impl ThroughputProfile {
    /// Build a profile from explicit per-type rates (indexed by
    /// [`GpuTypeId`]).
    ///
    /// # Panics
    /// Panics if any rate is negative or NaN.
    pub fn from_rates(rates: Vec<f64>) -> Self {
        assert!(
            rates.iter().all(|x| x.is_finite() && *x >= 0.0),
            "throughput rates must be finite and non-negative"
        );
        let mut idx: Vec<usize> = (0..rates.len()).filter(|&i| rates[i] > 0.0).collect();
        idx.sort_by(|&a, &b| {
            rates[b]
                .partial_cmp(&rates[a])
                .expect("rates are finite")
                .then(a.cmp(&b))
        });
        let prefs = idx.into_iter().map(|i| GpuTypeId(i as u16)).collect();
        Self { rates, prefs }
    }

    /// Resolve a model's throughput table against a catalog.
    pub fn for_model(model: DlTask, catalog: &GpuCatalog) -> Self {
        Self::from_rates(
            catalog
                .iter()
                .map(|(_, name)| model.throughput_on(name).unwrap_or(0.0))
                .collect(),
        )
    }

    /// `X_j^r` for type `r` (0 for unknown types).
    #[inline]
    pub fn rate(&self, r: GpuTypeId) -> f64 {
        self.rates.get(r.index()).copied().unwrap_or(0.0)
    }

    /// The fastest type's rate, `max_r X_j^r`.
    pub fn max_rate(&self) -> f64 {
        self.rates.iter().copied().fold(0.0, f64::max)
    }

    /// The slowest *usable* type's rate, `min_r X_j^r` over types with
    /// non-zero rate. Returns 0.0 if the job can run nowhere.
    pub fn min_usable_rate(&self) -> f64 {
        self.rates
            .iter()
            .copied()
            .filter(|&x| x > 0.0)
            .fold(f64::INFINITY, f64::min)
            .min(f64::INFINITY)
            .pipe_finite()
    }

    /// GPU types sorted by descending rate (ties by id), zero-rate types
    /// excluded — the sort order used by `FIND_ALLOC` (Algorithm 2 line 23).
    /// Precomputed once at construction.
    #[inline]
    pub fn types_by_preference(&self) -> &[GpuTypeId] {
        &self.prefs
    }

    /// Number of type slots carried.
    pub fn len(&self) -> usize {
        self.rates.len()
    }

    /// Whether the profile carries no rates.
    pub fn is_empty(&self) -> bool {
        self.rates.is_empty()
    }

    /// Raw rates slice.
    pub fn raw(&self) -> &[f64] {
        &self.rates
    }

    /// Scale all rates by `factor` (used by the throughput profiler to model
    /// measurement noise and by ablations).
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor.is_finite() && factor >= 0.0);
        Self::from_rates(self.rates.iter().map(|x| x * factor).collect())
    }
}

trait PipeFinite {
    fn pipe_finite(self) -> f64;
}
impl PipeFinite for f64 {
    /// Map the "no usable type" sentinel (+inf) to 0.0.
    fn pipe_finite(self) -> f64 {
        if self.is_finite() {
            self
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_model_against_catalog() {
        let cat = GpuCatalog::from_names(["V100", "P100", "K80"]);
        let p = ThroughputProfile::for_model(DlTask::ResNet50, &cat);
        assert_eq!(p.rate(GpuTypeId(0)), 30.0);
        assert_eq!(p.rate(GpuTypeId(1)), 15.0);
        assert_eq!(p.rate(GpuTypeId(2)), 3.0);
        assert_eq!(p.max_rate(), 30.0);
        assert_eq!(p.min_usable_rate(), 3.0);
    }

    #[test]
    fn unknown_types_rate_zero_and_excluded_from_preference() {
        let cat = GpuCatalog::from_names(["V100", "FPGA-X"]);
        let p = ThroughputProfile::for_model(DlTask::Lstm, &cat);
        assert_eq!(p.rate(GpuTypeId(1)), 0.0);
        assert_eq!(p.types_by_preference(), vec![GpuTypeId(0)]);
        // Out-of-range id reads 0.
        assert_eq!(p.rate(GpuTypeId(9)), 0.0);
    }

    #[test]
    fn preference_order_is_descending_rate() {
        let p = ThroughputProfile::from_rates(vec![15.0, 30.0, 3.0]);
        assert_eq!(
            p.types_by_preference(),
            vec![GpuTypeId(1), GpuTypeId(0), GpuTypeId(2)]
        );
    }

    #[test]
    fn preference_ties_break_by_id() {
        let p = ThroughputProfile::from_rates(vec![5.0, 5.0]);
        assert_eq!(p.types_by_preference(), vec![GpuTypeId(0), GpuTypeId(1)]);
    }

    #[test]
    fn min_usable_rate_of_unrunnable_job_is_zero() {
        let p = ThroughputProfile::from_rates(vec![0.0, 0.0]);
        assert_eq!(p.min_usable_rate(), 0.0);
        assert!(p.types_by_preference().is_empty());
    }

    #[test]
    fn scaled_multiplies_rates() {
        let p = ThroughputProfile::from_rates(vec![10.0, 4.0]).scaled(0.5);
        assert_eq!(p.rate(GpuTypeId(0)), 5.0);
        assert_eq!(p.rate(GpuTypeId(1)), 2.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn rejects_negative_rates() {
        ThroughputProfile::from_rates(vec![-1.0]);
    }
}

//! Gavel (Narayanan et al., OSDI '20), the job-level heterogeneity-aware
//! baseline.
//!
//! Gavel separates *policy* from *mechanism*:
//!
//! * The policy solves an optimization problem for the allocation matrix
//!   `Y[j][r]` — the fraction of time job `j` should spend on GPU type `r`.
//!   The paper configures Gavel "keeping the objective of its optimization
//!   problem similar to ours", i.e. maximize total effective throughput;
//!   Gavel's max-min (LAS) policy is also available.
//! * The mechanism serves `Y` in rounds: each round, `(job, type)` pairs are
//!   ranked by `priority[j][r] = Y[j][r] / received_fraction[j][r]` (types a
//!   job is behind on rank higher) and admitted greedily while `W_j` GPUs of
//!   type `r` remain — **all tasks on one type**, gang or nothing.
//!
//! The LP is re-solved only when the active job set changes (arrival or
//! completion), matching Gavel's own implementation. Every solve is exact:
//! the sparse revised simplex in `hadar-solver` stays fast at all Fig. 7
//! scales, and the optimal basis is cached across rounds (keyed by job
//! identity via [`hadar_solver::GavelBasisCache`]) so an arrival or
//! completion re-optimizes in a handful of pivots instead of a full
//! two-phase resolve. A malformed LP input surfaces as
//! [`GavelScheduler::last_lp_error`] and skips one scheduling decision
//! instead of aborting the sweep.

use std::collections::HashMap;

use hadar_cluster::{Allocation, GpuTypeId, JobId, JobPlacement, PlacementSlice, Usage};
use hadar_sim::{Scheduler, SchedulerContext};
use hadar_solver::{
    max_min_allocation_warm, max_total_throughput_allocation_warm, GavelBasisCache, GavelLpError,
    GavelLpInput,
};

/// Which Gavel policy objective to solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GavelPolicy {
    /// Maximize `Σ_j Σ_r Y[j][r] · X_j^r · W_j` (the paper's comparison
    /// setting).
    #[default]
    MaxTotalThroughput,
    /// Maximize the minimum normalized throughput across jobs (Gavel's LAS
    /// fairness policy).
    MaxMinFairness,
}

/// Gavel configuration.
#[derive(Debug, Clone, Copy)]
pub struct GavelConfig {
    /// Policy objective.
    pub policy: GavelPolicy,
    /// Reuse the previous round's optimal LP basis when the job set
    /// changes (on by default; disable to force cold solves, e.g. when
    /// isolating solver behavior in benchmarks).
    pub warm_start: bool,
}

impl Default for GavelConfig {
    fn default() -> Self {
        Self {
            policy: GavelPolicy::MaxTotalThroughput,
            warm_start: true,
        }
    }
}

/// The Gavel baseline scheduler.
pub struct GavelScheduler {
    config: GavelConfig,
    /// Cached allocation matrix rows per job.
    y: HashMap<JobId, Vec<f64>>,
    /// Rounds in which job `j` ran on type `r`.
    rounds_received: HashMap<JobId, Vec<f64>>,
    /// Job-set fingerprint of the cached LP solution.
    cached_set: u64,
    /// Optimal basis of the previous LP solve, remapped onto the next
    /// round's problem for warm-starting.
    basis_cache: Option<GavelBasisCache>,
    /// Most recent LP failure, if any (the round it occurred in scheduled
    /// nothing; the sweep continues).
    last_lp_error: Option<GavelLpError>,
}

impl GavelScheduler {
    /// Build with `config`.
    pub fn new(config: GavelConfig) -> Self {
        Self {
            config,
            y: HashMap::new(),
            rounds_received: HashMap::new(),
            cached_set: 0,
            basis_cache: None,
            last_lp_error: None,
        }
    }

    /// Build with defaults (the paper's comparison configuration).
    pub fn paper_default() -> Self {
        Self::new(GavelConfig::default())
    }

    /// The most recent LP error, if the last re-solve failed (malformed
    /// input; never happens for simulator-constructed problems).
    pub fn last_lp_error(&self) -> Option<&GavelLpError> {
        self.last_lp_error.as_ref()
    }

    fn job_set_fingerprint(ctx: &SchedulerContext<'_>) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for s in ctx.jobs {
            h ^= u64::from(s.job.id.0) + 1;
            h = h.wrapping_mul(0x100000001b3);
        }
        // Fold in the availability mask so a machine failure or recovery
        // re-solves the LP against the shrunken (or restored) capacity.
        h ^ ctx.availability.fingerprint()
    }

    fn solve(&mut self, ctx: &SchedulerContext<'_>) {
        let num_types = ctx.cluster.num_types();
        let input = GavelLpInput {
            throughput: ctx
                .jobs
                .iter()
                .map(|s| {
                    (0..num_types)
                        .map(|r| s.job.profile.rate(GpuTypeId(r as u16)))
                        .collect()
                })
                .collect(),
            gang: ctx.jobs.iter().map(|s| s.job.gang).collect(),
            capacity: (0..num_types)
                .map(|r| {
                    ctx.availability
                        .available_of_type(ctx.cluster, GpuTypeId(r as u16))
                })
                .collect(),
        };
        let keys: Vec<u64> = ctx.jobs.iter().map(|s| u64::from(s.job.id.0)).collect();
        let warm = if self.config.warm_start {
            self.basis_cache.as_ref()
        } else {
            None
        };
        ctx.telemetry.incr("gavel.lp_solves", 1.0);
        if warm.is_some() {
            ctx.telemetry.incr("gavel.lp_warm_starts", 1.0);
        }
        let solved = match self.config.policy {
            GavelPolicy::MaxTotalThroughput => {
                max_total_throughput_allocation_warm(&input, &keys, warm)
            }
            GavelPolicy::MaxMinFairness => max_min_allocation_warm(&input, &keys, warm),
        };
        self.y.clear();
        match solved {
            Ok((y, cache)) => {
                self.basis_cache = Some(cache);
                self.last_lp_error = None;
                for (s, row) in ctx.jobs.iter().zip(y) {
                    self.y.insert(s.job.id, row);
                }
            }
            Err(e) => {
                // Propagate instead of aborting: this round schedules
                // nothing, the next job-set change retries from cold.
                self.basis_cache = None;
                self.last_lp_error = Some(e);
                ctx.telemetry.incr("gavel.lp_errors", 1.0);
            }
        }
    }

    /// Place `gang` GPUs of type `r` across machines (most free first), or
    /// `None` if the type lacks capacity.
    fn place_on_type(
        ctx: &SchedulerContext<'_>,
        usage: &Usage,
        r: GpuTypeId,
        gang: u32,
    ) -> Option<JobPlacement> {
        let mut machines: Vec<(u32, hadar_cluster::MachineId)> = ctx
            .cluster
            .machine_ids()
            .filter(|&h| ctx.availability.is_up(h))
            .filter_map(|h| {
                let f = usage.free(ctx.cluster, h, r);
                (f > 0).then_some((f, h))
            })
            .collect();
        machines.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let mut remaining = gang;
        let mut slices = Vec::new();
        for (free, h) in machines {
            if remaining == 0 {
                break;
            }
            let take = free.min(remaining);
            slices.push(PlacementSlice {
                machine: h,
                gpu: r,
                count: take,
            });
            remaining -= take;
        }
        (remaining == 0).then(|| JobPlacement::from_slices(slices))
    }
}

impl Scheduler for GavelScheduler {
    fn name(&self) -> &str {
        "Gavel"
    }

    fn schedule(&mut self, ctx: &SchedulerContext<'_>) -> Allocation {
        if ctx.jobs.is_empty() {
            return Allocation::empty();
        }
        ctx.telemetry
            .gauge("gavel.active_jobs", ctx.jobs.len() as f64);
        let fp = Self::job_set_fingerprint(ctx);
        if fp != self.cached_set || self.y.is_empty() {
            self.solve(ctx);
            self.cached_set = fp;
        }

        let num_types = ctx.cluster.num_types();
        // Rank (job, type) pairs by Y / rounds-received (higher = more
        // behind target share).
        let mut ranked: Vec<(f64, usize, usize)> = Vec::new();
        for (idx, s) in ctx.jobs.iter().enumerate() {
            let Some(row) = self.y.get(&s.job.id) else {
                continue;
            };
            let recv = self
                .rounds_received
                .entry(s.job.id)
                .or_insert_with(|| vec![0.0; num_types]);
            for (r, &share) in row.iter().enumerate() {
                if share > 1e-9 {
                    let priority = share / (recv[r] + 1.0);
                    ranked.push((priority, idx, r));
                }
            }
        }
        ranked.sort_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .expect("finite priorities")
                .then(a.1.cmp(&b.1))
                .then(a.2.cmp(&b.2))
        });

        let mut usage = Usage::empty(ctx.cluster);
        let mut alloc = Allocation::empty();
        let mut placed: Vec<bool> = vec![false; ctx.jobs.len()];
        for (_, idx, r) in ranked {
            if placed[idx] {
                continue;
            }
            let s = &ctx.jobs[idx];
            let r = GpuTypeId(r as u16);
            // Job-level granularity: the whole gang on this single type.
            if let Some(p) = Self::place_on_type(ctx, &usage, r, s.job.gang) {
                for sl in p.slices() {
                    usage.add(sl.machine, sl.gpu, sl.count);
                }
                alloc.set(s.job.id, p);
                placed[idx] = true;
                if let Some(recv) = self.rounds_received.get_mut(&s.job.id) {
                    recv[r.index()] += 1.0;
                }
            }
        }
        alloc
    }

    fn on_completion(&mut self, job: JobId) {
        self.y.remove(&job);
        self.rounds_received.remove(&job);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hadar_cluster::Cluster;
    use hadar_sim::{SimConfig, Simulation};
    use hadar_workload::{generate_trace, ArrivalPattern, Job, TraceConfig};

    #[test]
    fn completes_static_trace() {
        let cluster = Cluster::paper_simulation();
        let jobs = generate_trace(
            &TraceConfig {
                num_jobs: 12,
                seed: 1,
                pattern: ArrivalPattern::Static,
            },
            cluster.catalog(),
        );
        let out = Simulation::new(cluster, jobs, SimConfig::default())
            .run(GavelScheduler::paper_default())
            .unwrap();
        assert_eq!(out.completed_jobs(), 12);
        assert!(!out.timed_out);
    }

    #[test]
    fn single_type_per_job_per_round() {
        // Gavel's defining limitation: a job's placement never mixes types.
        let cluster = Cluster::paper_simulation();
        let jobs = generate_trace(
            &TraceConfig {
                num_jobs: 10,
                seed: 2,
                pattern: ArrivalPattern::Static,
            },
            cluster.catalog(),
        );
        struct Probe {
            inner: GavelScheduler,
            violations: usize,
        }
        impl Scheduler for Probe {
            fn name(&self) -> &str {
                "probe"
            }
            fn schedule(&mut self, ctx: &SchedulerContext<'_>) -> Allocation {
                let a = self.inner.schedule(ctx);
                for (_, p) in a.iter() {
                    if p.gpu_types().len() > 1 {
                        self.violations += 1;
                    }
                }
                a
            }
            fn on_arrival(&mut self, job: &Job) {
                self.inner.on_arrival(job);
            }
            fn on_completion(&mut self, job: JobId) {
                self.inner.on_completion(job);
            }
        }
        let mut probe = Probe {
            inner: GavelScheduler::paper_default(),
            violations: 0,
        };
        let out = Simulation::new(cluster, jobs, SimConfig::default())
            .run(&mut probe)
            .unwrap();
        assert_eq!(out.completed_jobs(), 10);
        assert_eq!(probe.violations, 0, "Gavel must never mix GPU types");
    }

    #[test]
    fn max_min_policy_also_completes() {
        let cluster = Cluster::paper_simulation();
        let jobs = generate_trace(
            &TraceConfig {
                num_jobs: 8,
                seed: 3,
                pattern: ArrivalPattern::Static,
            },
            cluster.catalog(),
        );
        let out = Simulation::new(cluster, jobs, SimConfig::default())
            .run(GavelScheduler::new(GavelConfig {
                policy: GavelPolicy::MaxMinFairness,
                ..GavelConfig::default()
            }))
            .unwrap();
        assert_eq!(out.completed_jobs(), 8);
    }

    #[test]
    fn cold_solves_complete_like_warm() {
        // `warm_start: false` forces a cold exact solve on every job-set
        // change; the trace must still complete either way.
        let cluster = Cluster::paper_simulation();
        let jobs = generate_trace(
            &TraceConfig {
                num_jobs: 10,
                seed: 4,
                pattern: ArrivalPattern::paper_continuous(),
            },
            cluster.catalog(),
        );
        for warm_start in [false, true] {
            let mut sched = GavelScheduler::new(GavelConfig {
                warm_start,
                ..GavelConfig::default()
            });
            let out = Simulation::new(cluster.clone(), jobs.clone(), SimConfig::default())
                .run(&mut sched)
                .unwrap();
            assert_eq!(out.completed_jobs(), 10, "warm_start={warm_start}");
            assert!(sched.last_lp_error().is_none());
        }
    }

    #[test]
    fn completes_with_machine_failures() {
        // Failures shrink the LP capacity and the placement pool; jobs on a
        // dying machine are evicted and must still finish eventually.
        let cluster = Cluster::paper_simulation();
        let jobs = generate_trace(
            &TraceConfig {
                num_jobs: 8,
                seed: 6,
                pattern: ArrivalPattern::Static,
            },
            cluster.catalog(),
        );
        let n = jobs.len();
        let config = SimConfig {
            failure: Some(hadar_sim::FailureModel {
                mtbf_rounds: 20.0,
                mttr_rounds: 3.0,
                seed: 11,
            }),
            ..SimConfig::default()
        };
        let out = Simulation::new(cluster, jobs, config)
            .run(GavelScheduler::paper_default())
            .unwrap();
        assert_eq!(out.completed_jobs(), n);
        hadar_sim::check_lifecycle(out.events(), n).unwrap();
    }

    #[test]
    fn deterministic() {
        let cluster = Cluster::paper_simulation();
        let jobs = generate_trace(
            &TraceConfig {
                num_jobs: 9,
                seed: 5,
                pattern: ArrivalPattern::paper_continuous(),
            },
            cluster.catalog(),
        );
        let run = || {
            Simulation::new(cluster.clone(), jobs.clone(), SimConfig::default())
                .run(GavelScheduler::paper_default())
                .unwrap()
        };
        assert_eq!(run().jcts(), run().jcts());
    }
}

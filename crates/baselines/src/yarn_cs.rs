//! Apache YARN's capacity scheduler (YARN-CS), the production baseline.
//!
//! YARN-CS is what many enterprise DL clusters ran before DL-specific
//! schedulers: jobs are served FIFO and **non-preemptively** — once a job
//! starts, it holds its containers (GPUs) until completion. There is no
//! checkpoint/restart churn (hence the paper's observation that YARN-CS
//! attains the highest GPU utilization — its held GPUs never stall), but the
//! FIFO queue head blocks: when the next job's gang does not fit, everything
//! behind it waits, yielding the paper's 7–15× worse average JCT than
//! Hadar. The scheduler is heterogeneity-oblivious: it hands out whatever
//! free GPUs exist in machine order.

use std::collections::HashMap;

use hadar_cluster::{Allocation, JobId, JobPlacement, PlacementSlice, Usage};
use hadar_sim::{JobState, Scheduler, SchedulerContext};

/// The YARN-CS baseline scheduler.
#[derive(Debug, Default)]
pub struct YarnCsScheduler {
    /// Placements of running jobs — immutable until the job completes.
    running: HashMap<JobId, JobPlacement>,
}

impl YarnCsScheduler {
    /// Build the scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Heterogeneity-oblivious, consolidation-preferring container
    /// placement: fill the machines with the most free GPUs first (YARN's
    /// node-locality preference), any GPU type, never consulting throughput.
    fn place(ctx: &SchedulerContext<'_>, usage: &Usage, s: &JobState) -> Option<JobPlacement> {
        let mut machines: Vec<(u32, hadar_cluster::MachineId)> = ctx
            .cluster
            .machine_ids()
            .filter(|&h| ctx.is_up(h))
            .filter_map(|h| {
                let free = usage.free_on_machine(ctx.cluster, h);
                (free > 0).then_some((free, h))
            })
            .collect();
        machines.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));

        let mut remaining = s.job.gang;
        let mut slices = Vec::new();
        for (_, h) in machines {
            for r in ctx.cluster.catalog().ids() {
                if remaining == 0 {
                    break;
                }
                if s.job.profile.rate(r) <= 0.0 {
                    continue;
                }
                let free = usage.free(ctx.cluster, h, r);
                let take = free.min(remaining);
                if take > 0 {
                    slices.push(PlacementSlice {
                        machine: h,
                        gpu: r,
                        count: take,
                    });
                    remaining -= take;
                }
            }
            if remaining == 0 {
                break;
            }
        }
        (remaining == 0).then(|| JobPlacement::from_slices(slices))
    }
}

impl Scheduler for YarnCsScheduler {
    fn name(&self) -> &str {
        "YARN-CS"
    }

    fn schedule(&mut self, ctx: &SchedulerContext<'_>) -> Allocation {
        let mut usage = Usage::empty(ctx.cluster);
        let mut alloc = Allocation::empty();

        // Machine failures are the one event that takes containers away
        // from a non-preemptive scheduler: the engine evicts a job whose
        // machine died (its placement comes back empty), and it must
        // re-queue FIFO rather than keep phantom containers on the corpse.
        if ctx.availability.any_down() {
            for s in ctx.jobs {
                if s.placement.is_empty() {
                    self.running.remove(&s.job.id);
                }
            }
        }

        // Running jobs keep their exact containers (non-preemptive).
        for s in ctx.jobs {
            if let Some(p) = self.running.get(&s.job.id) {
                for sl in p.slices() {
                    usage.add(sl.machine, sl.gpu, sl.count);
                }
                alloc.set(s.job.id, p.clone());
            }
        }

        // Admit waiting jobs in strict FIFO order; the first job whose gang
        // does not fit blocks everything behind it (single-queue capacity
        // scheduler head-of-line behaviour, no backfill).
        let mut waiting: Vec<&JobState> = ctx
            .jobs
            .iter()
            .filter(|s| !self.running.contains_key(&s.job.id))
            .collect();
        waiting.sort_by(|a, b| {
            a.job
                .arrival
                .partial_cmp(&b.job.arrival)
                .expect("finite arrivals")
                .then(a.job.id.cmp(&b.job.id))
        });
        let queue_len = waiting.len();
        let mut admitted = 0usize;
        for s in waiting {
            match Self::place(ctx, &usage, s) {
                Some(p) => {
                    for sl in p.slices() {
                        usage.add(sl.machine, sl.gpu, sl.count);
                    }
                    self.running.insert(s.job.id, p.clone());
                    alloc.set(s.job.id, p);
                    admitted += 1;
                }
                None => break,
            }
        }
        ctx.telemetry
            .gauge("yarn.running", self.running.len() as f64);
        ctx.telemetry
            .gauge("yarn.hol_blocked", (queue_len - admitted) as f64);
        alloc
    }

    fn on_completion(&mut self, job: JobId) {
        self.running.remove(&job);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hadar_cluster::Cluster;
    use hadar_sim::{SimConfig, Simulation};
    use hadar_workload::{generate_trace, ArrivalPattern, DlTask, Job, TraceConfig};

    #[test]
    fn completes_static_trace() {
        let cluster = Cluster::paper_simulation();
        let jobs = generate_trace(
            &TraceConfig {
                num_jobs: 12,
                seed: 1,
                pattern: ArrivalPattern::Static,
            },
            cluster.catalog(),
        );
        let out = Simulation::new(cluster, jobs, SimConfig::default())
            .run(YarnCsScheduler::new())
            .unwrap();
        assert_eq!(out.completed_jobs(), 12);
        assert!(!out.timed_out);
    }

    #[test]
    fn never_preempts() {
        // Non-preemptive ⇒ each job reallocates exactly once (its start).
        let cluster = Cluster::paper_simulation();
        let jobs = generate_trace(
            &TraceConfig {
                num_jobs: 15,
                seed: 2,
                pattern: ArrivalPattern::Static,
            },
            cluster.catalog(),
        );
        let out = Simulation::new(cluster, jobs, SimConfig::default())
            .run(YarnCsScheduler::new())
            .unwrap();
        for r in &out.records {
            assert_eq!(
                r.reallocations, 1,
                "job {} was moved after starting",
                r.job.id
            );
        }
    }

    #[test]
    fn fifo_start_order_among_equal_arrivals() {
        // Two 2-GPU jobs on a 2-GPU cluster: the lower id starts first.
        let mut b = hadar_cluster::ClusterBuilder::new();
        let v100 = b.gpu_type("V100");
        b.machine(&[(v100, 2)]);
        let cluster = b.build();
        let j0 = Job::for_model(JobId(0), DlTask::ResNet18, cluster.catalog(), 0.0, 2, 30);
        let j1 = Job::for_model(JobId(1), DlTask::ResNet18, cluster.catalog(), 0.0, 2, 30);
        let out = Simulation::new(cluster, vec![j0, j1], SimConfig::default())
            .run(YarnCsScheduler::new())
            .unwrap();
        let s0 = out.records[0].first_scheduled.unwrap();
        let s1 = out.records[1].first_scheduled.unwrap();
        assert!(s0 < s1, "FIFO violated: {s0} !< {s1}");
    }

    #[test]
    fn head_of_line_blocks_later_jobs() {
        // 2-GPU cluster; a running job holds 1 GPU; the head waiter needs 2
        // (blocked) — a later 1-GPU job would fit, but strict FIFO makes it
        // wait behind the head.
        let mut b = hadar_cluster::ClusterBuilder::new();
        let v100 = b.gpu_type("V100");
        b.machine(&[(v100, 2)]);
        let cluster = b.build();
        let hog = Job::for_model(JobId(0), DlTask::ResNet50, cluster.catalog(), 0.0, 1, 30);
        let big = Job::for_model(JobId(1), DlTask::ResNet18, cluster.catalog(), 0.0, 2, 30);
        let small = Job::for_model(JobId(2), DlTask::ResNet18, cluster.catalog(), 0.0, 1, 30);
        let out = Simulation::new(cluster, vec![hog, big, small], SimConfig::default())
            .run(YarnCsScheduler::new())
            .unwrap();
        assert_eq!(out.completed_jobs(), 3);
        let small_start = out.records[2].first_scheduled.unwrap();
        let big_start = out.records[1].first_scheduled.unwrap();
        assert!(
            small_start >= big_start,
            "strict FIFO violated: small started at {small_start}, head at {big_start}"
        );
    }

    #[test]
    fn failures_break_nonpreemption_but_jobs_requeue() {
        // The one exception to "never preempted": a machine death evicts its
        // jobs, which must re-enter the FIFO queue and still complete.
        let cluster = Cluster::paper_simulation();
        let jobs = generate_trace(
            &TraceConfig {
                num_jobs: 8,
                seed: 9,
                pattern: ArrivalPattern::Static,
            },
            cluster.catalog(),
        );
        let n = jobs.len();
        let config = SimConfig {
            failure: Some(hadar_sim::FailureModel {
                mtbf_rounds: 15.0,
                mttr_rounds: 3.0,
                seed: 11,
            }),
            ..SimConfig::default()
        };
        let out = Simulation::new(cluster, jobs, config)
            .run(YarnCsScheduler::new())
            .unwrap();
        assert_eq!(out.completed_jobs(), n);
        hadar_sim::check_lifecycle(out.events(), n).unwrap();
    }

    #[test]
    fn deterministic() {
        let cluster = Cluster::paper_simulation();
        let jobs = generate_trace(
            &TraceConfig {
                num_jobs: 10,
                seed: 3,
                pattern: ArrivalPattern::paper_continuous(),
            },
            cluster.catalog(),
        );
        let run = || {
            Simulation::new(cluster.clone(), jobs.clone(), SimConfig::default())
                .run(YarnCsScheduler::new())
                .unwrap()
        };
        assert_eq!(run().jcts(), run().jcts());
    }
}

//! Tiresias (Gu et al., NSDI '19), the heterogeneity-oblivious baseline.
//!
//! Tiresias ranks jobs by *discretized two-dimensional least attained
//! service* (2D-LAS): attained service = GPUs × accumulated run time. Jobs
//! whose attained service is below a threshold sit in the high-priority
//! queue; past it they demote to the low-priority queue. Within a queue,
//! ordering is FIFO by arrival. Scheduling is preemptive; the paper
//! configures two queues with the `PromoteKnob` disabled (no re-promotion).
//!
//! Tiresias has no notion of GPU heterogeneity: by default it takes
//! whatever free GPUs exist, so a gang can straddle fast and slow types and
//! run at the slow type's rate — the failure mode Hadar's task-level
//! awareness avoids. A single-type placement mode
//! ([`TiresiasPlacement::SingleType`], matching the paper's remark that
//! Tiresias "suffers from the same limitation as Gavel") is available for
//! ablations.

use hadar_cluster::{Allocation, JobPlacement, PlacementSlice, Usage};
use hadar_sim::{JobState, Scheduler, SchedulerContext};

/// Gang-placement mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TiresiasPlacement {
    /// All tasks of a gang on one GPU type (falls back to mixed placement
    /// only for gangs larger than any single type's total capacity, to
    /// avoid permanent starvation). Avoids synchronization-barrier
    /// straggling at the cost of idling heterogeneous leftovers.
    SingleType,
    /// Take free GPUs anywhere, mixing types freely — the default. A truly
    /// type-blind manager straddles GPU generations and pays the slowest
    /// type's rate for the whole gang, which is the utilization/JCT failure
    /// mode the paper attributes to heterogeneity-oblivious schedulers.
    #[default]
    MixedOblivious,
}

/// Tiresias configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TiresiasConfig {
    /// Attained-service threshold (GPU-seconds) separating the two queues.
    /// Default: 10 GPU-hours — the boundary between the trace's
    /// Small/Medium classes and its Large/XLarge classes, in line with the
    /// Philly-trace queue tuning of the original paper (short jobs complete
    /// entirely at high priority; only long jobs demote).
    pub queue_threshold_gpu_seconds: f64,
    /// Whether demoted jobs can re-promote after long starvation
    /// (`PromoteKnob`). Disabled in the paper's evaluation.
    pub promote: bool,
    /// Gang-placement mode.
    pub placement: TiresiasPlacement,
}

impl Default for TiresiasConfig {
    fn default() -> Self {
        Self {
            queue_threshold_gpu_seconds: 36_000.0,
            promote: false,
            placement: TiresiasPlacement::default(),
        }
    }
}

/// The Tiresias baseline scheduler.
pub struct TiresiasScheduler {
    config: TiresiasConfig,
}

impl TiresiasScheduler {
    /// Build with `config`.
    pub fn new(config: TiresiasConfig) -> Self {
        Self { config }
    }

    /// The paper's configuration: two queues, `PromoteKnob` disabled.
    pub fn paper_default() -> Self {
        Self::new(TiresiasConfig::default())
    }

    /// Queue index of a job: 0 (high priority) below the threshold, 1 after
    /// demotion.
    fn queue_of(&self, s: &JobState) -> usize {
        usize::from(s.attained_service() >= self.config.queue_threshold_gpu_seconds)
    }

    /// Heterogeneity-oblivious placement. Both modes keep a running job on
    /// its GPUs when they are still available and consolidate onto as few
    /// machines as possible (Tiresias ships a consolidating placement
    /// component); neither consults per-type throughput.
    fn place(
        &self,
        ctx: &SchedulerContext<'_>,
        usage: &Usage,
        s: &JobState,
    ) -> Option<JobPlacement> {
        // Sticky: reuse the previous placement when still free (and its
        // machines are still alive).
        if !s.placement.is_empty()
            && s.placement.slices().iter().all(|sl| {
                ctx.is_up(sl.machine) && usage.free(ctx.cluster, sl.machine, sl.gpu) >= sl.count
            })
        {
            return Some(s.placement.clone());
        }
        match self.config.placement {
            TiresiasPlacement::SingleType => {
                if let Some(p) = Self::place_single_type(ctx, usage, s) {
                    return Some(p);
                }
                // A gang no single type can ever host falls back to mixed
                // placement rather than starving forever.
                let max_type_cap = ctx
                    .cluster
                    .catalog()
                    .ids()
                    .map(|r| ctx.cluster.total_of_type(r))
                    .max()
                    .unwrap_or(0);
                if s.job.gang > max_type_cap {
                    return Self::place_mixed(ctx, usage, s);
                }
                None
            }
            TiresiasPlacement::MixedOblivious => Self::place_mixed(ctx, usage, s),
        }
    }

    /// All tasks on whichever single type has the most free GPUs (oblivious
    /// to throughput), consolidated most-free-machine-first.
    fn place_single_type(
        ctx: &SchedulerContext<'_>,
        usage: &Usage,
        s: &JobState,
    ) -> Option<JobPlacement> {
        // Free GPUs of a type, counting only machines that are up.
        let masked_free = |r| -> u32 {
            ctx.cluster
                .machine_ids()
                .filter(|&h| ctx.is_up(h))
                .map(|h| usage.free(ctx.cluster, h, r))
                .sum()
        };
        let r = ctx
            .cluster
            .catalog()
            .ids()
            .filter(|&r| s.job.profile.rate(r) > 0.0)
            .map(|r| (masked_free(r), r))
            .filter(|&(free, _)| free >= s.job.gang)
            .max_by_key(|&(free, r)| (free, std::cmp::Reverse(r)))?
            .1;
        let mut machines: Vec<(u32, hadar_cluster::MachineId)> = ctx
            .cluster
            .machine_ids()
            .filter(|&h| ctx.is_up(h))
            .filter_map(|h| {
                let free = usage.free(ctx.cluster, h, r);
                (free > 0).then_some((free, h))
            })
            .collect();
        machines.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let mut remaining = s.job.gang;
        let mut slices = Vec::new();
        for (free, h) in machines {
            if remaining == 0 {
                break;
            }
            let take = free.min(remaining);
            slices.push(PlacementSlice {
                machine: h,
                gpu: r,
                count: take,
            });
            remaining -= take;
        }
        (remaining == 0).then(|| JobPlacement::from_slices(slices))
    }

    /// Mixed-type fill, most-free machines first.
    fn place_mixed(
        ctx: &SchedulerContext<'_>,
        usage: &Usage,
        s: &JobState,
    ) -> Option<JobPlacement> {
        let mut machines: Vec<(u32, hadar_cluster::MachineId)> = ctx
            .cluster
            .machine_ids()
            .filter(|&h| ctx.is_up(h))
            .filter_map(|h| {
                let free = usage.free_on_machine(ctx.cluster, h);
                (free > 0).then_some((free, h))
            })
            .collect();
        machines.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));

        let mut remaining = s.job.gang;
        let mut slices = Vec::new();
        for (_, h) in machines {
            for r in ctx.cluster.catalog().ids() {
                if remaining == 0 {
                    break;
                }
                // Unusable types (rate 0) would stall the gang forever.
                if s.job.profile.rate(r) <= 0.0 {
                    continue;
                }
                let free = usage.free(ctx.cluster, h, r);
                let take = free.min(remaining);
                if take > 0 {
                    slices.push(PlacementSlice {
                        machine: h,
                        gpu: r,
                        count: take,
                    });
                    remaining -= take;
                }
            }
            if remaining == 0 {
                break;
            }
        }
        (remaining == 0).then(|| JobPlacement::from_slices(slices))
    }
}

impl Scheduler for TiresiasScheduler {
    fn name(&self) -> &str {
        "Tiresias"
    }

    fn schedule(&mut self, ctx: &SchedulerContext<'_>) -> Allocation {
        // Priority order: queue 0 before queue 1, FIFO (arrival, then id)
        // within each queue. With `promote` enabled, severely starved jobs
        // are lifted back to queue 0.
        let mut order: Vec<usize> = (0..ctx.jobs.len()).collect();
        let queue_of = |s: &JobState| -> usize {
            let mut q = self.queue_of(s);
            if self.config.promote && q == 1 {
                // Re-promote when a job has waited idle longer than it has
                // run (the PromoteKnob heuristic).
                let waited = (ctx.time - s.job.arrival).max(0.0) - s.service_seconds;
                if waited > s.service_seconds {
                    q = 0;
                }
            }
            q
        };
        order.sort_by(|&a, &b| {
            let (sa, sb) = (&ctx.jobs[a], &ctx.jobs[b]);
            queue_of(sa)
                .cmp(&queue_of(sb))
                .then(
                    sa.job
                        .arrival
                        .partial_cmp(&sb.job.arrival)
                        .expect("finite arrivals"),
                )
                .then(sa.job.id.cmp(&sb.job.id))
        });
        if ctx.telemetry.is_enabled() {
            let high = ctx.jobs.iter().filter(|s| queue_of(s) == 0).count();
            ctx.telemetry.gauge("tiresias.queue_high", high as f64);
            ctx.telemetry
                .gauge("tiresias.queue_low", (ctx.jobs.len() - high) as f64);
        }

        let mut usage = Usage::empty(ctx.cluster);
        let mut alloc = Allocation::empty();
        for idx in order {
            let s = &ctx.jobs[idx];
            if let Some(p) = self.place(ctx, &usage, s) {
                for sl in p.slices() {
                    usage.add(sl.machine, sl.gpu, sl.count);
                }
                alloc.set(s.job.id, p);
            }
        }
        alloc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hadar_cluster::{Cluster, JobId};
    use hadar_sim::{SimConfig, Simulation};
    use hadar_workload::{generate_trace, ArrivalPattern, DlTask, Job, TraceConfig};

    #[test]
    fn completes_static_trace() {
        let cluster = Cluster::paper_simulation();
        let jobs = generate_trace(
            &TraceConfig {
                num_jobs: 12,
                seed: 1,
                pattern: ArrivalPattern::Static,
            },
            cluster.catalog(),
        );
        let out = Simulation::new(cluster, jobs, SimConfig::default())
            .run(TiresiasScheduler::paper_default())
            .unwrap();
        assert_eq!(out.completed_jobs(), 12);
        assert!(!out.timed_out);
    }

    #[test]
    fn short_jobs_preempt_demoted_long_jobs() {
        // One huge job saturates the cluster past the LAS threshold; a short
        // job arriving later must still finish quickly (queue-0 priority).
        let mut b = hadar_cluster::ClusterBuilder::new();
        let v100 = b.gpu_type("V100");
        b.machine(&[(v100, 2)]);
        let cluster = b.build();
        // Long job: ~25 000 s of work on 2 GPUs; it demotes once attained
        // service passes 36 000 GPU-s (t = 18 000 s).
        let long = Job::for_model(JobId(0), DlTask::ResNet50, cluster.catalog(), 0.0, 2, 300);
        // Arrives after the long job has demoted to queue 1.
        let short = Job::for_model(
            JobId(1),
            DlTask::ResNet18,
            cluster.catalog(),
            19_000.0,
            2,
            20,
        );
        let short_solo = short.min_runtime();
        let out = Simulation::new(cluster, vec![long, short], SimConfig::default())
            .run(TiresiasScheduler::paper_default())
            .unwrap();
        assert_eq!(out.completed_jobs(), 2);
        let short_jct = out.records[1].jct().unwrap();
        // The short job should run promptly after arrival, not wait for the
        // long job's multi-hour tail: allow round quantization + checkpoint.
        assert!(
            short_jct < short_solo + 2.0 * 360.0 + 20.0,
            "short job waited too long: jct={short_jct}, solo={short_solo}"
        );
    }

    #[test]
    fn queue_demotion_at_threshold() {
        let cluster = Cluster::paper_simulation();
        let job = Job::for_model(JobId(0), DlTask::Lstm, cluster.catalog(), 0.0, 4, 100);
        let sched = TiresiasScheduler::paper_default();
        let mut state = JobState::new(job);
        assert_eq!(sched.queue_of(&state), 0);
        state.service_seconds = 8_999.9; // 4 GPUs × 8999.9 s < 36 000 GPU-s
        assert_eq!(sched.queue_of(&state), 0);
        state.service_seconds = 9_000.1;
        assert_eq!(sched.queue_of(&state), 1);
    }

    #[test]
    fn oblivious_placement_can_mix_types() {
        // 1 V100 + 1 K80 and a gang of 2: Tiresias happily straddles both,
        // running at the K80's rate.
        let mut b = hadar_cluster::ClusterBuilder::new();
        let v100 = b.gpu_type("V100");
        let k80 = b.gpu_type("K80");
        b.machine(&[(v100, 1)]);
        b.machine(&[(k80, 1)]);
        let cluster = b.build();
        let job = Job::for_model(JobId(0), DlTask::ResNet18, cluster.catalog(), 0.0, 2, 50);
        let k80_paced = job.total_iterations() / (2.0 * job.profile.rate(k80));
        let out = Simulation::new(cluster, vec![job], SimConfig::default())
            .run(TiresiasScheduler::paper_default())
            .unwrap();
        let jct = out.records[0].jct().unwrap();
        // Bottlenecked by the K80 (plus checkpoint + comm degradation), far
        // slower than if it were V100-only.
        assert!(jct >= k80_paced, "jct={jct} vs k80 pace {k80_paced}");
    }

    #[test]
    fn completes_with_machine_failures() {
        let cluster = Cluster::paper_simulation();
        let jobs = generate_trace(
            &TraceConfig {
                num_jobs: 8,
                seed: 8,
                pattern: ArrivalPattern::Static,
            },
            cluster.catalog(),
        );
        let n = jobs.len();
        let config = SimConfig {
            failure: Some(hadar_sim::FailureModel {
                mtbf_rounds: 20.0,
                mttr_rounds: 3.0,
                seed: 11,
            }),
            ..SimConfig::default()
        };
        let out = Simulation::new(cluster, jobs, config)
            .run(TiresiasScheduler::paper_default())
            .unwrap();
        assert_eq!(out.completed_jobs(), n);
        hadar_sim::check_lifecycle(out.events(), n).unwrap();
    }

    #[test]
    fn deterministic() {
        let cluster = Cluster::paper_simulation();
        let jobs = generate_trace(
            &TraceConfig {
                num_jobs: 10,
                seed: 7,
                pattern: ArrivalPattern::paper_continuous(),
            },
            cluster.catalog(),
        );
        let run = || {
            Simulation::new(cluster.clone(), jobs.clone(), SimConfig::default())
                .run(TiresiasScheduler::paper_default())
                .unwrap()
        };
        assert_eq!(run().jcts(), run().jcts());
    }
}

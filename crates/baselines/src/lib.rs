#![warn(missing_docs)]

//! # hadar-baselines
//!
//! The three baseline schedulers the paper evaluates Hadar against
//! (§IV-A), implemented from their original descriptions behind the same
//! [`hadar_sim::Scheduler`] trait:
//!
//! * [`GavelScheduler`] — Gavel (OSDI '20): *job-level* heterogeneity-aware
//!   optimization. Computes an allocation matrix `Y[j][r]` by LP (via
//!   `hadar-solver`) and serves it with round-based priorities
//!   `Y[j][r] / rounds_received[j][r]`. All tasks of a job land on a single
//!   GPU type per round — the granularity limitation Hadar removes.
//! * [`TiresiasScheduler`] — Tiresias (NSDI '19): discretized two-queue
//!   least-attained-service. Heterogeneity-*oblivious*: GPU types are
//!   interchangeable to it. Configured as in the paper: two queues,
//!   `PromoteKnob` disabled.
//! * [`YarnCsScheduler`] — Apache YARN's capacity scheduler as used in
//!   production DL clusters: FIFO, non-preemptive, heterogeneity-oblivious.
//!
//! Plus one extension baseline beyond the paper:
//!
//! * [`SrtfScheduler`] — heterogeneity-aware shortest-remaining-time-first,
//!   isolating the SRPT-ordering ingredient of Hadar's advantage.

//!
//! ```
//! use hadar_baselines::TiresiasScheduler;
//! use hadar_cluster::Cluster;
//! use hadar_sim::{SimConfig, Simulation};
//! use hadar_workload::{generate_trace, ArrivalPattern, TraceConfig};
//! let cluster = Cluster::paper_simulation();
//! let jobs = generate_trace(
//!     &TraceConfig { num_jobs: 5, seed: 2, pattern: ArrivalPattern::Static },
//!     cluster.catalog(),
//! );
//! let out = Simulation::new(cluster, jobs, SimConfig::default())
//!     .run(TiresiasScheduler::paper_default())
//!     .expect("valid policy and config");
//! assert_eq!(out.completed_jobs(), 5);
//! ```

pub mod gavel;
pub mod srtf;
pub mod tiresias;
pub mod yarn_cs;

pub use gavel::{GavelConfig, GavelPolicy, GavelScheduler};
pub use srtf::SrtfScheduler;
pub use tiresias::{TiresiasConfig, TiresiasPlacement, TiresiasScheduler};
pub use yarn_cs::YarnCsScheduler;

//! SRTF: a heterogeneity-aware shortest-remaining-time-first baseline.
//!
//! Not one of the paper's comparison points — included as an *extension*
//! baseline that isolates one ingredient of Hadar's advantage. SRTF orders
//! jobs by their remaining best-case runtime and places each gang on its
//! fastest available single GPU type (falling back to the next type, never
//! mixing). It is preemptive and type-aware but has no prices, no payoff
//! filter, no task-level mixing, and no communication/checkpoint reasoning —
//! comparing it against Hadar shows how much of the gap pure SRPT ordering
//! closes on its own (most of it under light contention; Hadar pulls ahead
//! when fragmentation makes mixed placements and price-based admission
//! matter).

use hadar_cluster::{Allocation, JobPlacement, PlacementSlice, Usage};
use hadar_sim::{JobState, Scheduler, SchedulerContext};

/// The SRTF extension baseline.
#[derive(Debug, Default)]
pub struct SrtfScheduler;

impl SrtfScheduler {
    /// Build the scheduler.
    pub fn new() -> Self {
        Self
    }

    /// Place the gang on the fastest single type with enough free GPUs
    /// (most-free machines first), keeping the current placement when still
    /// free and still on the job's fastest feasible type.
    fn place(ctx: &SchedulerContext<'_>, usage: &Usage, s: &JobState) -> Option<JobPlacement> {
        // Free GPUs of a type, counting only machines that are up — a
        // type-level count over dead machines would admit a gang the
        // machine loop below can never actually place.
        let masked_free = |r| -> u32 {
            ctx.cluster
                .machine_ids()
                .filter(|&h| ctx.is_up(h))
                .map(|h| usage.free(ctx.cluster, h, r))
                .sum()
        };
        for &r in s.job.profile.types_by_preference() {
            if masked_free(r) < s.job.gang {
                continue;
            }
            // Sticky shortcut: if the current placement is exactly this
            // type, still free, and on live machines, keep it.
            if !s.placement.is_empty()
                && s.placement.gpu_types() == [r]
                && s.placement.slices().iter().all(|sl| {
                    ctx.is_up(sl.machine) && usage.free(ctx.cluster, sl.machine, sl.gpu) >= sl.count
                })
            {
                return Some(s.placement.clone());
            }
            let mut machines: Vec<(u32, hadar_cluster::MachineId)> = ctx
                .cluster
                .machine_ids()
                .filter(|&h| ctx.is_up(h))
                .filter_map(|h| {
                    let f = usage.free(ctx.cluster, h, r);
                    (f > 0).then_some((f, h))
                })
                .collect();
            machines.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
            let mut remaining = s.job.gang;
            let mut slices = Vec::new();
            for (free, h) in machines {
                if remaining == 0 {
                    break;
                }
                let take = free.min(remaining);
                slices.push(PlacementSlice {
                    machine: h,
                    gpu: r,
                    count: take,
                });
                remaining -= take;
            }
            debug_assert_eq!(remaining, 0);
            return Some(JobPlacement::from_slices(slices));
        }
        None
    }
}

impl Scheduler for SrtfScheduler {
    fn name(&self) -> &str {
        "SRTF"
    }

    fn schedule(&mut self, ctx: &SchedulerContext<'_>) -> Allocation {
        let mut order: Vec<usize> = (0..ctx.jobs.len()).collect();
        let remaining_time = |s: &JobState| -> f64 {
            let best = s.job.best_rate();
            if best > 0.0 {
                s.remaining_iters / best
            } else {
                f64::INFINITY
            }
        };
        order.sort_by(|&a, &b| {
            remaining_time(&ctx.jobs[a])
                .partial_cmp(&remaining_time(&ctx.jobs[b]))
                .expect("finite remaining times")
                .then(ctx.jobs[a].job.id.cmp(&ctx.jobs[b].job.id))
        });

        let mut usage = Usage::empty(ctx.cluster);
        let mut alloc = Allocation::empty();
        for idx in order {
            let s = &ctx.jobs[idx];
            if let Some(p) = Self::place(ctx, &usage, s) {
                if ctx.telemetry.is_enabled() {
                    // Did the gang land on the job's fastest type, or did
                    // contention push it down the preference list?
                    let preferred = s.job.profile.types_by_preference().first().copied();
                    if preferred.is_some_and(|r| p.gpu_types() == [r]) {
                        ctx.telemetry.incr("srtf.placed_preferred", 1.0);
                    } else {
                        ctx.telemetry.incr("srtf.placed_fallback", 1.0);
                    }
                }
                for sl in p.slices() {
                    usage.add(sl.machine, sl.gpu, sl.count);
                }
                alloc.set(s.job.id, p);
            }
        }
        alloc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hadar_cluster::{Cluster, JobId};
    use hadar_sim::{SimConfig, Simulation};
    use hadar_workload::{generate_trace, ArrivalPattern, DlTask, Job, TraceConfig};

    #[test]
    fn completes_static_trace() {
        let cluster = Cluster::paper_simulation();
        let jobs = generate_trace(
            &TraceConfig {
                num_jobs: 16,
                seed: 1,
                pattern: ArrivalPattern::Static,
            },
            cluster.catalog(),
        );
        let out = Simulation::new(cluster, jobs, SimConfig::default())
            .run(SrtfScheduler::new())
            .unwrap();
        assert_eq!(out.completed_jobs(), 16);
        assert!(!out.timed_out);
    }

    #[test]
    fn shortest_job_runs_first_under_contention() {
        // One 2-GPU machine; a long and a short job arrive together: the
        // short one must start first.
        let mut b = hadar_cluster::ClusterBuilder::new();
        let v100 = b.gpu_type("V100");
        b.machine(&[(v100, 2)]);
        let cluster = b.build();
        let long = Job::for_model(JobId(0), DlTask::ResNet18, cluster.catalog(), 0.0, 2, 500);
        let short = Job::for_model(JobId(1), DlTask::ResNet18, cluster.catalog(), 0.0, 2, 10);
        let out = Simulation::new(cluster, vec![long, short], SimConfig::default())
            .run(SrtfScheduler::new())
            .unwrap();
        let (s0, s1) = (
            out.records[0].first_scheduled.unwrap(),
            out.records[1].first_scheduled.unwrap(),
        );
        assert!(s1 < s0, "short started at {s1}, long at {s0}");
    }

    #[test]
    fn prefers_fastest_type() {
        let cluster = Cluster::paper_simulation();
        let job = Job::for_model(JobId(0), DlTask::ResNet50, cluster.catalog(), 0.0, 4, 5);
        let v100_time = job.min_runtime();
        let out = Simulation::new(cluster, vec![job], SimConfig::default())
            .run(SrtfScheduler::new())
            .unwrap();
        let jct = out.records[0].jct().unwrap();
        // Ran on V100s (plus one checkpoint stall): far faster than P100/K80.
        assert!(
            jct < v100_time + 360.0 + 15.0,
            "jct={jct}, v100={v100_time}"
        );
    }

    #[test]
    fn completes_with_machine_failures() {
        let cluster = Cluster::paper_simulation();
        let jobs = generate_trace(
            &TraceConfig {
                num_jobs: 8,
                seed: 10,
                pattern: ArrivalPattern::Static,
            },
            cluster.catalog(),
        );
        let n = jobs.len();
        let config = SimConfig {
            failure: Some(hadar_sim::FailureModel {
                mtbf_rounds: 20.0,
                mttr_rounds: 3.0,
                seed: 11,
            }),
            ..SimConfig::default()
        };
        let out = Simulation::new(cluster, jobs, config)
            .run(SrtfScheduler::new())
            .unwrap();
        assert_eq!(out.completed_jobs(), n);
        hadar_sim::check_lifecycle(out.events(), n).unwrap();
    }

    #[test]
    fn never_mixes_types() {
        // Gang of 2 with only a mixed pair free can never be placed.
        let mut b = hadar_cluster::ClusterBuilder::new();
        let v100 = b.gpu_type("V100");
        let k80 = b.gpu_type("K80");
        b.machine(&[(v100, 1)]);
        b.machine(&[(k80, 1)]);
        let cluster = b.build();
        let job = Job::for_model(JobId(0), DlTask::ResNet18, cluster.catalog(), 0.0, 2, 5);
        let config = SimConfig {
            max_rounds: 10,
            ..SimConfig::default()
        };
        let out = Simulation::new(cluster, vec![job], config)
            .run(SrtfScheduler::new())
            .unwrap();
        assert!(out.timed_out);
        assert_eq!(out.completed_jobs(), 0);
    }
}

//! `hadar-cli catalog`: print the Table II workload catalog.

use hadar_metrics::Table;
use hadar_workload::DlTask;

/// Render the catalog.
pub fn run() -> String {
    let mut table = Table::new(vec![
        "Task",
        "Model",
        "Dataset",
        "Size",
        "V100 it/s",
        "P100 it/s",
        "K80 it/s",
        "Ckpt (MiB)",
    ]);
    for t in DlTask::ALL {
        let x = |g: &str| t.throughput_on(g).expect("known type");
        table.row(vec![
            t.task_name().to_owned(),
            t.model_name().to_owned(),
            t.dataset().to_owned(),
            t.size_class().label().to_owned(),
            format!("{}", x("V100")),
            format!("{}", x("P100")),
            format!("{}", x("K80")),
            format!("{}", t.checkpoint_mib()),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    #[test]
    fn lists_models() {
        let out = super::run();
        assert!(out.contains("ResNet-50"));
        assert!(out.contains("CycleGAN"));
        assert!(out.contains("Wikitext-2"));
    }
}

//! `hadar-cli compare`: all four schedulers on one workload. The four
//! simulation cells are submitted through a `hadar_sim::SweepRunner`, so
//! `--threads N` runs them concurrently (results are identical to a serial
//! run; only wall-clock differs).

use hadar_metrics::Table;
use hadar_sim::{SimConfig, SimResult, Simulation, Telemetry};
use hadar_workload::{generate_trace, ArrivalPattern, TraceConfig};

use crate::args::{
    parse_cluster, parse_failure, parse_pattern, parse_round_threads, parse_runner, Options,
};
use crate::commands::scheduler_by_name;

const SCHEDULERS: [&str; 4] = ["hadar", "gavel", "tiresias", "yarn"];

/// Run the comparison. Returns `(table, telemetry_jsonl)`; the stream
/// (every scheduler's JSONL concatenated, in table order) is `Some` only
/// when `--telemetry-out` was given.
pub fn run(opts: &Options) -> Result<(String, Option<String>), String> {
    let num_jobs: usize = opts.get_parsed("jobs", 48)?;
    if num_jobs == 0 {
        return Err("--jobs must be ≥ 1".into());
    }
    let seed: u64 = opts.get_parsed("seed", 0)?;
    let pattern = match opts.get("pattern") {
        Some(p) => parse_pattern(p)?,
        None => ArrivalPattern::Static,
    };
    let cluster = parse_cluster(opts.get("cluster").unwrap_or("paper"))?;
    let runner = parse_runner(opts)?;
    let round_threads = parse_round_threads(opts)?;
    let jobs = generate_trace(
        &TraceConfig {
            num_jobs,
            seed,
            pattern,
        },
        cluster.catalog(),
    );

    let config = SimConfig {
        failure: parse_failure(opts, SimConfig::default().round_length)?,
        ..SimConfig::default()
    };

    let observe = opts.get("telemetry-out").is_some();
    let cells: Vec<Box<dyn FnOnce() -> SimResult + Send>> = SCHEDULERS
        .into_iter()
        .map(|name| {
            let (cluster, jobs) = (cluster.clone(), jobs.clone());
            Box::new(move || {
                let scheduler =
                    scheduler_by_name(name, round_threads).expect("known scheduler name");
                let sink = if observe {
                    Telemetry::enabled()
                } else {
                    Telemetry::disabled()
                };
                Simulation::new(cluster, jobs, config).run_with_telemetry(scheduler, sink)
            }) as Box<dyn FnOnce() -> SimResult + Send>
        })
        .collect();
    let results = runner.run(cells);

    let mut table = Table::new(vec![
        "Scheduler",
        "Mean JCT (h)",
        "Median JCT (h)",
        "Makespan (h)",
        "Util (%)",
        "Mean FTF",
        "Queue (h)",
    ]);
    let mut timings = String::new();
    let mut streams = String::new();
    for cell in results {
        let out = cell.outcome.map_err(|e| e.to_string())?;
        if let Some(s) = out.telemetry_stream() {
            streams.push_str(s);
        }
        let m = out.metrics();
        timings.push_str(&format!(
            "  {:<9} cell wall-clock {:.2}s\n",
            out.scheduler, cell.wall_seconds
        ));
        table.row(vec![
            out.scheduler.clone(),
            format!("{:.2}", m.mean / 3600.0),
            format!("{:.2}", m.median / 3600.0),
            format!("{:.2}", out.makespan() / 3600.0),
            format!("{:.1}", out.demand_weighted_utilization() * 100.0),
            format!("{:.3}", out.ftf().mean),
            format!("{:.2}", out.queuing_delays().mean / 3600.0),
        ]);
    }
    let rendered = format!(
        "{num_jobs} jobs, seed {seed}, {pattern:?}, {} GPUs, {} worker threads\n\n{}\n{timings}",
        cluster.total_gpus(),
        runner.threads(),
        table.render()
    );
    Ok((rendered, observe.then_some(streams)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compares_all_four() {
        let opts =
            Options::parse(["--jobs", "6", "--seed", "4"].iter().map(|s| s.to_string())).unwrap();
        let (out, telemetry) = run(&opts).unwrap();
        for name in ["Hadar", "Gavel", "Tiresias", "YARN-CS"] {
            assert!(out.contains(name), "{name} missing:\n{out}");
        }
        assert!(telemetry.is_none());
    }

    #[test]
    fn compare_with_telemetry_collects_all_streams() {
        let opts = Options::parse(
            ["--jobs", "5", "--seed", "4", "--telemetry-out", "x.jsonl"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        let (_, telemetry) = run(&opts).unwrap();
        let stream = telemetry.expect("stream present with --telemetry-out");
        // One meta line per scheduler, each opening a schema-valid segment.
        let metas: Vec<usize> = stream
            .lines()
            .enumerate()
            .filter(|(_, l)| l.contains("\"type\":\"meta\""))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(metas.len(), 4, "{stream}");
        let lines: Vec<&str> = stream.lines().collect();
        for (k, &start) in metas.iter().enumerate() {
            let end = metas.get(k + 1).copied().unwrap_or(lines.len());
            let segment = lines[start..end].join("\n");
            let r = hadar_metrics::validate_telemetry_jsonl(&segment).unwrap();
            assert!(r.rounds > 0, "{}", r.scheduler);
        }
    }

    #[test]
    fn failure_injection_is_deterministic_across_threads() {
        // Fixed --failure-seed: the same fault timeline (and therefore the
        // same table) whatever the worker count.
        let base = [
            "--jobs",
            "6",
            "--seed",
            "4",
            "--mtbf",
            "1",
            "--mttr",
            "0.3",
            "--failure-seed",
            "7",
            "--threads",
        ];
        let table = |threads: &str| {
            let args: Vec<String> = base
                .iter()
                .map(|s| s.to_string())
                .chain([threads.to_string()])
                .collect();
            let (out, _) = run(&Options::parse(args).unwrap()).unwrap();
            out.lines()
                .filter(|l| !l.contains("worker threads") && !l.contains("cell wall-clock"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(table("1"), table("4"));
    }

    #[test]
    fn threaded_run_matches_serial_table() {
        let base = ["--jobs", "6", "--seed", "4", "--threads"];
        let table = |threads: &str| {
            let args: Vec<String> = base
                .iter()
                .map(|s| s.to_string())
                .chain([threads.to_string()])
                .collect();
            let (out, _) = run(&Options::parse(args).unwrap()).unwrap();
            // Strip the header line (thread count) and cell wall-clock
            // lines; the metric table itself must be identical.
            out.lines()
                .filter(|l| !l.contains("worker threads") && !l.contains("cell wall-clock"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(table("1"), table("4"));
    }
}

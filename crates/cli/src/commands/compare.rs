//! `hadar-cli compare`: all four schedulers on one workload. The four
//! simulation cells are submitted through a `hadar_sim::SweepRunner`, so
//! `--threads N` runs them concurrently (results are identical to a serial
//! run; only wall-clock differs).

use hadar_metrics::Table;
use hadar_sim::{SimConfig, SimResult, Simulation};
use hadar_workload::{generate_trace, ArrivalPattern, TraceConfig};

use crate::args::{
    parse_cluster, parse_failure, parse_pattern, parse_round_threads, parse_runner, Options,
};
use crate::commands::scheduler_by_name;

const SCHEDULERS: [&str; 4] = ["hadar", "gavel", "tiresias", "yarn"];

/// Run the comparison; returns the rendered table.
pub fn run(opts: &Options) -> Result<String, String> {
    let num_jobs: usize = opts.get_parsed("jobs", 48)?;
    if num_jobs == 0 {
        return Err("--jobs must be ≥ 1".into());
    }
    let seed: u64 = opts.get_parsed("seed", 0)?;
    let pattern = match opts.get("pattern") {
        Some(p) => parse_pattern(p)?,
        None => ArrivalPattern::Static,
    };
    let cluster = parse_cluster(opts.get("cluster").unwrap_or("paper"))?;
    let runner = parse_runner(opts)?;
    let round_threads = parse_round_threads(opts)?;
    let jobs = generate_trace(
        &TraceConfig {
            num_jobs,
            seed,
            pattern,
        },
        cluster.catalog(),
    );

    let config = SimConfig {
        failure: parse_failure(opts, SimConfig::default().round_length)?,
        ..SimConfig::default()
    };

    let cells: Vec<Box<dyn FnOnce() -> SimResult + Send>> = SCHEDULERS
        .into_iter()
        .map(|name| {
            let (cluster, jobs) = (cluster.clone(), jobs.clone());
            Box::new(move || {
                let scheduler =
                    scheduler_by_name(name, round_threads).expect("known scheduler name");
                Simulation::new(cluster, jobs, config).run(scheduler)
            }) as Box<dyn FnOnce() -> SimResult + Send>
        })
        .collect();
    let results = runner.run(cells);

    let mut table = Table::new(vec![
        "Scheduler",
        "Mean JCT (h)",
        "Median JCT (h)",
        "Makespan (h)",
        "Util (%)",
        "Mean FTF",
        "Queue (h)",
    ]);
    let mut timings = String::new();
    for cell in results {
        let out = cell.outcome.map_err(|e| e.to_string())?;
        let m = out.metrics();
        timings.push_str(&format!(
            "  {:<9} cell wall-clock {:.2}s\n",
            out.scheduler, cell.wall_seconds
        ));
        table.row(vec![
            out.scheduler.clone(),
            format!("{:.2}", m.mean / 3600.0),
            format!("{:.2}", m.median / 3600.0),
            format!("{:.2}", out.makespan() / 3600.0),
            format!("{:.1}", out.demand_weighted_utilization() * 100.0),
            format!("{:.3}", out.ftf().mean),
            format!("{:.2}", out.queuing_delays().mean / 3600.0),
        ]);
    }
    Ok(format!(
        "{num_jobs} jobs, seed {seed}, {pattern:?}, {} GPUs, {} worker threads\n\n{}\n{timings}",
        cluster.total_gpus(),
        runner.threads(),
        table.render()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compares_all_four() {
        let opts =
            Options::parse(["--jobs", "6", "--seed", "4"].iter().map(|s| s.to_string())).unwrap();
        let out = run(&opts).unwrap();
        for name in ["Hadar", "Gavel", "Tiresias", "YARN-CS"] {
            assert!(out.contains(name), "{name} missing:\n{out}");
        }
    }

    #[test]
    fn failure_injection_is_deterministic_across_threads() {
        // Fixed --failure-seed: the same fault timeline (and therefore the
        // same table) whatever the worker count.
        let base = [
            "--jobs",
            "6",
            "--seed",
            "4",
            "--mtbf",
            "1",
            "--mttr",
            "0.3",
            "--failure-seed",
            "7",
            "--threads",
        ];
        let table = |threads: &str| {
            let args: Vec<String> = base
                .iter()
                .map(|s| s.to_string())
                .chain([threads.to_string()])
                .collect();
            let out = run(&Options::parse(args).unwrap()).unwrap();
            out.lines()
                .filter(|l| !l.contains("worker threads") && !l.contains("cell wall-clock"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(table("1"), table("4"));
    }

    #[test]
    fn threaded_run_matches_serial_table() {
        let base = ["--jobs", "6", "--seed", "4", "--threads"];
        let table = |threads: &str| {
            let args: Vec<String> = base
                .iter()
                .map(|s| s.to_string())
                .chain([threads.to_string()])
                .collect();
            let out = run(&Options::parse(args).unwrap()).unwrap();
            // Strip the header line (thread count) and cell wall-clock
            // lines; the metric table itself must be identical.
            out.lines()
                .filter(|l| !l.contains("worker threads") && !l.contains("cell wall-clock"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(table("1"), table("4"));
    }
}

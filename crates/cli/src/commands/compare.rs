//! `hadar-cli compare`: all four schedulers on one workload.

use hadar_metrics::Table;
use hadar_sim::{SimConfig, Simulation};
use hadar_workload::{generate_trace, ArrivalPattern, TraceConfig};

use crate::args::{parse_cluster, parse_pattern, Options};
use crate::commands::scheduler_by_name;

/// Run the comparison; returns the rendered table.
pub fn run(opts: &Options) -> Result<String, String> {
    let num_jobs: usize = opts.get_parsed("jobs", 48)?;
    if num_jobs == 0 {
        return Err("--jobs must be ≥ 1".into());
    }
    let seed: u64 = opts.get_parsed("seed", 0)?;
    let pattern = match opts.get("pattern") {
        Some(p) => parse_pattern(p)?,
        None => ArrivalPattern::Static,
    };
    let cluster = parse_cluster(opts.get("cluster").unwrap_or("paper"))?;
    let jobs = generate_trace(
        &TraceConfig {
            num_jobs,
            seed,
            pattern,
        },
        cluster.catalog(),
    );

    let mut table = Table::new(vec![
        "Scheduler",
        "Mean JCT (h)",
        "Median JCT (h)",
        "Makespan (h)",
        "Util (%)",
        "Mean FTF",
        "Queue (h)",
    ]);
    for name in ["hadar", "gavel", "tiresias", "yarn"] {
        let scheduler = scheduler_by_name(name)?;
        let out = Simulation::new(cluster.clone(), jobs.clone(), SimConfig::default())
            .run(scheduler);
        let m = out.metrics();
        table.row(vec![
            out.scheduler.clone(),
            format!("{:.2}", m.mean / 3600.0),
            format!("{:.2}", m.median / 3600.0),
            format!("{:.2}", out.makespan() / 3600.0),
            format!("{:.1}", out.demand_weighted_utilization() * 100.0),
            format!("{:.3}", out.ftf().mean),
            format!("{:.2}", out.queuing_delays().mean / 3600.0),
        ]);
    }
    Ok(format!(
        "{num_jobs} jobs, seed {seed}, {pattern:?}, {} GPUs\n\n{}",
        cluster.total_gpus(),
        table.render()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compares_all_four() {
        let opts = Options::parse(
            ["--jobs", "6", "--seed", "4"].iter().map(|s| s.to_string()),
        )
        .unwrap();
        let out = run(&opts).unwrap();
        for name in ["Hadar", "Gavel", "Tiresias", "YARN-CS"] {
            assert!(out.contains(name), "{name} missing:\n{out}");
        }
    }
}

//! `hadar-cli simulate`.
//!
//! The (single) simulation cell is submitted through the shared
//! `hadar_sim::SweepRunner` like every sweep cell in the workspace, so the
//! report includes the cell's wall-clock time and `--threads` is accepted
//! for symmetry with `compare` (it cannot change a one-cell run).

use hadar_sim::{SimConfig, SimOutcome, SimResult, Simulation, Telemetry};
use hadar_workload::{generate_trace, load_trace_csv, ArrivalPattern, TraceConfig};

use crate::args::{
    parse_cluster, parse_failure, parse_pattern, parse_penalty, parse_round_threads, parse_runner,
    parse_straggler, Options,
};
use crate::commands::scheduler_by_name;

/// Run one simulation. Returns `(report, per_job_csv, telemetry_jsonl)`;
/// the stream is `Some` only when `--telemetry-out` was given.
pub fn run(opts: &Options) -> Result<(String, String, Option<String>), String> {
    let scheduler_name = opts
        .get("scheduler")
        .ok_or("--scheduler is required (hadar|gavel|tiresias|yarn)")?
        .to_owned();
    let round_threads = parse_round_threads(opts)?;
    scheduler_by_name(&scheduler_name, round_threads)?; // validate the name up front
    let runner = parse_runner(opts)?;
    let cluster = parse_cluster(opts.get("cluster").unwrap_or("paper"))?;

    // Workload: either a trace file or generated on the fly.
    let jobs = if let Some(path) = opts.get("trace") {
        let csv = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read trace {path:?}: {e}"))?;
        load_trace_csv(&csv, cluster.catalog())?
    } else {
        let num_jobs: usize = opts.get_parsed("jobs", 48)?;
        if num_jobs == 0 {
            return Err("--jobs must be ≥ 1".into());
        }
        let seed: u64 = opts.get_parsed("seed", 0)?;
        let pattern = match opts.get("pattern") {
            Some(p) => parse_pattern(p)?,
            None => ArrivalPattern::Static,
        };
        generate_trace(
            &TraceConfig {
                num_jobs,
                seed,
                pattern,
            },
            cluster.catalog(),
        )
    };

    let round_min: f64 = opts.get_parsed("round-min", 6.0)?;
    if round_min <= 0.0 {
        return Err("--round-min must be positive".into());
    }
    let mut config = SimConfig {
        round_length: round_min * 60.0,
        ..SimConfig::default()
    };
    if let Some(p) = opts.get("penalty") {
        config.penalty = parse_penalty(p)?;
    }
    if let Some(s) = opts.get("straggler") {
        config.straggler = Some(parse_straggler(s)?);
    }
    config.failure = parse_failure(opts, config.round_length)?;

    let n = jobs.len();
    let observe = opts.get("telemetry-out").is_some();
    let cell: Vec<Box<dyn FnOnce() -> SimResult + Send>> = vec![Box::new(move || {
        let scheduler =
            scheduler_by_name(&scheduler_name, round_threads).expect("validated scheduler name");
        let sink = if observe {
            Telemetry::enabled()
        } else {
            Telemetry::disabled()
        };
        Simulation::new(cluster, jobs, config).run_with_telemetry(scheduler, sink)
    })];
    let result = runner
        .run(cell)
        .pop()
        .expect("one result for one simulation cell");
    let outcome = result.outcome.map_err(|e| e.to_string())?;
    let mut report = render_report(&outcome, n, result.wall_seconds);
    if observe {
        let t = &outcome.telemetry;
        report.push_str(&format!(
            "\ntelemetry            : {} rounds, {} scheduled, {} preempted, \
             {} evicted, max queue {}",
            t.rounds, t.jobs_scheduled, t.jobs_preempted, t.jobs_evicted, t.max_queue_depth,
        ));
    }
    let stream = outcome.telemetry_stream().map(str::to_owned);
    Ok((report, per_job_csv(&outcome), stream))
}

fn render_report(out: &SimOutcome, submitted: usize, wall_seconds: f64) -> String {
    let m = out.metrics();
    let q = out.queuing_delays();
    // Only rendered when fault injection actually fired, so reports from
    // failure-free runs are unchanged.
    let failures = if out.machine_failures() > 0 {
        format!(
            "\nmachine failures     : {} ({} evictions, {:.1} GPU-h capacity lost)",
            out.machine_failures(),
            out.evictions(),
            out.lost_gpu_seconds() / 3600.0,
        )
    } else {
        String::new()
    };
    format!(
        "scheduler            : {}\n\
         jobs completed       : {}/{submitted}{}\n\
         mean JCT             : {:.2} h\n\
         median JCT           : {:.2} h\n\
         p95 JCT              : {:.2} h\n\
         makespan             : {:.2} h\n\
         GPU utilization      : {:.1} % (demand-weighted), {:.1} % (held-time)\n\
         finish-time fairness : {:.3} (mean rho)\n\
         queuing delay        : {:.2} h mean, {:.2} h max\n\
         reallocation rate    : {:.1} % of job-rounds\n\
         scheduler decisions  : {:.3} ms mean wall time\n\
         simulation wall time : {wall_seconds:.2} s{failures}",
        out.scheduler,
        out.completed_jobs(),
        if out.timed_out { " (TIMED OUT)" } else { "" },
        m.mean / 3600.0,
        m.median / 3600.0,
        m.p95 / 3600.0,
        out.makespan() / 3600.0,
        out.demand_weighted_utilization() * 100.0,
        out.held_utilization() * 100.0,
        out.ftf().mean,
        q.mean / 3600.0,
        q.max / 3600.0,
        out.reallocation_rate() * 100.0,
        out.mean_decision_seconds() * 1e3,
    )
}

fn per_job_csv(out: &SimOutcome) -> String {
    let mut w = hadar_metrics::CsvWriter::new(&[
        "job_id",
        "model",
        "gang",
        "arrival_s",
        "first_scheduled_s",
        "finish_s",
        "jct_s",
        "queuing_delay_s",
        "reallocations",
    ]);
    for r in &out.records {
        w.row(vec![
            r.job.id.0.to_string(),
            r.job.model.model_name().to_owned(),
            r.job.gang.to_string(),
            format!("{:.1}", r.job.arrival),
            r.first_scheduled.map_or("-".into(), |t| format!("{t:.1}")),
            r.finish.map_or("-".into(), |t| format!("{t:.1}")),
            r.jct().map_or("-".into(), |t| format!("{t:.1}")),
            r.queuing_delay().map_or("-".into(), |t| format!("{t:.1}")),
            r.reallocations.to_string(),
        ]);
    }
    w.as_str().to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(args: &[&str]) -> Options {
        Options::parse(args.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn simulate_requires_scheduler() {
        assert!(run(&opts(&["--jobs", "4"])).is_err());
    }

    #[test]
    fn simulate_small_run() {
        let (report, csv, telemetry) = run(&opts(&[
            "--scheduler",
            "hadar",
            "--jobs",
            "6",
            "--seed",
            "2",
        ]))
        .unwrap();
        assert!(report.contains("jobs completed       : 6/6"));
        assert!(report.contains("Hadar"));
        assert_eq!(csv.lines().count(), 7);
        // Without --telemetry-out the sink is disabled: no stream, no
        // telemetry block in the report.
        assert!(telemetry.is_none());
        assert!(!report.contains("telemetry"));
    }

    #[test]
    fn simulate_with_telemetry_out() {
        for scheduler in ["hadar", "gavel", "tiresias", "yarn", "srtf"] {
            let (report, _, telemetry) = run(&opts(&[
                "--scheduler",
                scheduler,
                "--jobs",
                "5",
                "--seed",
                "3",
                "--telemetry-out",
                "unused-by-this-test.jsonl",
            ]))
            .unwrap();
            let stream = telemetry.expect("stream present with --telemetry-out");
            let r = hadar_metrics::validate_telemetry_jsonl(&stream)
                .unwrap_or_else(|e| panic!("{scheduler}: invalid stream: {e}"));
            assert!(r.rounds > 0, "{scheduler}");
            assert_eq!(r.completed, 5, "{scheduler}");
            assert!(report.contains("telemetry"), "{scheduler}:\n{report}");
        }
    }

    #[test]
    fn simulate_with_all_options() {
        let (report, _, _) = run(&opts(&[
            "--scheduler",
            "tiresias",
            "--jobs",
            "4",
            "--seed",
            "1",
            "--pattern",
            "poisson:90",
            "--cluster",
            "scaled:2",
            "--round-min",
            "12",
            "--penalty",
            "modeled",
            "--straggler",
            "0.05,0.5,3,7",
        ]))
        .unwrap();
        assert!(report.contains("Tiresias"));
        assert!(report.contains("4/4"));
    }

    #[test]
    fn simulate_with_failures() {
        // An aggressive failure process (MTBF 0.5 h = 5 rounds) on a small
        // trace: the run finishes and the report grows the failure block.
        let (report, _, _) = run(&opts(&[
            "--scheduler",
            "hadar",
            "--jobs",
            "6",
            "--seed",
            "2",
            "--mtbf",
            "0.5",
            "--mttr",
            "0.2",
            "--failure-seed",
            "3",
        ]))
        .unwrap();
        assert!(
            report.contains("machine failures"),
            "no failure block:\n{report}"
        );
    }

    #[test]
    fn bad_failure_flags_rejected() {
        assert!(run(&opts(&[
            "--scheduler",
            "hadar",
            "--jobs",
            "2",
            "--mtbf",
            "-1"
        ]))
        .is_err());
        assert!(run(&opts(&[
            "--scheduler",
            "hadar",
            "--jobs",
            "2",
            "--mttr",
            "1"
        ]))
        .is_err());
    }

    #[test]
    fn simulate_from_trace_file() {
        let dir = std::env::temp_dir().join("hadar-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.csv");
        let (_, csv) =
            crate::commands::gen_trace::run(&opts(&["--jobs", "5", "--seed", "9"])).unwrap();
        std::fs::write(&path, csv).unwrap();
        let (report, _, _) = run(&opts(&[
            "--scheduler",
            "gavel",
            "--trace",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(report.contains("5/5"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_round_length_rejected() {
        assert!(run(&opts(&[
            "--scheduler",
            "hadar",
            "--jobs",
            "2",
            "--round-min",
            "0"
        ]))
        .is_err());
    }
}

//! `hadar-cli gen-trace`.

use hadar_workload::{generate_trace, save_trace_csv, ArrivalPattern, TraceConfig};

use crate::args::{parse_cluster, parse_pattern, Options};

/// Generate a trace; returns `(report, csv)` — the CSV goes to `--out` or
/// stdout.
pub fn run(opts: &Options) -> Result<(String, String), String> {
    let num_jobs: usize = opts.get_parsed("jobs", 480)?;
    let seed: u64 = opts.get_parsed("seed", 0)?;
    let pattern = match opts.get("pattern") {
        Some(p) => parse_pattern(p)?,
        None => ArrivalPattern::Static,
    };
    let cluster = parse_cluster(opts.get("cluster").unwrap_or("paper"))?;
    if num_jobs == 0 {
        return Err("--jobs must be ≥ 1".into());
    }

    let jobs = generate_trace(
        &TraceConfig {
            num_jobs,
            seed,
            pattern,
        },
        cluster.catalog(),
    );
    let csv = save_trace_csv(&jobs);
    let stats = hadar_workload::TraceStats::of(&jobs);
    let report = format!(
        "generated {num_jobs} jobs (seed {seed}, {pattern:?}): {}",
        stats.render()
    );
    Ok((report, csv))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(args: &[&str]) -> Options {
        Options::parse(args.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn generates_csv_with_header() {
        let (report, csv) = run(&opts(&["--jobs", "12", "--seed", "5"])).unwrap();
        assert!(report.contains("12 jobs"));
        assert!(csv.starts_with("id,model,arrival_s"));
        assert_eq!(csv.lines().count(), 13);
    }

    #[test]
    fn poisson_pattern_accepted() {
        let (_, csv) = run(&opts(&[
            "--jobs",
            "5",
            "--pattern",
            "poisson:30",
            "--seed",
            "1",
        ]))
        .unwrap();
        assert_eq!(csv.lines().count(), 6);
    }

    #[test]
    fn zero_jobs_rejected() {
        assert!(run(&opts(&["--jobs", "0"])).is_err());
    }
}

//! CLI subcommands. Each returns the text to print (so the logic is unit
//! testable without capturing stdout).

pub mod catalog;
pub mod compare;
pub mod gen_trace;
pub mod simulate;

use hadar_baselines::{GavelScheduler, SrtfScheduler, TiresiasScheduler, YarnCsScheduler};
use hadar_core::{HadarConfig, HadarScheduler, RoundParallelism};
use hadar_sim::Scheduler;

/// Build a scheduler by CLI name. `round_threads` (from `--round-threads`)
/// pins the intra-round candidate-generation worker count for Hadar; the
/// other policies have no intra-round parallelism and ignore it.
pub fn scheduler_by_name(
    name: &str,
    round_threads: Option<usize>,
) -> Result<Box<dyn Scheduler>, String> {
    match name {
        "hadar" => {
            let mut config = HadarConfig::default();
            if let Some(n) = round_threads {
                config.round_parallelism = RoundParallelism::Fixed(n);
            }
            Ok(Box::new(HadarScheduler::new(config)))
        }
        "gavel" => Ok(Box::new(GavelScheduler::paper_default())),
        "tiresias" => Ok(Box::new(TiresiasScheduler::paper_default())),
        "yarn" | "yarn-cs" => Ok(Box::new(YarnCsScheduler::new())),
        "srtf" => Ok(Box::new(SrtfScheduler::new())),
        other => Err(format!(
            "unknown scheduler {other:?} (expected hadar|gavel|tiresias|yarn)"
        )),
    }
}

/// The shared usage text.
pub const USAGE: &str = "\
hadar-cli — heterogeneity-aware DL cluster scheduling (Hadar, IPDPS 2024)

USAGE:
  hadar-cli catalog
      Print the Table II workload catalog.

  hadar-cli gen-trace [--jobs N] [--seed S] [--pattern static|poisson:RATE]
                      [--cluster paper|aws|toy|scaled:N] [--out FILE]
      Generate a synthetic Philly-style trace (CSV to stdout or FILE).

  hadar-cli simulate --scheduler hadar|gavel|tiresias|yarn|srtf
                     [--trace FILE | --jobs N --seed S --pattern P]
                     [--cluster paper|aws|toy|scaled:N] [--round-min M]
                     [--penalty none|fixed:SECS|modeled]
                     [--straggler INC,SLOW,ROUNDS,SEED]
                     [--mtbf HOURS] [--mttr HOURS] [--failure-seed S]
                     [--csv FILE] [--telemetry-out FILE]
                     [--threads N] [--round-threads N]
      Run one simulation and print the metric report. --round-threads N
      pins the Hadar scheduler's intra-round candidate-generation worker
      count (default: HADAR_ROUND_THREADS or the machine parallelism;
      results are byte-identical at any count). --mtbf enables
      seeded machine fault injection (mean time between failures per
      machine, in hours; --mttr is the mean repair time, default 0.5 h):
      jobs on a failed machine are evicted, lose the round, and pay the
      checkpoint-restore penalty when re-placed. --telemetry-out FILE
      records a per-round JSONL telemetry stream (schema
      hadar.telemetry.v1: queue depth, scheduling/preemption/eviction
      counts, GPU-type utilization, per-policy counters) without
      changing the simulated schedule.

  hadar-cli compare [--jobs N] [--seed S] [--pattern P] [--cluster C]
                    [--mtbf HOURS] [--mttr HOURS] [--failure-seed S]
                    [--telemetry-out FILE] [--threads N] [--round-threads N]
      Run all four schedulers on the same workload and print a table.
      --threads N fans the four runs over N worker threads (default:
      HADAR_THREADS or the machine parallelism; results are identical to
      --threads 1, only wall-clock differs). The --mtbf/--mttr/
      --failure-seed fault-injection flags work as in simulate;
      --telemetry-out concatenates every scheduler's JSONL stream into
      FILE in table order.
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduler_names_resolve() {
        for n in ["hadar", "gavel", "tiresias", "yarn", "yarn-cs", "srtf"] {
            assert!(scheduler_by_name(n, None).is_ok(), "{n}");
            assert!(scheduler_by_name(n, Some(2)).is_ok(), "{n} with threads");
        }
        assert!(scheduler_by_name("slurm", None).is_err());
    }
}

//! CLI subcommands. Each returns the text to print (so the logic is unit
//! testable without capturing stdout).

pub mod catalog;
pub mod compare;
pub mod gen_trace;
pub mod simulate;

use hadar_baselines::{GavelScheduler, SrtfScheduler, TiresiasScheduler, YarnCsScheduler};
use hadar_core::{HadarConfig, HadarScheduler};
use hadar_sim::Scheduler;

/// Build a scheduler by CLI name.
pub fn scheduler_by_name(name: &str) -> Result<Box<dyn Scheduler>, String> {
    match name {
        "hadar" => Ok(Box::new(HadarScheduler::new(HadarConfig::default()))),
        "gavel" => Ok(Box::new(GavelScheduler::paper_default())),
        "tiresias" => Ok(Box::new(TiresiasScheduler::paper_default())),
        "yarn" | "yarn-cs" => Ok(Box::new(YarnCsScheduler::new())),
        "srtf" => Ok(Box::new(SrtfScheduler::new())),
        other => Err(format!(
            "unknown scheduler {other:?} (expected hadar|gavel|tiresias|yarn)"
        )),
    }
}

/// The shared usage text.
pub const USAGE: &str = "\
hadar-cli — heterogeneity-aware DL cluster scheduling (Hadar, IPDPS 2024)

USAGE:
  hadar-cli catalog
      Print the Table II workload catalog.

  hadar-cli gen-trace [--jobs N] [--seed S] [--pattern static|poisson:RATE]
                      [--cluster paper|aws|toy|scaled:N] [--out FILE]
      Generate a synthetic Philly-style trace (CSV to stdout or FILE).

  hadar-cli simulate --scheduler hadar|gavel|tiresias|yarn|srtf
                     [--trace FILE | --jobs N --seed S --pattern P]
                     [--cluster paper|aws|toy|scaled:N] [--round-min M]
                     [--penalty none|fixed:SECS|modeled]
                     [--straggler INC,SLOW,ROUNDS,SEED]
                     [--mtbf HOURS] [--mttr HOURS] [--failure-seed S]
                     [--csv FILE] [--threads N]
      Run one simulation and print the metric report. --mtbf enables
      seeded machine fault injection (mean time between failures per
      machine, in hours; --mttr is the mean repair time, default 0.5 h):
      jobs on a failed machine are evicted, lose the round, and pay the
      checkpoint-restore penalty when re-placed.

  hadar-cli compare [--jobs N] [--seed S] [--pattern P] [--cluster C]
                    [--mtbf HOURS] [--mttr HOURS] [--failure-seed S]
                    [--threads N]
      Run all four schedulers on the same workload and print a table.
      --threads N fans the four runs over N worker threads (default:
      HADAR_THREADS or the machine parallelism; results are identical to
      --threads 1, only wall-clock differs). The --mtbf/--mttr/
      --failure-seed fault-injection flags work as in simulate.
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduler_names_resolve() {
        for n in ["hadar", "gavel", "tiresias", "yarn", "yarn-cs", "srtf"] {
            assert!(scheduler_by_name(n).is_ok(), "{n}");
        }
        assert!(scheduler_by_name("slurm").is_err());
    }
}

//! Hand-rolled argument parsing (keeps the dependency set to the approved
//! offline list — no clap).

use hadar_cluster::Cluster;
use hadar_sim::{CheckpointModel, FailureModel, PreemptionPenalty, StragglerModel, SweepRunner};
use hadar_workload::ArrivalPattern;

/// Parsed `--key value` options plus positional arguments.
#[derive(Debug, Default, Clone)]
pub struct Options {
    pairs: Vec<(String, String)>,
    positional: Vec<String>,
}

impl Options {
    /// Parse from an argument iterator (excluding the program name).
    ///
    /// Every `--key` consumes the following token as its value.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut out = Options::default();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                let value = it
                    .next()
                    .ok_or_else(|| format!("--{key} expects a value"))?;
                out.pairs.push((key.to_owned(), value));
            } else {
                out.positional.push(a);
            }
        }
        Ok(out)
    }

    /// Positional arguments in order.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// The last value given for `key`, if any.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Parse an option into `T`, with a default.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key}: cannot parse {v:?}")),
        }
    }
}

/// Parse `--pattern static` or `--pattern poisson:RATE`.
pub fn parse_pattern(spec: &str) -> Result<ArrivalPattern, String> {
    if spec == "static" {
        return Ok(ArrivalPattern::Static);
    }
    if let Some(rate) = spec.strip_prefix("poisson:") {
        let jobs_per_hour: f64 = rate
            .parse()
            .map_err(|_| format!("bad poisson rate {rate:?}"))?;
        if jobs_per_hour <= 0.0 {
            return Err("poisson rate must be positive".into());
        }
        return Ok(ArrivalPattern::Poisson { jobs_per_hour });
    }
    Err(format!(
        "unknown pattern {spec:?} (expected 'static' or 'poisson:RATE')"
    ))
}

/// Parse `--cluster paper|aws|toy|scaled:N`.
pub fn parse_cluster(spec: &str) -> Result<Cluster, String> {
    match spec {
        "paper" => Ok(Cluster::paper_simulation()),
        "aws" => Ok(Cluster::paper_aws_prototype()),
        "toy" => Ok(Cluster::motivation_toy()),
        other => {
            if let Some(n) = other.strip_prefix("scaled:") {
                let scale: usize = n.parse().map_err(|_| format!("bad scale {n:?}"))?;
                if scale == 0 {
                    return Err("scale must be ≥ 1".into());
                }
                Ok(Cluster::scaled(scale))
            } else {
                Err(format!(
                    "unknown cluster {spec:?} (expected paper|aws|toy|scaled:N)"
                ))
            }
        }
    }
}

/// Parse `--penalty none|fixed:SECONDS|modeled`.
pub fn parse_penalty(spec: &str) -> Result<PreemptionPenalty, String> {
    match spec {
        "none" => Ok(PreemptionPenalty::None),
        "modeled" => Ok(PreemptionPenalty::Modeled(CheckpointModel::default())),
        other => {
            if let Some(s) = other.strip_prefix("fixed:") {
                let secs: f64 = s.parse().map_err(|_| format!("bad penalty {s:?}"))?;
                if secs < 0.0 {
                    return Err("penalty must be non-negative".into());
                }
                Ok(PreemptionPenalty::Fixed(secs))
            } else {
                Err(format!(
                    "unknown penalty {spec:?} (expected none|fixed:SECONDS|modeled)"
                ))
            }
        }
    }
}

/// Build the sweep runner from `--threads N` (N ≥ 1; 1 = strict serial).
/// Without the flag, `HADAR_THREADS` or the machine's available
/// parallelism (capped at 16) decides.
pub fn parse_runner(opts: &Options) -> Result<SweepRunner, String> {
    match opts.get("threads") {
        None => Ok(SweepRunner::from_env()),
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(SweepRunner::new(n)),
            _ => Err(format!("--threads expects a positive integer, got {v:?}")),
        },
    }
}

/// Parse `--round-threads N` (N ≥ 1) into the intra-round worker count for
/// the Hadar scheduler's candidate generation. `None` (flag absent) leaves
/// the scheduler on its auto policy (`HADAR_ROUND_THREADS` or the machine
/// parallelism). Results are byte-identical at any worker count.
pub fn parse_round_threads(opts: &Options) -> Result<Option<usize>, String> {
    match opts.get("round-threads") {
        None => Ok(None),
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(Some(n)),
            _ => Err(format!(
                "--round-threads expects a positive integer, got {v:?}"
            )),
        },
    }
}

/// Parse `--straggler INCIDENCE,SLOWDOWN,MEAN_ROUNDS,SEED`.
pub fn parse_straggler(spec: &str) -> Result<StragglerModel, String> {
    let parts: Vec<&str> = spec.split(',').collect();
    if parts.len() != 4 {
        return Err("straggler spec is INCIDENCE,SLOWDOWN,MEAN_ROUNDS,SEED".into());
    }
    let f = |i: usize, what: &str| -> Result<f64, String> {
        parts[i]
            .parse()
            .map_err(|_| format!("bad straggler {what} {:?}", parts[i]))
    };
    Ok(StragglerModel {
        incidence: f(0, "incidence")?,
        slowdown: f(1, "slowdown")?,
        mean_duration_rounds: f(2, "duration")?,
        seed: parts[3]
            .parse()
            .map_err(|_| format!("bad straggler seed {:?}", parts[3]))?,
    })
}

/// Build the machine-failure model from `--mtbf HOURS` (which enables fault
/// injection), `--mttr HOURS` (default 0.5) and `--failure-seed N` (default
/// 0). Times are wall-clock hours, converted to scheduling rounds of
/// `round_length` seconds (at least one round each).
pub fn parse_failure(opts: &Options, round_length: f64) -> Result<Option<FailureModel>, String> {
    let Some(mtbf) = opts.get("mtbf") else {
        if opts.get("mttr").is_some() || opts.get("failure-seed").is_some() {
            return Err("--mttr/--failure-seed only apply together with --mtbf".into());
        }
        return Ok(None);
    };
    let mtbf_hours: f64 = mtbf.parse().map_err(|_| format!("bad --mtbf {mtbf:?}"))?;
    let mttr_hours: f64 = opts.get_parsed("mttr", 0.5)?;
    if !mtbf_hours.is_finite() || mtbf_hours <= 0.0 {
        return Err("--mtbf must be a positive number of hours".into());
    }
    if !mttr_hours.is_finite() || mttr_hours <= 0.0 {
        return Err("--mttr must be a positive number of hours".into());
    }
    let to_rounds = |hours: f64| (hours * 3600.0 / round_length).max(1.0);
    Ok(Some(FailureModel {
        mtbf_rounds: to_rounds(mtbf_hours),
        mttr_rounds: to_rounds(mttr_hours),
        seed: opts.get_parsed("failure-seed", 0u64)?,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(args: &[&str]) -> Options {
        Options::parse(args.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn parses_pairs_and_positionals() {
        let o = opts(&["simulate", "--jobs", "10", "--seed", "3", "extra"]);
        assert_eq!(o.positional(), ["simulate", "extra"]);
        assert_eq!(o.get("jobs"), Some("10"));
        assert_eq!(o.get_parsed("seed", 0u64).unwrap(), 3);
        assert_eq!(o.get_parsed("missing", 42u64).unwrap(), 42);
        assert!(o.get_parsed::<u64>("jobs", 0).is_ok());
    }

    #[test]
    fn last_value_wins() {
        let o = opts(&["--x", "1", "--x", "2"]);
        assert_eq!(o.get("x"), Some("2"));
    }

    #[test]
    fn missing_value_is_error() {
        assert!(Options::parse(vec!["--jobs".to_string()]).is_err());
    }

    #[test]
    fn patterns() {
        assert_eq!(parse_pattern("static").unwrap(), ArrivalPattern::Static);
        assert_eq!(
            parse_pattern("poisson:45").unwrap(),
            ArrivalPattern::Poisson {
                jobs_per_hour: 45.0
            }
        );
        assert!(parse_pattern("poisson:-1").is_err());
        assert!(parse_pattern("burst").is_err());
    }

    #[test]
    fn clusters() {
        assert_eq!(parse_cluster("paper").unwrap().total_gpus(), 60);
        assert_eq!(parse_cluster("aws").unwrap().total_gpus(), 8);
        assert_eq!(parse_cluster("toy").unwrap().total_gpus(), 6);
        assert_eq!(parse_cluster("scaled:2").unwrap().total_gpus(), 24);
        assert!(parse_cluster("scaled:0").is_err());
        assert!(parse_cluster("moon").is_err());
    }

    #[test]
    fn penalties() {
        assert_eq!(parse_penalty("none").unwrap(), PreemptionPenalty::None);
        assert_eq!(
            parse_penalty("fixed:12.5").unwrap(),
            PreemptionPenalty::Fixed(12.5)
        );
        assert!(matches!(
            parse_penalty("modeled").unwrap(),
            PreemptionPenalty::Modeled(_)
        ));
        assert!(parse_penalty("fixed:-1").is_err());
        assert!(parse_penalty("huge").is_err());
    }

    #[test]
    fn threads() {
        assert_eq!(parse_runner(&opts(&[])).unwrap(), SweepRunner::from_env());
        assert_eq!(
            parse_runner(&opts(&["--threads", "3"])).unwrap().threads(),
            3
        );
        assert!(parse_runner(&opts(&["--threads", "0"])).is_err());
        assert!(parse_runner(&opts(&["--threads", "many"])).is_err());
    }

    #[test]
    fn round_threads() {
        assert_eq!(parse_round_threads(&opts(&[])).unwrap(), None);
        assert_eq!(
            parse_round_threads(&opts(&["--round-threads", "2"])).unwrap(),
            Some(2)
        );
        assert!(parse_round_threads(&opts(&["--round-threads", "0"])).is_err());
        assert!(parse_round_threads(&opts(&["--round-threads", "x"])).is_err());
    }

    #[test]
    fn stragglers() {
        let m = parse_straggler("0.05,0.5,4,9").unwrap();
        assert_eq!(m.incidence, 0.05);
        assert_eq!(m.slowdown, 0.5);
        assert_eq!(m.mean_duration_rounds, 4.0);
        assert_eq!(m.seed, 9);
        assert!(parse_straggler("1,2,3").is_err());
        assert!(parse_straggler("a,b,c,d").is_err());
    }

    #[test]
    fn failures() {
        // No --mtbf: failure injection stays off.
        assert_eq!(parse_failure(&opts(&[]), 360.0).unwrap(), None);
        // 24h MTBF / 0.5h default MTTR at 6-minute rounds.
        let m = parse_failure(&opts(&["--mtbf", "24"]), 360.0)
            .unwrap()
            .unwrap();
        assert_eq!(m.mtbf_rounds, 240.0);
        assert_eq!(m.mttr_rounds, 5.0);
        assert_eq!(m.seed, 0);
        let m = parse_failure(
            &opts(&["--mtbf", "12", "--mttr", "1", "--failure-seed", "9"]),
            360.0,
        )
        .unwrap()
        .unwrap();
        assert_eq!(m.mtbf_rounds, 120.0);
        assert_eq!(m.mttr_rounds, 10.0);
        assert_eq!(m.seed, 9);
        // Sub-round repair times clamp to one round.
        let m = parse_failure(&opts(&["--mtbf", "24", "--mttr", "0.01"]), 360.0)
            .unwrap()
            .unwrap();
        assert_eq!(m.mttr_rounds, 1.0);
        assert!(parse_failure(&opts(&["--mtbf", "0"]), 360.0).is_err());
        assert!(parse_failure(&opts(&["--mtbf", "x"]), 360.0).is_err());
        assert!(parse_failure(&opts(&["--mtbf", "24", "--mttr", "-1"]), 360.0).is_err());
        assert!(parse_failure(&opts(&["--mttr", "1"]), 360.0).is_err());
        assert!(parse_failure(&opts(&["--failure-seed", "1"]), 360.0).is_err());
    }
}

//! `hadar-cli`: command-line front end for the Hadar scheduler workspace.
//!
//! See `hadar-cli --help` (or [`commands::USAGE`]) for subcommands.

mod args;
mod commands;

use args::Options;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() || raw.iter().any(|a| a == "--help" || a == "-h") {
        print!("{}", commands::USAGE);
        return;
    }
    let opts = match Options::parse(raw) {
        Ok(o) => o,
        Err(e) => fail(&e),
    };
    let command = opts.positional().first().map(String::as_str).unwrap_or("");
    match command {
        "catalog" => print!("{}", commands::catalog::run()),
        "gen-trace" => match commands::gen_trace::run(&opts) {
            Ok((report, csv)) => {
                eprintln!("{report}");
                match opts.get("out") {
                    Some(path) => {
                        if let Err(e) = std::fs::write(path, csv) {
                            fail(&format!("cannot write {path:?}: {e}"));
                        }
                        eprintln!("wrote {path}");
                    }
                    None => print!("{csv}"),
                }
            }
            Err(e) => fail(&e),
        },
        "simulate" => match commands::simulate::run(&opts) {
            Ok((report, csv, telemetry)) => {
                println!("{report}");
                if let Some(path) = opts.get("csv") {
                    if let Err(e) = std::fs::write(path, csv) {
                        fail(&format!("cannot write {path:?}: {e}"));
                    }
                    println!("per-job CSV written to {path}");
                }
                write_telemetry(&opts, telemetry);
            }
            Err(e) => fail(&e),
        },
        "compare" => match commands::compare::run(&opts) {
            Ok((out, telemetry)) => {
                println!("{out}");
                write_telemetry(&opts, telemetry);
            }
            Err(e) => fail(&e),
        },
        other => fail(&format!("unknown command {other:?}\n\n{}", commands::USAGE)),
    }
}

/// Write the telemetry JSONL stream to the `--telemetry-out` path. The
/// stream is `Some` exactly when the flag was given (the subcommand only
/// enables the sink then).
fn write_telemetry(opts: &Options, stream: Option<String>) {
    let Some(stream) = stream else {
        return;
    };
    let path = opts
        .get("telemetry-out")
        .expect("stream implies --telemetry-out");
    if let Err(e) = std::fs::write(path, stream) {
        fail(&format!("cannot write {path:?}: {e}"));
    }
    println!("telemetry JSONL written to {path}");
}

fn fail(message: &str) -> ! {
    eprintln!("error: {message}");
    std::process::exit(2);
}

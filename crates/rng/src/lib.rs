//! Deterministic pseudo-random numbers for trace generation, straggler
//! injection, and randomized tests.
//!
//! The workspace needs reproducible streams (equal seeds ⇒ identical
//! traces on every platform) but no cryptographic strength, so a small
//! vendored [xoshiro256++][ref] generator with a splitmix64 seeder covers
//! everything. The API mirrors the subset of `rand` the workspace uses:
//! [`StdRng::seed_from_u64`] plus the sampling helpers on the [`Rng`]
//! trait.
//!
//! [ref]: https://prng.di.unimi.it/

use std::ops::Range;

/// Sampling interface over a raw `u64` stream. All provided methods are
/// deterministic functions of [`Rng::next_u64`], so any two generators
/// with the same stream sample identically.
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits).
    #[inline]
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[range.start, range.end)`.
    ///
    /// # Panics
    /// Panics on an empty range.
    #[inline]
    fn gen_range_usize(&mut self, range: Range<usize>) -> usize {
        let len = range
            .end
            .checked_sub(range.start)
            .filter(|&l| l > 0)
            .expect("gen_range_usize: empty range");
        // Multiply-shift bounding; bias is < len / 2^64, irrelevant here.
        let hi = ((self.next_u64() as u128 * len as u128) >> 64) as usize;
        range.start + hi
    }

    /// Uniform `f64` in `[range.start, range.end)`.
    ///
    /// # Panics
    /// Panics on an empty or non-finite range.
    #[inline]
    fn gen_range_f64(&mut self, range: Range<f64>) -> f64 {
        assert!(
            range.start.is_finite() && range.end.is_finite() && range.start < range.end,
            "gen_range_f64: bad range {range:?}"
        );
        range.start + self.gen_f64() * (range.end - range.start)
    }
}

/// The workspace's standard generator: xoshiro256++, seeded via splitmix64.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Build a generator whose full state is derived from `seed` by four
    /// rounds of splitmix64 (the initialization recommended by the xoshiro
    /// authors — never yields the all-zero state).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }
}

impl Rng for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_samples_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
            lo = lo.min(x);
            hi = hi.max(x);
        }
        // The stream actually covers the interval.
        assert!(lo < 0.01 && hi > 0.99, "lo={lo} hi={hi}");
    }

    #[test]
    fn usize_range_covers_support_uniformly() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[rng.gen_range_usize(0..5)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - 10_000.0).abs() < 600.0,
                "bucket {i} count {c} far from uniform"
            );
        }
        // Offset ranges respect both bounds.
        for _ in 0..1000 {
            let v = rng.gen_range_usize(3..7);
            assert!((3..7).contains(&v));
        }
    }

    #[test]
    fn f64_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let x = rng.gen_range_f64(-2.5..4.0);
            assert!((-2.5..4.0).contains(&x));
        }
    }

    #[test]
    fn zero_seed_stream_is_not_degenerate() {
        let mut rng = StdRng::seed_from_u64(0);
        let vals: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        assert!(vals.iter().any(|&v| v != 0));
        assert!(vals.windows(2).all(|w| w[0] != w[1]));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_usize_range_panics() {
        StdRng::seed_from_u64(1).gen_range_usize(4..4);
    }

    #[test]
    #[should_panic(expected = "bad range")]
    fn bad_f64_range_panics() {
        StdRng::seed_from_u64(1).gen_range_f64(1.0..1.0);
    }
}

//! Counterpart of Fig. 7: per-round scheduling-decision cost for Hadar's
//! dual subroutine and Gavel's policy LP as the queue grows (the cluster
//! scales with the workload, as in the paper). Plain timing harness
//! (`cargo bench --bench scalability`); prints median wall time per call.

use std::time::Instant;

use hadar_bench::figures::fig7::scaled_cluster;
use hadar_cluster::{CommCostModel, Usage};
use hadar_core::dp::greedy_allocation;
use hadar_core::find_alloc::AllocEnv;
use hadar_core::{EffectiveThroughput, PriceState};
use hadar_sim::JobState;
use hadar_solver::{max_total_throughput_allocation, GavelLpInput};
use hadar_workload::{generate_trace, ArrivalPattern, TraceConfig};

fn states_for(n: usize) -> (hadar_cluster::Cluster, Vec<JobState>) {
    let cluster = scaled_cluster(n);
    let jobs = generate_trace(
        &TraceConfig {
            num_jobs: n,
            seed: 3,
            pattern: ArrivalPattern::Static,
        },
        cluster.catalog(),
    );
    let states = jobs.into_iter().map(JobState::new).collect();
    (cluster, states)
}

fn median_secs(mut f: impl FnMut(), samples: usize) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    times[times.len() / 2]
}

fn bench_hadar_decision() {
    println!("hadar_round_decision (greedy subroutine), 10 samples each:");
    for n in [32usize, 128, 512] {
        let (cluster, states) = states_for(n);
        let comm = CommCostModel::default();
        let med = median_secs(
            || {
                let prices = PriceState::compute(&states, &cluster, &EffectiveThroughput, 0.0);
                let env = AllocEnv {
                    cluster: &cluster,
                    comm: &comm,
                    prices: &prices,
                    utility: &EffectiveThroughput,
                    now: 0.0,
                    realloc_stall: 10.0,
                    features: Default::default(),
                    machine_factors: &[],
                    round_threads: 1,
                };
                let usage = Usage::empty(&cluster);
                let queue: Vec<&JobState> = states.iter().collect();
                std::hint::black_box(greedy_allocation(&queue, &env, &usage));
            },
            10,
        );
        println!("  n={n:>4}: {:.3} ms", med * 1e3);
    }
}

fn bench_gavel_lp() {
    println!("gavel_policy_lp, 10 samples each:");
    for n in [32usize, 128, 512] {
        let (cluster, states) = states_for(n);
        let num_types = cluster.num_types();
        let input = GavelLpInput {
            throughput: states
                .iter()
                .map(|s| {
                    (0..num_types)
                        .map(|r| s.job.profile.rate(hadar_cluster::GpuTypeId(r as u16)))
                        .collect()
                })
                .collect(),
            gang: states.iter().map(|s| s.job.gang).collect(),
            capacity: (0..num_types)
                .map(|r| cluster.total_of_type(hadar_cluster::GpuTypeId(r as u16)))
                .collect(),
        };
        let med = median_secs(
            || {
                std::hint::black_box(max_total_throughput_allocation(&input).expect("feasible"));
            },
            10,
        );
        println!("  n={n:>4}: {:.3} ms", med * 1e3);
    }
}

fn main() {
    bench_hadar_decision();
    bench_gavel_lp();
}

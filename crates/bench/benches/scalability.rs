//! Criterion counterpart of Fig. 7: per-round scheduling-decision cost for
//! Hadar's dual subroutine and Gavel's policy LP as the queue grows (the
//! cluster scales with the workload, as in the paper).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use hadar_bench::figures::fig7::scaled_cluster;
use hadar_cluster::{CommCostModel, Usage};
use hadar_core::dp::greedy_allocation;
use hadar_core::find_alloc::AllocEnv;
use hadar_core::{EffectiveThroughput, PriceState};
use hadar_sim::JobState;
use hadar_solver::{max_total_throughput_allocation, GavelLpInput};
use hadar_workload::{generate_trace, ArrivalPattern, TraceConfig};

fn states_for(n: usize) -> (hadar_cluster::Cluster, Vec<JobState>) {
    let cluster = scaled_cluster(n);
    let jobs = generate_trace(
        &TraceConfig {
            num_jobs: n,
            seed: 3,
            pattern: ArrivalPattern::Static,
        },
        cluster.catalog(),
    );
    let states = jobs.into_iter().map(JobState::new).collect();
    (cluster, states)
}

fn bench_hadar_decision(c: &mut Criterion) {
    let mut group = c.benchmark_group("hadar_round_decision");
    group.sample_size(10);
    for n in [32usize, 128, 512] {
        let (cluster, states) = states_for(n);
        let comm = CommCostModel::default();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let prices = PriceState::compute(&states, &cluster, &EffectiveThroughput, 0.0);
                let env = AllocEnv {
                    cluster: &cluster,
                    comm: &comm,
                    prices: &prices,
                    utility: &EffectiveThroughput,
                    now: 0.0,
                    realloc_stall: 10.0,
                    features: Default::default(),
                    machine_factors: &[],
                };
                let usage = Usage::empty(&cluster);
                let queue: Vec<&JobState> = states.iter().collect();
                greedy_allocation(&queue, &env, &usage)
            })
        });
    }
    group.finish();
}

fn bench_gavel_lp(c: &mut Criterion) {
    let mut group = c.benchmark_group("gavel_policy_lp");
    group.sample_size(10);
    for n in [32usize, 128, 512] {
        let (cluster, states) = states_for(n);
        let num_types = cluster.num_types();
        let input = GavelLpInput {
            throughput: states
                .iter()
                .map(|s| {
                    (0..num_types)
                        .map(|r| s.job.profile.rate(hadar_cluster::GpuTypeId(r as u16)))
                        .collect()
                })
                .collect(),
            gang: states.iter().map(|s| s.job.gang).collect(),
            capacity: (0..num_types)
                .map(|r| cluster.total_of_type(hadar_cluster::GpuTypeId(r as u16)))
                .collect(),
        };
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| max_total_throughput_allocation(&input).expect("feasible"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hadar_decision, bench_gavel_lp);
criterion_main!(benches);

//! LP-solver microbenchmarks: the exact simplex on Gavel-shaped
//! transportation LPs vs the density-greedy approximation, across instance
//! sizes. Plain timing harness (`cargo bench --bench solver`).

use std::time::Instant;

use hadar_solver::{greedy_total_throughput, max_total_throughput_allocation, GavelLpInput};

fn instance(jobs: usize, seed: u64) -> GavelLpInput {
    // Deterministic xorshift-based synthetic instance, 3 GPU types.
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    GavelLpInput {
        throughput: (0..jobs)
            .map(|_| {
                let base = 1.0 + 30.0 * next();
                vec![
                    base,
                    base * (0.3 + 0.4 * next()),
                    base * (0.05 + 0.2 * next()),
                ]
            })
            .collect(),
        gang: (0..jobs).map(|_| 1 + (next() * 4.0) as u32).collect(),
        capacity: vec![
            (jobs as u32 / 4).max(2),
            (jobs as u32 / 4).max(2),
            (jobs as u32 / 4).max(2),
        ],
    }
}

fn median_secs(mut f: impl FnMut(), samples: usize) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    times[times.len() / 2]
}

fn main() {
    println!("simplex_transportation, 10 samples each:");
    for n in [32usize, 128, 512] {
        let input = instance(n, 0xABCD);
        let med = median_secs(
            || {
                std::hint::black_box(max_total_throughput_allocation(&input).expect("feasible"));
            },
            10,
        );
        println!("  n={n:>4}: {:.3} ms", med * 1e3);
    }
    println!("greedy_transportation, 10 samples each:");
    for n in [32usize, 128, 512, 2048] {
        let input = instance(n, 0xABCD);
        let med = median_secs(
            || {
                std::hint::black_box(greedy_total_throughput(&input));
            },
            10,
        );
        println!("  n={n:>4}: {:.3} ms", med * 1e3);
    }
}

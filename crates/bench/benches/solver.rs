//! LP-solver microbenchmarks: the exact simplex on Gavel-shaped
//! transportation LPs vs the density-greedy approximation, across instance
//! sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use hadar_solver::{greedy_total_throughput, max_total_throughput_allocation, GavelLpInput};

fn instance(jobs: usize, seed: u64) -> GavelLpInput {
    // Deterministic xorshift-based synthetic instance, 3 GPU types.
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    GavelLpInput {
        throughput: (0..jobs)
            .map(|_| {
                let base = 1.0 + 30.0 * next();
                vec![base, base * (0.3 + 0.4 * next()), base * (0.05 + 0.2 * next())]
            })
            .collect(),
        gang: (0..jobs).map(|_| 1 + (next() * 4.0) as u32).collect(),
        capacity: vec![
            (jobs as u32 / 4).max(2),
            (jobs as u32 / 4).max(2),
            (jobs as u32 / 4).max(2),
        ],
    }
}

fn bench_simplex(c: &mut Criterion) {
    let mut group = c.benchmark_group("simplex_transportation");
    group.sample_size(10);
    for n in [32usize, 128, 512] {
        let input = instance(n, 0xABCD);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| max_total_throughput_allocation(&input).expect("feasible"))
        });
    }
    group.finish();
}

fn bench_greedy(c: &mut Criterion) {
    let mut group = c.benchmark_group("greedy_transportation");
    for n in [32usize, 128, 512, 2048] {
        let input = instance(n, 0xABCD);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| greedy_total_throughput(&input))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simplex, bench_greedy);
criterion_main!(benches);

//! LP-solver microbenchmarks on Gavel-shaped transportation LPs.
//!
//! Three solvers are timed across instance sizes:
//!
//! * **dense cold** — the reference two-phase tableau (`LpProblem::solve`),
//! * **revised cold** — the sparse revised simplex (`solve_revised`),
//! * **warm round-over-round** — the revised simplex warm-started from the
//!   previous round's optimal basis after a job completion + arrival, i.e.
//!   exactly what `GavelScheduler` does every time the active job set
//!   changes,
//!
//! plus the density greedy as a floor. Results are printed and recorded in
//! `BENCH_solver.json` (override the path with `HADAR_BENCH_OUT`) so the
//! perf trajectory has a tracked baseline; CI runs `--quick` and uploads
//! the file as an artifact. Plain timing harness:
//! `cargo bench --bench solver [-- --quick]`.

use std::time::Instant;

use hadar_solver::{
    greedy_total_throughput, max_total_throughput_allocation_warm, GavelBasisCache, GavelLpInput,
    LpProblem, Relation,
};

const TYPES: usize = 3;

fn instance(ids: &[u64], seed: u64) -> GavelLpInput {
    // Deterministic xorshift-based synthetic instance keyed by job id, so
    // surviving jobs keep their rows across churn rounds.
    let throughput = ids
        .iter()
        .map(|&id| {
            let mut state = (seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15)) | 1;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 11) as f64 / (1u64 << 53) as f64
            };
            let base = 1.0 + 30.0 * next();
            vec![
                base,
                base * (0.3 + 0.4 * next()),
                base * (0.05 + 0.2 * next()),
            ]
        })
        .collect();
    let gang = ids.iter().map(|&id| 1 + (id % 4) as u32).collect();
    let jobs = ids.len();
    GavelLpInput {
        throughput,
        gang,
        capacity: vec![(jobs as u32 / 4).max(2); TYPES],
    }
}

/// The total-throughput policy LP as an `LpProblem`, for timing the raw
/// solvers on identical problems (mirrors `hadar_solver::gavel`'s builder).
fn build_lp(input: &GavelLpInput) -> LpProblem {
    let jobs = input.throughput.len();
    let var = |j: usize, r: usize| j * TYPES + r;
    let mut p = LpProblem::maximize(jobs * TYPES);
    for (j, row) in input.throughput.iter().enumerate() {
        for (r, &x) in row.iter().enumerate() {
            p.set_objective(var(j, r), x * input.gang[j] as f64);
        }
    }
    for j in 0..jobs {
        let coeffs = (0..TYPES).map(|r| (var(j, r), 1.0)).collect();
        p.add_constraint(coeffs, Relation::Le, 1.0);
    }
    for r in 0..TYPES {
        let coeffs = (0..jobs)
            .map(|j| (var(j, r), input.gang[j] as f64))
            .collect();
        p.add_constraint(coeffs, Relation::Le, input.capacity[r] as f64);
    }
    p
}

fn median(mut times: Vec<f64>) -> f64 {
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    times[times.len() / 2]
}

fn time_of(mut f: impl FnMut()) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64()
}

/// One churn round: job `round` leaves, job `jobs + round` arrives.
fn round_ids(jobs: usize, round: usize) -> Vec<u64> {
    (0..jobs as u64 + round as u64)
        .filter(|&id| id >= round as u64)
        .collect()
}

struct SizeResult {
    jobs: usize,
    rows: usize,
    vars: usize,
    dense_cold_ms: Option<f64>,
    revised_cold_ms: f64,
    warm_round_ms: f64,
    greedy_ms: f64,
}

fn bench_size(jobs: usize, rounds: usize, dense_samples: usize) -> SizeResult {
    let seed = 0xABCD;
    // Round 0 problem plus `rounds` perturbed successors.
    let inputs: Vec<(Vec<u64>, GavelLpInput)> = (0..=rounds)
        .map(|k| {
            let ids = round_ids(jobs, k);
            let input = instance(&ids, seed);
            (ids, input)
        })
        .collect();

    // Warm round-over-round: basis from round k-1 seeds round k (exactly
    // the GavelScheduler hot path). The round-0 cold solve is not timed.
    let mut cache: Option<GavelBasisCache> = None;
    let mut warm_times = Vec::new();
    for (k, (ids, input)) in inputs.iter().enumerate() {
        let mut next_cache = None;
        let secs = time_of(|| {
            let (y, c) = max_total_throughput_allocation_warm(input, ids, cache.as_ref())
                .expect("well-formed instance");
            std::hint::black_box(&y);
            next_cache = Some(c);
        });
        if k > 0 {
            warm_times.push(secs);
        }
        cache = next_cache;
    }

    // Cold solves of the same perturbed rounds.
    let revised_cold_ms = median(
        inputs
            .iter()
            .skip(1)
            .map(|(_, input)| {
                let p = build_lp(input);
                time_of(|| {
                    std::hint::black_box(p.solve_revised().optimal().expect("feasible"));
                })
            })
            .collect(),
    ) * 1e3;
    let dense_cold_ms = (dense_samples > 0).then(|| {
        median(
            inputs
                .iter()
                .skip(1)
                .take(dense_samples)
                .map(|(_, input)| {
                    let p = build_lp(input);
                    time_of(|| {
                        std::hint::black_box(p.solve().optimal().expect("feasible"));
                    })
                })
                .collect(),
        ) * 1e3
    });
    let greedy_ms = median(
        inputs
            .iter()
            .skip(1)
            .map(|(_, input)| {
                time_of(|| {
                    std::hint::black_box(greedy_total_throughput(input).expect("well-formed"));
                })
            })
            .collect(),
    ) * 1e3;

    SizeResult {
        jobs,
        rows: jobs + TYPES,
        vars: jobs * TYPES,
        dense_cold_ms,
        revised_cold_ms,
        warm_round_ms: median(warm_times) * 1e3,
        greedy_ms,
    }
}

fn fmt_ms(v: Option<f64>) -> String {
    match v {
        Some(ms) => format!("{ms:.4}"),
        None => "null".to_owned(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    // (jobs, churn rounds, dense samples; 0 = skip dense at that size)
    let plan: &[(usize, usize, usize)] = if quick {
        &[(32, 5, 5), (128, 5, 3)]
    } else {
        &[
            (32, 9, 9),
            (128, 9, 9),
            (512, 7, 5),
            (1024, 5, 3),
            (2048, 5, 0),
        ]
    };

    println!("Gavel total-throughput LP: dense cold vs revised cold vs warm round-over-round");
    let mut results = Vec::new();
    for &(jobs, rounds, dense_samples) in plan {
        let r = bench_size(jobs, rounds, dense_samples);
        let dense = r
            .dense_cold_ms
            .map(|ms| format!("{ms:>10.3} ms"))
            .unwrap_or_else(|| "   (skipped)".to_owned());
        println!(
            "  n={:>4} jobs ({} rows × {} vars): dense {dense} | revised {:>9.3} ms | warm {:>9.3} ms | greedy {:>7.3} ms",
            r.jobs, r.rows, r.vars, r.revised_cold_ms, r.warm_round_ms, r.greedy_ms
        );
        if let Some(d) = r.dense_cold_ms {
            println!(
                "          speedups vs dense: revised {:.1}×, warm round-over-round {:.1}×",
                d / r.revised_cold_ms,
                d / r.warm_round_ms
            );
        }
        results.push(r);
    }

    // cargo runs benches with cwd = the package root; default to the
    // workspace root two levels up so the JSON lands next to the README.
    let out_path = std::env::var("HADAR_BENCH_OUT")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_solver.json").into());
    let sizes: Vec<String> = results
        .iter()
        .map(|r| {
            let speedup_rev = r
                .dense_cold_ms
                .map(|d| format!("{:.2}", d / r.revised_cold_ms))
                .unwrap_or_else(|| "null".into());
            let speedup_warm = r
                .dense_cold_ms
                .map(|d| format!("{:.2}", d / r.warm_round_ms))
                .unwrap_or_else(|| "null".into());
            format!(
                concat!(
                    "    {{\"jobs\": {}, \"rows\": {}, \"vars\": {}, ",
                    "\"dense_cold_ms\": {}, \"revised_cold_ms\": {}, ",
                    "\"warm_round_ms\": {}, \"greedy_ms\": {}, ",
                    "\"speedup_revised_vs_dense\": {}, \"speedup_warm_vs_dense\": {}}}"
                ),
                r.jobs,
                r.rows,
                r.vars,
                fmt_ms(r.dense_cold_ms),
                fmt_ms(Some(r.revised_cold_ms)),
                fmt_ms(Some(r.warm_round_ms)),
                fmt_ms(Some(r.greedy_ms)),
                speedup_rev,
                speedup_warm,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"solver\",\n  \"lp\": \"gavel_total_throughput\",\n  \"gpu_types\": {TYPES},\n  \"mode\": \"{}\",\n  \"timing\": \"median wall-clock per solve; warm = round-over-round with one completion + one arrival\",\n  \"sizes\": [\n{}\n  ]\n}}\n",
        if quick { "quick" } else { "full" },
        sizes.join(",\n")
    );
    std::fs::write(&out_path, json).expect("write BENCH_solver.json");
    println!("wrote {out_path}");
}

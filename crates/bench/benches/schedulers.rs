//! End-to-end simulation cost per scheduler: one complete 24-job static
//! trace on the paper's 60-GPU cluster. Tracks how expensive a *whole*
//! evaluation run is for each policy (Hadar pays for its per-round
//! optimization; the baselines are near-free by comparison).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use hadar_bench::{paper_sim_scenario, run_scenario, SchedulerKind};
use hadar_workload::ArrivalPattern;

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end_sim_24jobs");
    group.sample_size(10);
    for kind in SchedulerKind::HEADLINE {
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &k| {
            b.iter(|| {
                let s = paper_sim_scenario(24, 9, ArrivalPattern::Static);
                let out = run_scenario(s.cluster, s.jobs, s.config, k);
                assert_eq!(out.completed_jobs(), 24);
                out.mean_jct()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);

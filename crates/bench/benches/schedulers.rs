//! End-to-end simulation cost per scheduler: one complete 24-job static
//! trace on the paper's 60-GPU cluster. Tracks how expensive a *whole*
//! evaluation run is for each policy (Hadar pays for its per-round
//! optimization; the baselines are near-free by comparison). Plain timing
//! harness (`cargo bench --bench schedulers`).

use std::time::Instant;

use hadar_bench::{paper_sim_scenario, run_scenario, SchedulerKind};
use hadar_workload::ArrivalPattern;

fn main() {
    println!("end_to_end_sim_24jobs, 10 samples each:");
    for kind in SchedulerKind::HEADLINE {
        let mut times: Vec<f64> = (0..10)
            .map(|_| {
                let t0 = Instant::now();
                let s = paper_sim_scenario(24, 9, ArrivalPattern::Static);
                let out = run_scenario(s.cluster, s.jobs, s.config, kind).expect("valid scenario");
                assert_eq!(out.completed_jobs(), 24);
                std::hint::black_box(out.mean_jct());
                t0.elapsed().as_secs_f64()
            })
            .collect();
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        println!(
            "  {:<12} median {:.1} ms",
            kind.name(),
            times[times.len() / 2] * 1e3
        );
    }
}

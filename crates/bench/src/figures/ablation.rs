//! Ablation study of Hadar's design choices (not a paper figure; supports
//! DESIGN.md §7's "who wins and why" analysis by switching individual
//! mechanisms off):
//!
//! * **mixed-type placement** — the task-level flexibility itself,
//! * **sticky placements** — the stall-free keep-current candidate,
//! * **greedy vs DP** dual subroutine,
//! * **throughput profiling noise** — decisions from noisy estimates,
//! * **checkpoint penalty model** — none / flat 10 s / calibrated.

use hadar_core::profiler::ProfilerConfig;
use hadar_core::{AllocMode, Features, HadarConfig, HadarScheduler};
use hadar_metrics::CsvWriter;
use hadar_sim::{CheckpointModel, PreemptionPenalty, SimResult, Simulation, SweepRunner};
use hadar_workload::ArrivalPattern;

use crate::figures::{results_dir, FigureResult};
use crate::scenarios::paper_sim_scenario;

struct Variant {
    label: &'static str,
    config: fn() -> HadarConfig,
    penalty: PreemptionPenalty,
}

fn variants() -> Vec<Variant> {
    vec![
        Variant {
            label: "full (default)",
            config: HadarConfig::default,
            penalty: PreemptionPenalty::Fixed(10.0),
        },
        Variant {
            label: "no mixed types",
            config: || HadarConfig {
                features: Features {
                    mixed_types: false,
                    ..Features::default()
                },
                ..HadarConfig::default()
            },
            penalty: PreemptionPenalty::Fixed(10.0),
        },
        Variant {
            label: "no sticky placements",
            config: || HadarConfig {
                features: Features {
                    sticky: false,
                    ..Features::default()
                },
                ..HadarConfig::default()
            },
            penalty: PreemptionPenalty::Fixed(10.0),
        },
        Variant {
            label: "greedy-only subroutine",
            config: || HadarConfig {
                alloc_mode: AllocMode::Greedy,
                ..HadarConfig::default()
            },
            penalty: PreemptionPenalty::Fixed(10.0),
        },
        Variant {
            label: "no incremental updates",
            config: || HadarConfig {
                incremental: false,
                ..HadarConfig::default()
            },
            penalty: PreemptionPenalty::Fixed(10.0),
        },
        Variant {
            label: "noisy profiling (20%)",
            config: || HadarConfig {
                profiler: Some(ProfilerConfig {
                    rounds: 3,
                    noise: 0.2,
                    seed: 1,
                }),
                ..HadarConfig::default()
            },
            penalty: PreemptionPenalty::Fixed(10.0),
        },
        Variant {
            label: "no checkpoint penalty",
            config: HadarConfig::default,
            penalty: PreemptionPenalty::None,
        },
        Variant {
            label: "modeled checkpoint penalty",
            config: HadarConfig::default,
            penalty: PreemptionPenalty::Modeled(CheckpointModel::default()),
        },
    ]
}

/// Run the ablation grid, fanning the per-variant cells out over `runner`.
pub fn run(quick: bool, runner: &SweepRunner) -> FigureResult {
    let num_jobs = if quick { 30 } else { 160 };
    let seed = 42;

    let cells: Vec<Box<dyn FnOnce() -> SimResult + Send>> = variants()
        .into_iter()
        .map(|v| {
            Box::new(move || {
                let mut s = paper_sim_scenario(num_jobs, seed, ArrivalPattern::Static);
                s.config.penalty = v.penalty;
                Simulation::new(s.cluster, s.jobs, s.config).run(HadarScheduler::new((v.config)()))
            }) as Box<dyn FnOnce() -> SimResult + Send>
        })
        .collect();
    let results = runner.run(cells);

    let mut csv = CsvWriter::new(&[
        "variant",
        "mean_jct_hours",
        "median_jct_hours",
        "makespan_hours",
        "demand_weighted_utilization",
        "reallocation_rate",
    ]);
    let mut summary = format!("Ablation: Hadar design choices ({num_jobs} static jobs)\n");
    let mut timings = Vec::new();

    for (v, cell) in variants().into_iter().zip(results) {
        let out = cell.outcome.expect("simulation cell failed");
        timings.push((v.label.to_owned(), cell.wall_seconds));
        assert_eq!(out.completed_jobs(), num_jobs, "{}", v.label);
        csv.row(vec![
            v.label.to_owned(),
            format!("{:.3}", out.mean_jct() / 3600.0),
            format!("{:.3}", out.median_jct() / 3600.0),
            format!("{:.3}", out.makespan() / 3600.0),
            format!("{:.4}", out.demand_weighted_utilization()),
            format!("{:.4}", out.reallocation_rate()),
        ]);
        summary.push_str(&format!(
            "  {:<27} mean JCT {:>7.2} h | makespan {:>7.2} h | util {:>5.1}% | realloc {:>4.1}%\n",
            v.label,
            out.mean_jct() / 3600.0,
            out.makespan() / 3600.0,
            out.demand_weighted_utilization() * 100.0,
            out.reallocation_rate() * 100.0,
        ));
    }

    let path = results_dir().join("ablation_hadar.csv");
    csv.write_to(&path).expect("write ablation csv");
    FigureResult::new("ablation", summary, vec![path]).with_timings(timings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_complete() {
        let r = run(true, &SweepRunner::serial());
        let csv = std::fs::read_to_string(&r.csv_paths[0]).unwrap();
        assert_eq!(csv.lines().count(), 1 + variants().len());
    }
}

//! Straggler resilience experiment (supporting §IV-A-1's claim that Hadar
//! "handles straggling tasks more effectively by reallocating resources").
//!
//! Each scheduler runs the same trace twice — once on a healthy cluster and
//! once with the straggler process injecting transient 2.5× machine
//! slowdowns — and we report the JCT degradation. Hadar reads the
//! per-machine factors and migrates gangs off slow servers; the baselines
//! are straggler-blind and pay the synchronization-barrier penalty for as
//! long as a slowdown lasts.

use hadar_metrics::CsvWriter;
use hadar_sim::{SimResult, StragglerModel, SweepRunner};
use hadar_workload::ArrivalPattern;

use crate::experiments::{run_scenario, SchedulerKind};
use crate::figures::{results_dir, FigureResult};
use crate::scenarios::paper_sim_scenario;

/// Run the straggler resilience comparison, fanning the
/// (scheduler × {healthy, straggling}) cells out over `runner`.
pub fn run(quick: bool, runner: &SweepRunner) -> FigureResult {
    let num_jobs = if quick { 24 } else { 160 };
    let seed = 42;
    let model = StragglerModel {
        incidence: 0.03,
        slowdown: 0.4,
        mean_duration_rounds: 5.0,
        seed: 17,
    };

    let mut cells: Vec<Box<dyn FnOnce() -> SimResult + Send>> = Vec::new();
    let mut labels: Vec<String> = Vec::new();
    for kind in SchedulerKind::HEADLINE {
        for straggling in [false, true] {
            labels.push(format!(
                "{} {}",
                kind.name(),
                if straggling { "straggling" } else { "healthy" }
            ));
            cells.push(Box::new(move || {
                let mut s = paper_sim_scenario(num_jobs, seed, ArrivalPattern::Static);
                if straggling {
                    s.config.straggler = Some(model);
                }
                run_scenario(s.cluster, s.jobs, s.config, kind)
            }));
        }
    }
    let results = runner.run(cells);
    let timings: Vec<(String, f64)> = labels
        .into_iter()
        .zip(&results)
        .map(|(l, c)| (l, c.wall_seconds))
        .collect();
    let mut outcomes = results
        .into_iter()
        .map(|c| c.outcome.expect("simulation cell failed"));

    let mut csv = CsvWriter::new(&[
        "scheduler",
        "mean_jct_hours_healthy",
        "mean_jct_hours_straggling",
        "degradation_percent",
    ]);
    let mut summary = format!(
        "Stragglers: JCT degradation under transient machine slowdowns ({num_jobs} static jobs)\n"
    );

    for kind in SchedulerKind::HEADLINE {
        let healthy = outcomes.next().expect("healthy cell");
        let straggling = outcomes.next().expect("straggling cell");
        assert_eq!(straggling.completed_jobs(), num_jobs, "{}", kind.name());
        let (h, g) = (healthy.mean_jct(), straggling.mean_jct());
        let degradation = (g - h) / h * 100.0;
        csv.row(vec![
            kind.name().to_owned(),
            format!("{:.3}", h / 3600.0),
            format!("{:.3}", g / 3600.0),
            format!("{degradation:.2}"),
        ]);
        summary.push_str(&format!(
            "  {:<9} healthy {:>7.2} h -> straggling {:>7.2} h ({:+.1}%)\n",
            kind.name(),
            h / 3600.0,
            g / 3600.0,
            degradation
        ));
    }

    let path = results_dir().join("stragglers.csv");
    csv.write_to(&path).expect("write stragglers csv");
    FigureResult::new("stragglers", summary, vec![path]).with_timings(timings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_reports_all_schedulers() {
        let r = run(true, &SweepRunner::serial());
        assert_eq!(r.timings.len(), 8);
        let csv = std::fs::read_to_string(&r.csv_paths[0]).unwrap();
        assert_eq!(csv.lines().count(), 5);
        assert!(r.summary.contains("straggling"));
    }
}

//! Machine-failure resilience experiment.
//!
//! Each scheduler runs the same trace on a healthy cluster and then under
//! progressively less reliable machines (decreasing MTBF, fixed MTTR). A
//! failure evicts every job on the dying machine: the round's work is lost,
//! the gang re-queues, and the re-placement pays the checkpoint-restore
//! penalty. We report the JCT degradation along the failure axis together
//! with the eviction count and the GPU-hours of capacity lost to downtime —
//! the failure-model analogue of the straggler experiment.

use hadar_metrics::CsvWriter;
use hadar_sim::{FailureModel, SimResult, SweepRunner};
use hadar_workload::ArrivalPattern;

use crate::experiments::{run_scenario, SchedulerKind};
use crate::figures::{results_dir, FigureResult};
use crate::scenarios::paper_sim_scenario;

/// Mean time to repair, in rounds (30 simulated minutes).
const MTTR_ROUNDS: f64 = 5.0;

/// The MTBF sweep: `None` is the healthy reference, the rest inject
/// failures with the given per-machine mean time between failures (rounds).
fn mtbf_axis(quick: bool) -> Vec<Option<f64>> {
    if quick {
        vec![None, Some(60.0)]
    } else {
        vec![None, Some(240.0), Some(120.0), Some(60.0)]
    }
}

/// Label for one MTBF point.
fn mtbf_label(mtbf: Option<f64>) -> String {
    match mtbf {
        None => "healthy".to_owned(),
        Some(m) => format!("mtbf={m:.0}"),
    }
}

/// Run the failure resilience comparison, fanning the
/// (scheduler × MTBF) cells out over `runner`.
pub fn run(quick: bool, runner: &SweepRunner) -> FigureResult {
    let num_jobs = if quick { 24 } else { 160 };
    let seed = 42;
    let axis = mtbf_axis(quick);

    let mut cells: Vec<Box<dyn FnOnce() -> SimResult + Send>> = Vec::new();
    let mut labels: Vec<String> = Vec::new();
    for kind in SchedulerKind::HEADLINE {
        for &mtbf in &axis {
            labels.push(format!("{} {}", kind.name(), mtbf_label(mtbf)));
            cells.push(Box::new(move || {
                let mut s = paper_sim_scenario(num_jobs, seed, ArrivalPattern::Static);
                s.config.failure = mtbf.map(|m| FailureModel {
                    mtbf_rounds: m,
                    mttr_rounds: MTTR_ROUNDS,
                    seed: 17,
                });
                run_scenario(s.cluster, s.jobs, s.config, kind)
            }));
        }
    }
    let results = runner.run(cells);
    let timings: Vec<(String, f64)> = labels
        .into_iter()
        .zip(&results)
        .map(|(l, c)| (l, c.wall_seconds))
        .collect();
    let mut outcomes = results
        .into_iter()
        .map(|c| c.outcome.expect("simulation cell failed"));

    let mut csv = CsvWriter::new(&[
        "scheduler",
        "mtbf_rounds",
        "mean_jct_hours",
        "jct_degradation_percent",
        "evictions",
        "machine_failures",
        "lost_gpu_hours",
    ]);
    let mut summary = format!(
        "Failures: JCT vs machine MTBF (mttr {MTTR_ROUNDS:.0} rounds, {num_jobs} static jobs)\n"
    );

    for kind in SchedulerKind::HEADLINE {
        let mut healthy_jct = None;
        for &mtbf in &axis {
            let out = outcomes.next().expect("one outcome per cell");
            assert_eq!(out.completed_jobs(), num_jobs, "{}", kind.name());
            let jct = out.mean_jct();
            let h = *healthy_jct.get_or_insert(jct);
            let degradation = (jct - h) / h * 100.0;
            csv.row(vec![
                kind.name().to_owned(),
                mtbf.map_or_else(|| "inf".to_owned(), |m| format!("{m:.0}")),
                format!("{:.3}", jct / 3600.0),
                format!("{degradation:.2}"),
                out.evictions().to_string(),
                out.machine_failures().to_string(),
                format!("{:.2}", out.lost_gpu_seconds() / 3600.0),
            ]);
            summary.push_str(&format!(
                "  {:<9} {:>10}  JCT {:>7.2} h ({:+.1}%), {} evictions, {:.0} GPU-h lost\n",
                kind.name(),
                mtbf_label(mtbf),
                jct / 3600.0,
                degradation,
                out.evictions(),
                out.lost_gpu_seconds() / 3600.0,
            ));
        }
    }

    let path = results_dir().join("failures.csv");
    csv.write_to(&path).expect("write failures csv");
    FigureResult::new("failures", summary, vec![path]).with_timings(timings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_reports_all_schedulers() {
        let r = run(true, &SweepRunner::serial());
        assert_eq!(r.timings.len(), 8);
        let csv = std::fs::read_to_string(&r.csv_paths[0]).unwrap();
        assert_eq!(csv.lines().count(), 9);
        assert!(r.summary.contains("mtbf=60"));
        // The injected-failure rows actually exercised the fault path.
        let evicting_rows = csv
            .lines()
            .skip(1)
            .filter(|l| l.contains(",60,"))
            .filter(|l| {
                let evictions: u64 = l.split(',').nth(4).unwrap().parse().unwrap();
                evictions > 0
            })
            .count();
        assert!(evicting_rows > 0, "no scheduler recorded an eviction");
    }
}

//! Table IV: preemption overhead of Hadar's round-based scheduler per
//! model, with and without reallocation, over a 6-minute round — plus a
//! measured column: the realized overhead observed in a simulation run
//! with the modeled checkpoint costs.

use hadar_metrics::{CsvWriter, Table};
use hadar_sim::{CheckpointModel, PreemptionPenalty, SimResult, SweepRunner};
use hadar_workload::{ArrivalPattern, DlTask};

use crate::experiments::{run_scenario, SchedulerKind};
use crate::figures::{results_dir, FigureResult};
use crate::scenarios::paper_sim_scenario;

/// Regenerate Table IV. The live cross-check run is submitted through
/// `runner` as a single cell.
pub fn run(quick: bool, runner: &SweepRunner) -> FigureResult {
    let model = CheckpointModel::default();
    let round = 360.0;

    let mut table = Table::new(vec!["Model", "Overhead w/ realloc", "Overhead w/o realloc"]);
    let mut csv = CsvWriter::new(&[
        "model",
        "checkpoint_mib",
        "overhead_with_realloc_pct",
        "overhead_without_realloc_pct",
    ]);
    for t in DlTask::ALL {
        let w = model.overhead_percent(t, round, true);
        let wo = model.overhead_percent(t, round, false);
        table.row(vec![
            t.model_name().to_owned(),
            format!("{w:.2}%"),
            format!("{wo:.2}%"),
        ]);
        csv.row(vec![
            t.model_name().to_owned(),
            format!("{}", t.checkpoint_mib()),
            format!("{w:.3}"),
            format!("{wo:.3}"),
        ]);
    }

    // Cross-check with a live run: total stall time / total held time under
    // the modeled penalty.
    let num_jobs = if quick { 20 } else { 120 };
    let cell: Vec<Box<dyn FnOnce() -> SimResult + Send>> = vec![Box::new(move || {
        let mut s = paper_sim_scenario(num_jobs, 5, ArrivalPattern::Static);
        s.config.penalty = PreemptionPenalty::Modeled(model);
        run_scenario(s.cluster, s.jobs, s.config, SchedulerKind::Hadar)
    })];
    let mut results = runner.run(cell);
    let live = results.pop().expect("live cross-check cell");
    let timings = vec![("Hadar live cross-check".to_owned(), live.wall_seconds)];
    let realloc_rate = live
        .outcome
        .expect("simulation cell failed")
        .reallocation_rate();

    let summary = format!(
        "Table IV: preemption overhead per model (6-minute rounds, {} MiB/s effective SSD)\n{}\nLive run: {:.1}% of job-rounds required reallocation (paper §IV-A-5 reports ~30%)\n",
        model.effective_bandwidth_mib_s,
        table.render(),
        realloc_rate * 100.0,
    );
    let path = results_dir().join("table4_overhead.csv");
    csv.write_to(&path).expect("write table4 csv");
    FigureResult::new("table4", summary, vec![path]).with_timings(timings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overheads_match_paper_within_tolerance() {
        let r = run(true, &SweepRunner::serial());
        // Spot-check the headline entries of Table IV.
        let csv = std::fs::read_to_string(&r.csv_paths[0]).unwrap();
        let rn50 = csv
            .lines()
            .find(|l| l.starts_with("ResNet-50"))
            .expect("ResNet-50 row");
        let cols: Vec<&str> = rn50.split(',').collect();
        let with: f64 = cols[2].parse().unwrap();
        let without: f64 = cols[3].parse().unwrap();
        assert!((with - 2.1).abs() < 0.1, "w/ realloc {with}");
        assert!((without - 0.33).abs() < 0.05, "w/o realloc {without}");
    }
}

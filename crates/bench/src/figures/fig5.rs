//! Fig. 5: finish-time fairness (FTF) comparison among Gavel, Tiresias, and
//! Hadar. Lower ρ = fairer/faster than the 1/n-share baseline.

use hadar_metrics::{bar_chart, CsvWriter};
use hadar_sim::{SimResult, SweepRunner};
use hadar_workload::ArrivalPattern;

use crate::experiments::{run_scenario, SchedulerKind};
use crate::figures::{results_dir, FigureResult};
use crate::scenarios::paper_sim_scenario;

/// The schedulers of Fig. 5 (YARN-CS is excluded, as in the paper).
const SCHEDULERS: [SchedulerKind; 3] = [
    SchedulerKind::Hadar,
    SchedulerKind::Gavel,
    SchedulerKind::Tiresias,
];

/// Regenerate Fig. 5, fanning the per-scheduler cells out over `runner`.
pub fn run(quick: bool, runner: &SweepRunner) -> FigureResult {
    let num_jobs = if quick { 40 } else { 480 };
    let seed = 42;

    let cells: Vec<Box<dyn FnOnce() -> SimResult + Send>> = SCHEDULERS
        .into_iter()
        .map(|kind| {
            Box::new(move || {
                let s = paper_sim_scenario(num_jobs, seed, ArrivalPattern::Static);
                run_scenario(s.cluster, s.jobs, s.config, kind)
            }) as Box<dyn FnOnce() -> SimResult + Send>
        })
        .collect();
    let results = runner.run(cells);

    let mut csv = CsvWriter::new(&["scheduler", "mean_ftf", "median_ftf", "p95_ftf", "max_ftf"]);
    let mut dist = CsvWriter::new(&["scheduler", "job_id", "ftf"]);
    let mut summary = format!("Fig. 5: finish-time fairness, {num_jobs} static jobs\n");
    let mut hadar_mean = 0.0;
    let mut timings = Vec::new();

    // Cell order is fixed (Hadar first), so the "(x Hadar)" ratios match a
    // serial run exactly.
    for (kind, cell) in SCHEDULERS.into_iter().zip(results) {
        let out = cell.outcome.expect("simulation cell failed");
        timings.push((out.scheduler.clone(), cell.wall_seconds));
        let stats = out.ftf();
        if kind == SchedulerKind::Hadar {
            hadar_mean = stats.mean;
        }
        csv.row(vec![
            out.scheduler.clone(),
            format!("{:.4}", stats.mean),
            format!("{:.4}", stats.median),
            format!("{:.4}", stats.p95),
            format!("{:.4}", stats.max),
        ]);
        for (i, v) in out.ftf_values().iter().enumerate() {
            dist.row(vec![
                out.scheduler.clone(),
                i.to_string(),
                format!("{v:.5}"),
            ]);
        }
        let vs = if hadar_mean > 0.0 && kind != SchedulerKind::Hadar {
            format!(" ({:.2}x Hadar)", stats.mean / hadar_mean)
        } else {
            String::new()
        };
        summary.push_str(&format!(
            "  {:<9} mean ρ {:.3}{vs} | median {:.3} | p95 {:.3}\n",
            out.scheduler, stats.mean, stats.median, stats.p95
        ));
    }

    let bars: Vec<(String, f64)> = csv
        .as_str()
        .lines()
        .skip(1)
        .map(|l| {
            let mut it = l.split(',');
            let name = it.next().expect("name").to_owned();
            let v: f64 = it.next().expect("mean").parse().expect("number");
            (name, v)
        })
        .collect();
    let bar_refs: Vec<(&str, f64)> = bars.iter().map(|(n, v)| (n.as_str(), *v)).collect();
    summary.push_str("\n  mean FTF rho (lower = fairer):\n");
    for line in bar_chart(&bar_refs, 40).lines() {
        summary.push_str("  ");
        summary.push_str(line);
        summary.push('\n');
    }

    let path = results_dir().join("fig5_ftf.csv");
    let dist_path = results_dir().join("fig5_ftf_distribution.csv");
    csv.write_to(&path).expect("write fig5 csv");
    dist.write_to(&dist_path)
        .expect("write fig5 distribution csv");
    FigureResult::new("fig5", summary, vec![path, dist_path]).with_timings(timings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_excludes_yarn() {
        let r = run(true, &SweepRunner::serial());
        let csv = std::fs::read_to_string(&r.csv_paths[0]).unwrap();
        assert!(!csv.contains("YARN"));
        assert_eq!(csv.lines().count(), 4);
    }
}

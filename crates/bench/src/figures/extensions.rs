//! Extension experiment (beyond the paper): Hadar vs the heterogeneity-aware
//! SRTF baseline.
//!
//! SRTF shares Hadar's job ordering instinct (shortest remaining work
//! first) and type awareness (fastest single type), but has no task-level
//! mixing, no prices, and no payoff-based admission. Comparing the two on
//! (a) the paper's abundant 60-GPU cluster and (b) a *fragmented* cluster
//! of small mixed machines shows where Hadar's remaining machinery earns
//! its keep: under fragmentation SRTF's single-type gangs strand capacity
//! while Hadar's mixed placements keep the cluster packed.

use hadar_cluster::{Cluster, ClusterBuilder};
use hadar_metrics::CsvWriter;
use hadar_sim::{SimResult, SweepRunner};
use hadar_workload::{generate_trace, ArrivalPattern, TraceConfig};

use crate::experiments::{run_scenario, SchedulerKind};
use crate::figures::{results_dir, FigureResult};
use crate::scenarios::paper_sim_scenario;

/// A fragmented heterogeneous cluster: 30 machines with 2 GPUs each,
/// interleaving V100/P100/K80, so any gang ≥ 3 must span machines and
/// same-type contiguity is scarce.
pub fn fragmented_cluster() -> Cluster {
    let mut b = ClusterBuilder::new();
    let v100 = b.gpu_type("V100");
    let p100 = b.gpu_type("P100");
    let k80 = b.gpu_type("K80");
    for i in 0..30 {
        let ty = [v100, p100, k80][i % 3];
        b.machine(&[(ty, 2)]);
    }
    b.build()
}

/// Run the extension comparison, fanning the (cluster × scheduler) cells
/// out over `runner`.
pub fn run(quick: bool, runner: &SweepRunner) -> FigureResult {
    let num_jobs = if quick { 24 } else { 160 };
    let seed = 42;

    let grid: Vec<(&'static str, Cluster, SchedulerKind)> = [
        ("abundant (paper)", Cluster::paper_simulation()),
        ("fragmented (2-GPU nodes)", fragmented_cluster()),
    ]
    .into_iter()
    .flat_map(|(label, cluster)| {
        [SchedulerKind::Hadar, SchedulerKind::Srtf]
            .into_iter()
            .map(move |kind| (label, cluster.clone(), kind))
    })
    .collect();

    let cells: Vec<Box<dyn FnOnce() -> SimResult + Send>> = grid
        .iter()
        .map(|(_, cluster, kind)| {
            let (cluster, kind) = (cluster.clone(), *kind);
            Box::new(move || {
                let jobs = generate_trace(
                    &TraceConfig {
                        num_jobs,
                        seed,
                        pattern: ArrivalPattern::Static,
                    },
                    cluster.catalog(),
                );
                let s = paper_sim_scenario(1, 0, ArrivalPattern::Static); // config template
                run_scenario(cluster, jobs, s.config, kind)
            }) as Box<dyn FnOnce() -> SimResult + Send>
        })
        .collect();
    let results = runner.run(cells);

    let mut csv = CsvWriter::new(&["cluster", "scheduler", "mean_jct_hours", "util"]);
    let mut summary =
        format!("Extension: Hadar vs heterogeneity-aware SRTF ({num_jobs} static jobs)\n");
    let mut timings = Vec::new();

    {
        for ((label, _, kind), cell) in grid.iter().zip(results) {
            let (label, kind) = (*label, *kind);
            let out = cell.outcome.expect("simulation cell failed");
            timings.push((format!("{label} / {}", kind.name()), cell.wall_seconds));
            assert_eq!(out.completed_jobs(), num_jobs, "{label}/{}", kind.name());
            csv.row(vec![
                label.to_owned(),
                out.scheduler.clone(),
                format!("{:.3}", out.mean_jct() / 3600.0),
                format!("{:.4}", out.demand_weighted_utilization()),
            ]);
            summary.push_str(&format!(
                "  {label:<26} {:<6} mean JCT {:>7.2} h | util {:>5.1}%\n",
                out.scheduler,
                out.mean_jct() / 3600.0,
                out.demand_weighted_utilization() * 100.0,
            ));
        }
    }

    let path = results_dir().join("extension_srtf.csv");
    csv.write_to(&path).expect("write extensions csv");
    FigureResult::new("extensions", summary, vec![path]).with_timings(timings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fragmented_cluster_shape() {
        let c = fragmented_cluster();
        assert_eq!(c.num_machines(), 30);
        assert_eq!(c.total_gpus(), 60);
        for r in c.catalog().ids() {
            assert_eq!(c.total_of_type(r), 20);
        }
    }

    #[test]
    fn quick_run_covers_both_clusters() {
        let r = run(true, &SweepRunner::serial());
        let csv = std::fs::read_to_string(&r.csv_paths[0]).unwrap();
        assert_eq!(csv.lines().count(), 5);
        assert!(csv.contains("fragmented"));
        assert!(csv.contains("SRTF"));
    }
}

//! Fig. 7: scheduler decision time ("scaling of our algorithm compared to
//! Gavel") as the number of active jobs grows from 32 to 2048, with the
//! cluster scaled alongside the workload.
//!
//! Each point measures the wall-clock time of a single scheduling round
//! over a fully queued cluster — for Hadar, the dual subroutine; for Gavel,
//! the exact policy LP plus the round-based priority mechanism.
//!
//! This is the one simulation experiment that does *not* go through the
//! [`hadar_sim::SweepRunner`]: its CSV values *are* wall-clock times, and
//! concurrent cells contending for cores would corrupt the measurement, so
//! the cells always run serially. Its CSV is correspondingly excluded from
//! the serial-vs-parallel byte-equality guarantee.

use hadar_baselines::{GavelConfig, GavelScheduler};
use hadar_cluster::Cluster;
use hadar_core::{HadarConfig, HadarScheduler};
use hadar_metrics::CsvWriter;
use hadar_sim::{SimConfig, Simulation};
use hadar_workload::{generate_trace, ArrivalPattern, TraceConfig};

use crate::figures::{results_dir, FigureResult};

/// Cluster used for `n` jobs: grows linearly with the workload
/// (3 GPU types × `n/32` nodes × 4 GPUs ⇒ `3n/8` GPUs).
pub fn scaled_cluster(num_jobs: usize) -> Cluster {
    Cluster::scaled((num_jobs / 32).max(1))
}

/// Measure one scheduling decision for both schedulers at `num_jobs`.
/// Returns `(hadar_seconds, gavel_seconds)`.
pub fn measure(num_jobs: usize, seed: u64) -> (f64, f64) {
    let decision = |kind: Kind| -> f64 {
        let cluster = scaled_cluster(num_jobs);
        let jobs = generate_trace(
            &TraceConfig {
                num_jobs,
                seed,
                pattern: ArrivalPattern::Static,
            },
            cluster.catalog(),
        );
        let config = SimConfig {
            max_rounds: 1,
            ..SimConfig::default()
        };
        let sim = Simulation::new(cluster, jobs, config);
        let out = match kind {
            Kind::Hadar => sim.run(HadarScheduler::new(HadarConfig::default())),
            // Gavel's LP is exact at every scale since the sparse revised
            // simplex replaced the dense tableau (no greedy fallback).
            Kind::Gavel => sim.run(GavelScheduler::new(GavelConfig::default())),
        };
        out.expect("valid scale-probe scenario").rounds[0].decision_seconds
    };
    (decision(Kind::Hadar), decision(Kind::Gavel))
}

enum Kind {
    Hadar,
    Gavel,
}

/// Regenerate Fig. 7.
pub fn run(quick: bool) -> FigureResult {
    let sizes: &[usize] = if quick {
        &[32, 64]
    } else {
        &[32, 64, 128, 256, 512, 1024, 2048]
    };
    let mut csv = CsvWriter::new(&["jobs", "cluster_gpus", "hadar_seconds", "gavel_seconds"]);
    let mut summary = String::from("Fig. 7: scheduling-decision wall time vs active jobs\n");
    for &n in sizes {
        let gpus = scaled_cluster(n).total_gpus();
        let (hadar, gavel) = measure(n, 7);
        csv.row(vec![
            n.to_string(),
            gpus.to_string(),
            format!("{hadar:.6}"),
            format!("{gavel:.6}"),
        ]);
        summary.push_str(&format!(
            "  {n:>5} jobs / {gpus:>4} GPUs: Hadar {:>9.2} ms | Gavel {:>9.2} ms\n",
            hadar * 1e3,
            gavel * 1e3
        ));
    }
    let path = results_dir().join("fig7_scalability.csv");
    csv.write_to(&path).expect("write fig7 csv");
    FigureResult::new("fig7", summary, vec![path])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_scales_with_jobs() {
        assert_eq!(scaled_cluster(32).total_gpus(), 12);
        assert_eq!(scaled_cluster(2048).total_gpus(), 768);
        assert_eq!(scaled_cluster(8).total_gpus(), 12); // floor at scale 1
    }

    #[test]
    fn quick_run_measures_two_sizes() {
        let r = run(true);
        let csv = std::fs::read_to_string(&r.csv_paths[0]).unwrap();
        assert_eq!(csv.lines().count(), 3);
    }
}

//! Table II: the evaluation workload catalog — task, model, dataset, and
//! relative size class — plus the synthetic per-GPU throughputs this
//! reproduction uses in place of Gavel's raw measurements.

use hadar_metrics::{CsvWriter, Table};
use hadar_workload::DlTask;

use crate::figures::{results_dir, FigureResult};

/// Regenerate Table II.
pub fn run(_quick: bool) -> FigureResult {
    let mut table = Table::new(vec![
        "Task",
        "Model",
        "Dataset",
        "Size",
        "V100 it/s",
        "P100 it/s",
        "K80 it/s",
    ]);
    let mut csv = CsvWriter::new(&[
        "task",
        "model",
        "dataset",
        "size_class",
        "v100_its",
        "p100_its",
        "k80_its",
        "checkpoint_mib",
    ]);
    for t in DlTask::ALL {
        let x = |g: &str| t.throughput_on(g).expect("known type");
        table.row(vec![
            t.task_name().to_owned(),
            t.model_name().to_owned(),
            t.dataset().to_owned(),
            t.size_class().label().to_owned(),
            format!("{}", x("V100")),
            format!("{}", x("P100")),
            format!("{}", x("K80")),
        ]);
        csv.row(vec![
            t.task_name().to_owned(),
            t.model_name().to_owned(),
            t.dataset().to_owned(),
            t.size_class().label().to_owned(),
            format!("{}", x("V100")),
            format!("{}", x("P100")),
            format!("{}", x("K80")),
            format!("{}", t.checkpoint_mib()),
        ]);
    }
    let path = results_dir().join("table2_workloads.csv");
    csv.write_to(&path).expect("write table2 csv");
    FigureResult::new(
        "table2",
        format!("Table II: evaluation workloads\n{}", table.render()),
        vec![path],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lists_all_five_models() {
        let r = run(true);
        for m in ["ResNet-50", "ResNet-18", "LSTM", "CycleGAN", "Transformer"] {
            assert!(r.summary.contains(m), "{m} missing");
        }
        let csv = std::fs::read_to_string(&r.csv_paths[0]).unwrap();
        assert_eq!(csv.lines().count(), 6);
    }
}

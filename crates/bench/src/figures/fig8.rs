//! Fig. 8: min / average / max JCT under varying input job rates λ, for
//! Hadar, Gavel, and Tiresias. The min–max band width shows each system's
//! variability under load.

use hadar_metrics::CsvWriter;
use hadar_sim::SweepRunner;
use hadar_workload::ArrivalPattern;

use crate::experiments::{run_scenario, SchedulerKind};
use crate::figures::{results_dir, FigureResult};
use crate::scenarios::paper_sim_scenario;

/// The schedulers of Fig. 8.
const SCHEDULERS: [SchedulerKind; 3] = [
    SchedulerKind::Hadar,
    SchedulerKind::Gavel,
    SchedulerKind::Tiresias,
];

/// Regenerate Fig. 8, fanning the (scheduler × rate × seed) cells out over
/// `runner`.
pub fn run(quick: bool, runner: &SweepRunner) -> FigureResult {
    let (num_jobs, rates, seeds): (usize, &[f64], &[u64]) = if quick {
        (30, &[60.0], &[1])
    } else {
        (240, &[30.0, 45.0, 60.0, 75.0, 90.0], &[1, 2, 3])
    };

    let mut tasks: Vec<Box<dyn FnOnce() -> hadar_sim::SimResult + Send>> = Vec::new();
    let mut index: Vec<(SchedulerKind, f64)> = Vec::new();
    let mut labels: Vec<String> = Vec::new();
    for kind in SCHEDULERS {
        for &rate in rates {
            for &seed in seeds {
                let pattern = ArrivalPattern::Poisson {
                    jobs_per_hour: rate,
                };
                index.push((kind, rate));
                labels.push(format!("{} λ={rate}/h seed {seed}", kind.name()));
                tasks.push(Box::new(move || {
                    let s = paper_sim_scenario(num_jobs, seed, pattern);
                    run_scenario(s.cluster, s.jobs, s.config, kind)
                }));
            }
        }
    }
    let results = runner.run(tasks);
    let timings: Vec<(String, f64)> = labels
        .into_iter()
        .zip(&results)
        .map(|(l, c)| (l, c.wall_seconds))
        .collect();
    let outcomes: Vec<hadar_sim::SimOutcome> = results
        .into_iter()
        .map(|c| c.outcome.expect("simulation cell failed"))
        .collect();

    let mut csv = CsvWriter::new(&[
        "scheduler",
        "jobs_per_hour",
        "min_jct_hours",
        "mean_jct_hours",
        "max_jct_hours",
    ]);
    let mut summary = format!("Fig. 8: JCT range vs input job rate ({num_jobs} jobs/run)\n");
    for kind in SCHEDULERS {
        for &rate in rates {
            // Pool JCTs across the seeds of this (scheduler, rate) cell.
            let mut jcts: Vec<f64> = Vec::new();
            for (o, &(k, r)) in outcomes.iter().zip(&index) {
                if k == kind && r == rate {
                    jcts.extend(o.jcts());
                }
            }
            let stats = hadar_metrics::SummaryStats::of(&jcts);
            csv.row(vec![
                kind.name().to_owned(),
                format!("{rate}"),
                format!("{:.3}", stats.min / 3600.0),
                format!("{:.3}", stats.mean / 3600.0),
                format!("{:.3}", stats.max / 3600.0),
            ]);
            summary.push_str(&format!(
                "  {:<9} λ={rate:>4.0}/h: min {:>7.2} h | mean {:>7.2} h | max {:>8.2} h\n",
                kind.name(),
                stats.min / 3600.0,
                stats.mean / 3600.0,
                stats.max / 3600.0
            ));
        }
    }

    let path = results_dir().join("fig8_jct_vs_rate.csv");
    csv.write_to(&path).expect("write fig8 csv");
    FigureResult::new("fig8", summary, vec![path]).with_timings(timings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_covers_three_schedulers() {
        let r = run(true, &SweepRunner::serial());
        let csv = std::fs::read_to_string(&r.csv_paths[0]).unwrap();
        assert_eq!(csv.lines().count(), 4); // header + 3 schedulers × 1 rate
    }
}

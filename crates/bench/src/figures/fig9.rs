//! Fig. 9: impact of the scheduling-round length (6 → 48 minutes) on
//! Hadar's average JCT as the input job rate grows. Short rounds give more
//! optimal allocations but more checkpoint overhead; long rounds add
//! queuing delay and allocation drift.

use hadar_metrics::CsvWriter;
use hadar_sim::SweepRunner;
use hadar_workload::ArrivalPattern;

use crate::experiments::{run_scenario, SchedulerKind};
use crate::figures::{results_dir, FigureResult};
use crate::scenarios::paper_sim_scenario;

/// Regenerate Fig. 9, fanning the (round length × rate) cells out over
/// `runner`.
pub fn run(quick: bool, runner: &SweepRunner) -> FigureResult {
    let (num_jobs, round_minutes, rates): (usize, &[f64], &[f64]) = if quick {
        (30, &[6.0, 48.0], &[60.0])
    } else {
        (
            240,
            &[6.0, 12.0, 24.0, 48.0],
            &[30.0, 45.0, 60.0, 75.0, 90.0],
        )
    };
    let seed = 11;

    let mut tasks: Vec<Box<dyn FnOnce() -> hadar_sim::SimResult + Send>> = Vec::new();
    let mut index: Vec<(f64, f64)> = Vec::new();
    for &rm in round_minutes {
        for &rate in rates {
            index.push((rm, rate));
            tasks.push(Box::new(move || {
                let mut s = paper_sim_scenario(
                    num_jobs,
                    seed,
                    ArrivalPattern::Poisson {
                        jobs_per_hour: rate,
                    },
                );
                s.config.round_length = rm * 60.0;
                run_scenario(s.cluster, s.jobs, s.config, SchedulerKind::Hadar)
            }));
        }
    }
    let results = runner.run(tasks);
    let timings: Vec<(String, f64)> = index
        .iter()
        .zip(&results)
        .map(|(&(rm, rate), c)| (format!("round {rm} min λ={rate}/h"), c.wall_seconds))
        .collect();
    let outcomes: Vec<hadar_sim::SimOutcome> = results
        .into_iter()
        .map(|c| c.outcome.expect("simulation cell failed"))
        .collect();

    let mut csv = CsvWriter::new(&["round_minutes", "jobs_per_hour", "mean_jct_hours"]);
    let mut summary = format!("Fig. 9: Hadar avg JCT vs round length ({num_jobs} jobs/run)\n");
    for (o, &(rm, rate)) in outcomes.iter().zip(&index) {
        assert_eq!(o.completed_jobs(), num_jobs, "round {rm} min λ={rate}");
        csv.row(vec![
            format!("{rm}"),
            format!("{rate}"),
            format!("{:.3}", o.mean_jct() / 3600.0),
        ]);
        summary.push_str(&format!(
            "  round {rm:>4.0} min, λ={rate:>4.0}/h: mean JCT {:>7.2} h\n",
            o.mean_jct() / 3600.0
        ));
    }

    let path = results_dir().join("fig9_round_length.csv");
    csv.write_to(&path).expect("write fig9 csv");
    FigureResult::new("fig9", summary, vec![path]).with_timings(timings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_sweeps_round_lengths() {
        let r = run(true, &SweepRunner::serial());
        let csv = std::fs::read_to_string(&r.csv_paths[0]).unwrap();
        assert_eq!(csv.lines().count(), 3); // header + 2 rounds × 1 rate
        assert!(r.summary.contains("round"));
    }
}

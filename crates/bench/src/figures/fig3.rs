//! Fig. 3: cumulative fraction of jobs completed along the timeline, for the
//! static (3a) and continuous (3b) traces, under all four schedulers.

use hadar_metrics::{line_chart, CsvWriter};
use hadar_sim::{SimResult, SweepRunner};
use hadar_workload::ArrivalPattern;

use crate::experiments::{run_scenario, SchedulerKind};
use crate::figures::{ratio, results_dir, FigureResult};
use crate::scenarios::paper_sim_scenario;

/// Which of the two Fig. 3 panels to regenerate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Panel {
    /// Fig. 3a: all 480 jobs available at t = 0.
    Static,
    /// Fig. 3b: Poisson arrivals at λ = 60 jobs/hour.
    Continuous,
}

impl Panel {
    fn pattern(self) -> ArrivalPattern {
        match self {
            Panel::Static => ArrivalPattern::Static,
            Panel::Continuous => ArrivalPattern::paper_continuous(),
        }
    }
    fn label(self) -> &'static str {
        match self {
            Panel::Static => "static",
            Panel::Continuous => "continuous",
        }
    }
}

/// Regenerate one panel of Fig. 3, fanning the per-scheduler cells out over
/// `runner`.
pub fn run(panel: Panel, quick: bool, runner: &SweepRunner) -> FigureResult {
    let num_jobs = if quick { 40 } else { 480 };
    let seed = 42;

    let cells: Vec<Box<dyn FnOnce() -> SimResult + Send>> = SchedulerKind::HEADLINE
        .into_iter()
        .map(|kind| {
            Box::new(move || {
                let s = paper_sim_scenario(num_jobs, seed, panel.pattern());
                run_scenario(s.cluster, s.jobs, s.config, kind)
            }) as Box<dyn FnOnce() -> SimResult + Send>
        })
        .collect();
    let results = runner.run(cells);

    let mut csv = CsvWriter::new(&["scheduler", "time_hours", "fraction_completed"]);
    let mut summary = format!("Fig. 3 ({}): {num_jobs} jobs, seed {seed}\n", panel.label());
    let mut hadar_mean = 0.0;
    let mut hadar_median = 0.0;
    let mut cdf_series: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
    let mut timings = Vec::new();

    // Consume results in cell order so the ratios against Hadar (always the
    // first cell) and the CSV stay identical to a serial run.
    for (kind, cell) in SchedulerKind::HEADLINE.into_iter().zip(results) {
        let out = cell.outcome.expect("simulation cell failed");
        timings.push((out.scheduler.clone(), cell.wall_seconds));
        assert_eq!(
            out.completed_jobs(),
            num_jobs,
            "{} run incomplete",
            out.scheduler
        );
        let cdf = out.completion_cdf();
        for &(t, frac) in &cdf {
            csv.row(vec![
                out.scheduler.clone(),
                format!("{:.4}", t / 3600.0),
                format!("{frac:.5}"),
            ]);
        }
        cdf_series.push((
            out.scheduler.clone(),
            cdf.into_iter().map(|(t, f)| (t / 3600.0, f)).collect(),
        ));
        let m = out.metrics();
        if kind == SchedulerKind::Hadar {
            hadar_mean = m.mean;
            hadar_median = m.median;
        }
        summary.push_str(&format!(
            "  {:<9} mean JCT {:>8.2} h ({}), median {:>8.2} h ({})\n",
            out.scheduler,
            m.mean / 3600.0,
            ratio(hadar_mean, m.mean),
            m.median / 3600.0,
            ratio(hadar_median, m.median),
        ));
    }

    let series: Vec<(&str, &[(f64, f64)])> = cdf_series
        .iter()
        .map(|(n, s)| (n.as_str(), s.as_slice()))
        .collect();
    summary.push_str("\n  fraction completed vs time (hours):\n");
    for line in line_chart(&series, 64, 12).lines() {
        summary.push_str("  ");
        summary.push_str(line);
        summary.push('\n');
    }

    let path = results_dir().join(format!("fig3_{}.csv", panel.label()));
    csv.write_to(&path).expect("write fig3 csv");
    FigureResult::new(&format!("fig3_{}", panel.label()), summary, vec![path]).with_timings(timings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_static_panel_runs() {
        let r = run(Panel::Static, true, &SweepRunner::serial());
        assert_eq!(r.timings.len(), 4);
        assert!(r.summary.contains("Hadar"));
        assert!(r.csv_paths[0].exists());
        let csv = std::fs::read_to_string(&r.csv_paths[0]).unwrap();
        assert!(csv.lines().count() > 4 * 10, "CDF series too short");
        assert!(csv.contains("YARN-CS"));
    }
}

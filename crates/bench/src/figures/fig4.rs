//! Fig. 4: cluster-wide GPU utilization comparison across the four
//! schedulers.
//!
//! The paper reports one bar per scheduler; its prose attributes YARN-CS's
//! lead to non-preemption (held GPUs never stall) and Gavel/Tiresias's
//! deficit to *unused* heterogeneous GPUs. Those are two different
//! denominators, so we report both decompositions:
//!
//! * `demand_weighted` — useful compute over capacity that had demand
//!   (captures "GPUs idle although jobs wait"),
//! * `held_time` — useful compute over GPU-time held by jobs (captures
//!   checkpoint stalls and synchronization-barrier straggling; ≈1.0 for
//!   YARN-CS by construction).

use hadar_metrics::{bar_chart, CsvWriter};
use hadar_sim::{SimResult, SweepRunner};
use hadar_workload::ArrivalPattern;

use crate::experiments::{run_scenario, SchedulerKind};
use crate::figures::{results_dir, FigureResult};
use crate::scenarios::paper_sim_scenario;

/// Regenerate Fig. 4, fanning the per-scheduler cells out over `runner`.
pub fn run(quick: bool, runner: &SweepRunner) -> FigureResult {
    let num_jobs = if quick { 40 } else { 480 };
    let seed = 42;

    let cells: Vec<Box<dyn FnOnce() -> SimResult + Send>> = SchedulerKind::HEADLINE
        .into_iter()
        .map(|kind| {
            Box::new(move || {
                let s = paper_sim_scenario(num_jobs, seed, ArrivalPattern::Static);
                run_scenario(s.cluster, s.jobs, s.config, kind)
            }) as Box<dyn FnOnce() -> SimResult + Send>
        })
        .collect();
    let results = runner.run(cells);

    let mut csv = CsvWriter::new(&[
        "scheduler",
        "demand_weighted_utilization",
        "held_time_utilization",
        "cluster_wide_utilization",
    ]);
    let mut summary = format!("Fig. 4: GPU utilization, {num_jobs} static jobs, seed {seed}\n");
    let mut timings = Vec::new();

    for cell in results {
        let out = cell.outcome.expect("simulation cell failed");
        timings.push((out.scheduler.clone(), cell.wall_seconds));
        let (dw, ht, cw) = (
            out.demand_weighted_utilization(),
            out.held_utilization(),
            out.gpu_utilization(),
        );
        csv.row(vec![
            out.scheduler.clone(),
            format!("{dw:.4}"),
            format!("{ht:.4}"),
            format!("{cw:.4}"),
        ]);
        summary.push_str(&format!(
            "  {:<9} demand-weighted {:>5.1}% | held-time {:>5.1}% | cluster-wide {:>5.1}%\n",
            out.scheduler,
            dw * 100.0,
            ht * 100.0,
            cw * 100.0
        ));
    }

    // Bar view of the headline (demand-weighted) metric.
    let bars: Vec<(&str, f64)> = SchedulerKind::HEADLINE
        .iter()
        .zip(csv.as_str().lines().skip(1))
        .map(|(k, line)| {
            let v: f64 = line
                .split(',')
                .nth(1)
                .expect("column")
                .parse()
                .expect("number");
            (k.name(), v * 100.0)
        })
        .collect();
    summary.push('\n');
    for line in bar_chart(&bars, 40).lines() {
        summary.push_str("  ");
        summary.push_str(line);
        summary.push('\n');
    }

    let path = results_dir().join("fig4_utilization.csv");
    csv.write_to(&path).expect("write fig4 csv");
    FigureResult::new("fig4", summary, vec![path]).with_timings(timings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_all_rows() {
        let r = run(true, &SweepRunner::serial());
        let csv = std::fs::read_to_string(&r.csv_paths[0]).unwrap();
        assert_eq!(csv.lines().count(), 5); // header + 4 schedulers
        for name in ["Hadar", "Gavel", "Tiresias", "YARN-CS"] {
            assert!(csv.contains(name), "{name} missing");
        }
    }
}

//! Fig. 6: makespan comparison among Gavel, Tiresias, and Hadar, with Hadar
//! "flexibly specifying its scheduling policy towards makespan
//! minimization" (the [`hadar_core::MinMakespan`] utility).

use hadar_metrics::{bar_chart, CsvWriter};
use hadar_sim::{SimResult, SweepRunner};
use hadar_workload::ArrivalPattern;

use crate::experiments::{run_scenario, SchedulerKind};
use crate::figures::{results_dir, FigureResult};
use crate::scenarios::paper_sim_scenario;

/// Regenerate Fig. 6, fanning the per-scheduler cells out over `runner`.
pub fn run(quick: bool, runner: &SweepRunner) -> FigureResult {
    let num_jobs = if quick { 40 } else { 480 };
    let seed = 42;

    let schedulers = [
        SchedulerKind::HadarMakespan,
        SchedulerKind::Gavel,
        SchedulerKind::Tiresias,
    ];
    let cells: Vec<Box<dyn FnOnce() -> SimResult + Send>> = schedulers
        .into_iter()
        .map(|kind| {
            Box::new(move || {
                let s = paper_sim_scenario(num_jobs, seed, ArrivalPattern::Static);
                run_scenario(s.cluster, s.jobs, s.config, kind)
            }) as Box<dyn FnOnce() -> SimResult + Send>
        })
        .collect();
    let results = runner.run(cells);

    let mut csv = CsvWriter::new(&["scheduler", "makespan_hours"]);
    let mut summary = format!("Fig. 6: makespan, {num_jobs} static jobs\n");
    let mut hadar_makespan = 0.0;
    let mut timings = Vec::new();

    // Hadar (makespan) is always the first cell, so the "(x Hadar)" ratios
    // match a serial run exactly.
    for (kind, cell) in schedulers.into_iter().zip(results) {
        let out = cell.outcome.expect("simulation cell failed");
        timings.push((out.scheduler.clone(), cell.wall_seconds));
        let makespan = out.makespan();
        if kind == SchedulerKind::HadarMakespan {
            hadar_makespan = makespan;
        }
        csv.row(vec![
            out.scheduler.clone(),
            format!("{:.3}", makespan / 3600.0),
        ]);
        let vs = if hadar_makespan > 0.0 && kind != SchedulerKind::HadarMakespan {
            format!(" ({:.2}x Hadar)", makespan / hadar_makespan)
        } else {
            String::new()
        };
        summary.push_str(&format!(
            "  {:<16} makespan {:>8.2} h{vs}\n",
            out.scheduler,
            makespan / 3600.0
        ));
    }

    let bars: Vec<(String, f64)> = csv
        .as_str()
        .lines()
        .skip(1)
        .map(|l| {
            let mut it = l.split(',');
            let name = it.next().expect("name").to_owned();
            let v: f64 = it.next().expect("makespan").parse().expect("number");
            (name, v)
        })
        .collect();
    let bar_refs: Vec<(&str, f64)> = bars.iter().map(|(n, v)| (n.as_str(), *v)).collect();
    summary.push_str("\n  makespan (hours):\n");
    for line in bar_chart(&bar_refs, 40).lines() {
        summary.push_str("  ");
        summary.push_str(line);
        summary.push('\n');
    }

    let path = results_dir().join("fig6_makespan.csv");
    csv.write_to(&path).expect("write fig6 csv");
    FigureResult::new("fig6", summary, vec![path]).with_timings(timings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_uses_makespan_objective() {
        let r = run(true, &SweepRunner::serial());
        assert!(r.summary.contains("Hadar (makespan)"));
        let csv = std::fs::read_to_string(&r.csv_paths[0]).unwrap();
        assert_eq!(csv.lines().count(), 4);
    }
}

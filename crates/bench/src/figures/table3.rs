//! Table III: JCT and makespan for Hadar / Gavel / Tiresias on the 8-GPU
//! AWS prototype workload, in "physical" and "simulated" configurations.
//!
//! Substitution note (DESIGN.md §6): we have no AWS testbed, so the
//! "physical cluster" row is reproduced with the *calibrated* cost models —
//! per-model checkpoint save/load/re-init times (Table IV's model) and the
//! cross-server communication penalty — while the "simulated cluster" row
//! uses the paper's own simulator settings (flat 10-second reallocation
//! delay). The paper validates its simulator against the testbed within
//! 10 %; we reproduce that claim as the gap between these two rows.

use hadar_metrics::{CsvWriter, Table};
use hadar_sim::{CheckpointModel, PreemptionPenalty, SimResult, SweepRunner};

use crate::experiments::{run_scenario, SchedulerKind};
use crate::figures::{results_dir, FigureResult};
use crate::scenarios::aws_prototype_scenario;

const SCHEDULERS: [SchedulerKind; 3] = [
    SchedulerKind::Hadar,
    SchedulerKind::Gavel,
    SchedulerKind::Tiresias,
];

/// Regenerate Table III, fanning the (cluster mode × scheduler) cells out
/// over `runner`.
pub fn run(_quick: bool, runner: &SweepRunner) -> FigureResult {
    let grid: Vec<(bool, SchedulerKind)> = [true, false]
        .into_iter()
        .flat_map(|physical| SCHEDULERS.into_iter().map(move |kind| (physical, kind)))
        .collect();
    let sim_cells: Vec<Box<dyn FnOnce() -> SimResult + Send>> = grid
        .iter()
        .map(|&(physical, kind)| {
            Box::new(move || {
                let mut s = aws_prototype_scenario(0);
                if physical {
                    s.config.penalty = PreemptionPenalty::Modeled(CheckpointModel::default());
                }
                run_scenario(s.cluster, s.jobs, s.config, kind)
            }) as Box<dyn FnOnce() -> SimResult + Send>
        })
        .collect();
    let results = runner.run(sim_cells);

    let mut table = Table::new(vec!["Cluster", "Metric", "Hadar", "Gavel", "Tiresias"]);
    let mut csv = CsvWriter::new(&["cluster", "scheduler", "mean_jct_hours", "makespan_hours"]);
    let mut timings = Vec::new();

    // One row group per cluster mode: (label, per-scheduler (name, jct, makespan)).
    type ClusterRow = (String, Vec<(String, f64, f64)>);
    let mut rows: Vec<ClusterRow> = Vec::new();
    let mut outcomes = grid.iter().zip(results);
    for physical in [true, false] {
        let label = if physical {
            "Physical (modeled)"
        } else {
            "Simulated"
        };
        let mut cells = Vec::new();
        for _ in SCHEDULERS {
            let (_, cell) = outcomes.next().expect("one outcome per grid cell");
            let out = cell.outcome.expect("simulation cell failed");
            timings.push((format!("{label} / {}", out.scheduler), cell.wall_seconds));
            assert_eq!(out.completed_jobs(), 10, "{}", out.scheduler);
            let jct = out.mean_jct() / 3600.0;
            let makespan = out.makespan() / 3600.0;
            csv.row(vec![
                label.to_owned(),
                out.scheduler.clone(),
                format!("{jct:.3}"),
                format!("{makespan:.3}"),
            ]);
            cells.push((out.scheduler.clone(), jct, makespan));
        }
        rows.push((label.to_owned(), cells));
    }

    for (label, cells) in &rows {
        table.row(vec![
            label.clone(),
            "JCT (h)".to_owned(),
            format!("{:.2}", cells[0].1),
            format!("{:.2}", cells[1].1),
            format!("{:.2}", cells[2].1),
        ]);
        table.row(vec![
            label.clone(),
            "Makespan (h)".to_owned(),
            format!("{:.2}", cells[0].2),
            format!("{:.2}", cells[1].2),
            format!("{:.2}", cells[2].2),
        ]);
    }
    // The paper's simulator-vs-testbed agreement claim: JCT within 10 %.
    let gap = (rows[0].1[0].1 - rows[1].1[0].1).abs() / rows[1].1[0].1.max(1e-9) * 100.0;
    let summary = format!(
        "Table III: AWS prototype workload (10 jobs, 8 GPUs)\n{}\nHadar JCT gap physical-vs-simulated: {gap:.1}%\n",
        table.render()
    );

    let path = results_dir().join("table3_prototype.csv");
    csv.write_to(&path).expect("write table3 csv");
    FigureResult::new("table3", summary, vec![path]).with_timings(timings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_both_cluster_rows() {
        let r = run(true, &SweepRunner::serial());
        assert!(r.summary.contains("Physical (modeled)"));
        assert!(r.summary.contains("Simulated"));
        let csv = std::fs::read_to_string(&r.csv_paths[0]).unwrap();
        assert_eq!(csv.lines().count(), 7); // header + 2 clusters × 3 schedulers
    }
}

//! One module per table/figure of the paper's evaluation section.
//!
//! Every experiment writes its data series as CSV under [`results_dir`] and
//! returns a [`FigureResult`] with a human-readable summary (the numbers
//! recorded in EXPERIMENTS.md). Experiments accept a `quick` flag used by
//! integration tests: it shrinks job counts and seed counts but exercises
//! identical code paths.
//!
//! Experiments that run simulations take a [`hadar_sim::SweepRunner`] and
//! submit every independent simulation *cell* (scheduler × seed × pattern ×
//! config) through it. Results are always consumed in original cell order,
//! so the CSVs and summaries are byte-identical whatever the thread count;
//! per-cell wall-clock times land in [`FigureResult::timings`]. Two modules
//! deliberately bypass the runner: [`table2`] runs no simulations, and
//! [`fig7`] measures scheduler decision *wall time*, which concurrent cells
//! would corrupt.

pub mod ablation;
pub mod extensions;
pub mod failures;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod stragglers;
pub mod table2;
pub mod table3;
pub mod table4;

use std::path::PathBuf;

pub use crate::experiments::results_dir;

/// The outcome of regenerating one figure or table.
#[derive(Debug, Clone)]
pub struct FigureResult {
    /// Identifier ("fig3", "table4", …).
    pub name: String,
    /// Human-readable summary block (also printed by the binaries).
    pub summary: String,
    /// CSV files written.
    pub csv_paths: Vec<PathBuf>,
    /// Per-cell wall-clock times `(cell label, seconds)` as reported by the
    /// sweep runner. Empty for experiments without simulation cells.
    pub timings: Vec<(String, f64)>,
}

impl FigureResult {
    pub(crate) fn new(name: &str, summary: String, csv_paths: Vec<PathBuf>) -> Self {
        Self {
            name: name.to_owned(),
            summary,
            csv_paths,
            timings: Vec::new(),
        }
    }

    /// Attach per-cell wall-clock timings from a sweep.
    pub(crate) fn with_timings(mut self, timings: Vec<(String, f64)>) -> Self {
        self.timings = timings;
        self
    }

    /// Render the per-cell wall-clock report (empty when no cells ran).
    pub fn render_timings(&self) -> String {
        if self.timings.is_empty() {
            return String::new();
        }
        let total: f64 = self.timings.iter().map(|(_, s)| s).sum();
        let mut out = format!(
            "  cell wall-clock ({} cells, {total:.2}s of simulation):\n",
            self.timings.len()
        );
        for (label, secs) in &self.timings {
            out.push_str(&format!("    {label:<42} {secs:>8.2}s\n"));
        }
        out
    }
}

/// Print one figure's summary, per-cell wall-clock report, and CSV paths —
/// the shared tail of every experiment binary.
pub fn print_report(r: &FigureResult) {
    println!("{}", r.summary);
    print!("{}", r.render_timings());
    for path in &r.csv_paths {
        println!("  wrote {}", path.display());
    }
}

/// Format a ratio against Hadar ("2.41x").
pub(crate) fn ratio(ours: f64, theirs: f64) -> String {
    if ours <= 0.0 {
        return "n/a".to_owned();
    }
    format!("{:.2}x", theirs / ours)
}

//! One module per table/figure of the paper's evaluation section.
//!
//! Every experiment writes its data series as CSV under [`results_dir`] and
//! returns a [`FigureResult`] with a human-readable summary (the numbers
//! recorded in EXPERIMENTS.md). Experiments accept a `quick` flag used by
//! integration tests: it shrinks job counts and seed counts but exercises
//! identical code paths.

pub mod ablation;
pub mod extensions;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod stragglers;
pub mod table2;
pub mod table3;
pub mod table4;

use std::path::PathBuf;

pub use crate::experiments::results_dir;

/// The outcome of regenerating one figure or table.
#[derive(Debug, Clone)]
pub struct FigureResult {
    /// Identifier ("fig3", "table4", …).
    pub name: String,
    /// Human-readable summary block (also printed by the binaries).
    pub summary: String,
    /// CSV files written.
    pub csv_paths: Vec<PathBuf>,
}

impl FigureResult {
    pub(crate) fn new(name: &str, summary: String, csv_paths: Vec<PathBuf>) -> Self {
        Self {
            name: name.to_owned(),
            summary,
            csv_paths,
        }
    }
}

/// Number of worker threads for simulation sweeps.
pub(crate) fn sweep_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16)
}

/// Format a ratio against Hadar ("2.41x").
pub(crate) fn ratio(ours: f64, theirs: f64) -> String {
    if ours <= 0.0 {
        return "n/a".to_owned();
    }
    format!("{:.2}x", theirs / ours)
}

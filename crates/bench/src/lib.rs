#![warn(missing_docs)]

//! # hadar-bench
//!
//! The experiment harness: everything needed to regenerate every table and
//! figure of the paper's evaluation section (see DESIGN.md §7 for the
//! experiment index and EXPERIMENTS.md for paper-vs-measured results).
//!
//! Each figure/table has a dedicated binary (`cargo run --release -p
//! hadar-bench --bin fig3`, …); `--bin all_experiments` runs the whole
//! suite and writes CSV series under `results/`.

pub mod experiments;
pub mod figures;
pub mod scenarios;

pub use experiments::{run_scenario, run_scenario_with_telemetry, runner_from_cli, SchedulerKind};
pub use scenarios::{paper_sim_scenario, Scenario};

//! Empirical check of the Theorem 2 machinery on concrete scheduling
//! rounds: for a range of queue sizes and seeds, audit the primal/dual
//! objectives and the allocation-cost relationship (see
//! `hadar_core::theory`). A margin ≥ 1.0 means the `2α` guarantee held.

use hadar_cluster::{Cluster, CommCostModel};
use hadar_core::find_alloc::AllocEnv;
use hadar_core::{audit_round, EffectiveThroughput, PriceState};
use hadar_sim::JobState;
use hadar_workload::{generate_trace, ArrivalPattern, TraceConfig};

fn main() {
    println!("Theorem 2 empirical audit (greedy dual subroutine, paper cluster)\n");
    println!(
        "{:>6} {:>6} {:>10} {:>12} {:>12} {:>8} {:>10} {:>10}",
        "queue", "seed", "admitted", "primal", "dual", "alpha", "margin", "ac-ratio"
    );
    let cluster = Cluster::paper_simulation();
    let comm = CommCostModel::default();
    let mut worst_margin = f64::INFINITY;
    for &n in &[4usize, 8, 16, 32, 64, 128] {
        for seed in 0..4u64 {
            let jobs = generate_trace(
                &TraceConfig {
                    num_jobs: n,
                    seed,
                    pattern: ArrivalPattern::Static,
                },
                cluster.catalog(),
            );
            let states: Vec<JobState> = jobs.into_iter().map(JobState::new).collect();
            let prices = PriceState::compute(&states, &cluster, &EffectiveThroughput, 0.0);
            let env = AllocEnv {
                cluster: &cluster,
                comm: &comm,
                prices: &prices,
                utility: &EffectiveThroughput,
                now: 0.0,
                realloc_stall: 10.0,
                features: Default::default(),
                machine_factors: &[],
                round_threads: 1,
            };
            let queue: Vec<&JobState> = states.iter().collect();
            let a = audit_round(&queue, &env, &prices);
            worst_margin = worst_margin.min(a.guarantee_margin);
            println!(
                "{n:>6} {seed:>6} {:>10} {:>12.3} {:>12.3} {:>8.3} {:>10.3} {:>10.3}",
                a.admitted,
                a.primal,
                a.dual,
                a.alpha,
                a.guarantee_margin,
                a.worst_allocation_cost_ratio,
            );
        }
    }
    println!("\nworst 2α-guarantee margin observed: {worst_margin:.3} (>= 1.0 required)");
    assert!(worst_margin >= 1.0, "Theorem 2 guarantee violated!");
}

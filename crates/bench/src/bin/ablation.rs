//! Run the Hadar design-choice ablation grid. Pass `--quick` for a
//! reduced-size run.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let r = hadar_bench::figures::ablation::run(quick);
    println!("{}", r.summary);
    for path in r.csv_paths {
        println!("  wrote {}", path.display());
    }
}

//! Regenerate Table2 of the paper. Pass `--quick` for a reduced-size run.
//! Table II runs no simulations, so `--threads` does not apply.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let r = hadar_bench::figures::table2::run(quick);
    hadar_bench::figures::print_report(&r);
}

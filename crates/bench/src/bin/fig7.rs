//! Regenerate Fig7 of the paper. Pass `--quick` for a reduced-size run.
//! Fig. 7 measures scheduler decision wall time, so its cells always run
//! serially (`--threads` does not apply).

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let r = hadar_bench::figures::fig7::run(quick);
    hadar_bench::figures::print_report(&r);
}

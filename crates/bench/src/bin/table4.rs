//! Regenerate Table4 of the paper. Pass `--quick` for a reduced-size run.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let r = hadar_bench::figures::table4::run(quick);
    println!("{}", r.summary);
    for path in r.csv_paths {
        println!("  wrote {}", path.display());
    }
}

//! Regenerate Fig. 3 (completed-jobs CDF). Usage:
//! `fig3 [static|continuous] [--quick] [--threads N]`
//! (default: both panels, full size).

use hadar_bench::figures::fig3::{run, Panel};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let runner = hadar_bench::runner_from_cli(&args);
    let panels: Vec<Panel> = if args.iter().any(|a| a == "static") {
        vec![Panel::Static]
    } else if args.iter().any(|a| a == "continuous") {
        vec![Panel::Continuous]
    } else {
        vec![Panel::Static, Panel::Continuous]
    };
    for p in panels {
        let r = run(p, quick, &runner);
        hadar_bench::figures::print_report(&r);
    }
}

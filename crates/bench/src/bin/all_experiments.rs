//! Regenerate every table and figure of the paper's evaluation section and
//! print the consolidated summary (the source of EXPERIMENTS.md's
//! "measured" columns). CSV series land under `results/`.
//!
//! Usage: `all_experiments [--quick]`.

use hadar_bench::figures;
use hadar_bench::figures::fig3::Panel;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let t0 = std::time::Instant::now();
    let results = vec![
        figures::table2::run(quick),
        figures::fig3::run(Panel::Static, quick),
        figures::fig3::run(Panel::Continuous, quick),
        figures::fig4::run(quick),
        figures::fig5::run(quick),
        figures::fig6::run(quick),
        figures::fig7::run(quick),
        figures::fig8::run(quick),
        figures::fig9::run(quick),
        figures::table3::run(quick),
        figures::table4::run(quick),
        figures::ablation::run(quick),
        figures::stragglers::run(quick),
        figures::extensions::run(quick),
    ];
    println!("==============================================================");
    for r in &results {
        println!("--- {} ---", r.name);
        println!("{}", r.summary);
        for p in &r.csv_paths {
            println!("  wrote {}", p.display());
        }
        println!();
    }
    println!(
        "all {} experiments regenerated in {:?}",
        results.len(),
        t0.elapsed()
    );
}

//! Regenerate every table and figure of the paper's evaluation section and
//! print the consolidated summary (the source of EXPERIMENTS.md's
//! "measured" columns). CSV series land under `results/`.
//!
//! Usage: `all_experiments [--quick] [--threads N]`.
//!
//! Every simulation cell of every experiment is submitted through one
//! shared [`hadar_sim::SweepRunner`]; `--threads 1` gives the strict serial
//! reference run, and any thread count produces byte-identical CSVs (except
//! `fig7_scalability.csv`, whose values *are* wall-clock measurements).

use hadar_bench::figures;
use hadar_bench::figures::fig3::Panel;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let runner = hadar_bench::runner_from_cli(&args);
    let t0 = std::time::Instant::now();
    let results = vec![
        figures::table2::run(quick),
        figures::fig3::run(Panel::Static, quick, &runner),
        figures::fig3::run(Panel::Continuous, quick, &runner),
        figures::fig4::run(quick, &runner),
        figures::fig5::run(quick, &runner),
        figures::fig6::run(quick, &runner),
        figures::fig7::run(quick),
        figures::fig8::run(quick, &runner),
        figures::fig9::run(quick, &runner),
        figures::table3::run(quick, &runner),
        figures::table4::run(quick, &runner),
        figures::ablation::run(quick, &runner),
        figures::stragglers::run(quick, &runner),
        figures::failures::run(quick, &runner),
        figures::extensions::run(quick, &runner),
    ];
    println!("==============================================================");
    for r in &results {
        println!("--- {} ---", r.name);
        figures::print_report(r);
        println!();
    }
    let cells: usize = results.iter().map(|r| r.timings.len()).sum();
    let cell_seconds: f64 = results
        .iter()
        .flat_map(|r| r.timings.iter().map(|(_, s)| s))
        .sum();
    println!(
        "all {} experiments regenerated in {:?} \
         ({cells} sweep cells, {cell_seconds:.1}s of simulation, {} worker threads)",
        results.len(),
        t0.elapsed(),
        runner.threads(),
    );
}

//! Run the machine-failure resilience comparison. Pass `--quick` for a
//! reduced-size run and `--threads N` to control the sweep worker count.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let runner = hadar_bench::runner_from_cli(&args);
    let r = hadar_bench::figures::failures::run(quick, &runner);
    hadar_bench::figures::print_report(&r);
}

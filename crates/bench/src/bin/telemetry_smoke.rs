//! Telemetry smoke check: run every policy with the telemetry sink enabled
//! on one small workload, validate each JSONL stream against schema
//! `hadar.telemetry.v1`, and write the streams plus an aggregate summary
//! CSV under the results directory. Exits non-zero on any invalid stream,
//! so CI can gate on it.

use hadar_bench::experiments::{results_dir, run_scenario_with_telemetry, SchedulerKind};
use hadar_cluster::Cluster;
use hadar_metrics::CsvWriter;
use hadar_sim::{SimConfig, Telemetry};
use hadar_workload::{generate_trace, ArrivalPattern, TraceConfig};

fn main() {
    let cluster = Cluster::paper_simulation();
    let jobs = generate_trace(
        &TraceConfig {
            num_jobs: 8,
            seed: 7,
            pattern: ArrivalPattern::Static,
        },
        cluster.catalog(),
    );
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");

    let mut w = CsvWriter::new(&[
        "scheduler",
        "rounds",
        "scheduled",
        "preempted",
        "evicted",
        "completed",
    ]);
    let kinds = [
        SchedulerKind::Hadar,
        SchedulerKind::Gavel,
        SchedulerKind::Tiresias,
        SchedulerKind::YarnCs,
        SchedulerKind::Srtf,
    ];
    for kind in kinds {
        let out = run_scenario_with_telemetry(
            cluster.clone(),
            jobs.clone(),
            SimConfig::default(),
            kind,
            Telemetry::enabled(),
        )
        .expect("valid scenario");
        let stream = out
            .telemetry_stream()
            .expect("enabled sink records a stream");
        let report = hadar_metrics::validate_telemetry_jsonl(stream)
            .unwrap_or_else(|e| panic!("{}: invalid telemetry stream: {e}", kind.name()));
        let slug = kind.name().to_lowercase().replace([' ', '(', ')'], "");
        let path = dir.join(format!("telemetry_{slug}.jsonl"));
        std::fs::write(&path, stream).expect("write stream");
        println!(
            "  {:<9} {} rounds, {} scheduled, {} evicted — wrote {}",
            report.scheduler,
            report.rounds,
            report.scheduled,
            report.evicted,
            path.display()
        );
        w.row(vec![
            report.scheduler,
            report.rounds.to_string(),
            report.scheduled.to_string(),
            report.preempted.to_string(),
            report.evicted.to_string(),
            report.completed.to_string(),
        ]);
    }
    let summary = dir.join("telemetry_summary.csv");
    std::fs::write(&summary, w.as_str()).expect("write summary CSV");
    println!("  wrote {}", summary.display());
    println!("telemetry smoke: all {} streams valid", kinds.len());
}

//! Quick development sanity check: run the four headline schedulers on a
//! moderate trace and print the metric ordering. Not one of the paper's
//! figures — see `fig3` … `table4` for those.

use hadar_bench::{paper_sim_scenario, run_scenario, SchedulerKind};
use hadar_workload::ArrivalPattern;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);
    let pattern = if std::env::args().any(|a| a == "continuous") {
        ArrivalPattern::paper_continuous()
    } else {
        ArrivalPattern::Static
    };
    println!("{n} jobs, pattern {pattern:?}");
    for kind in SchedulerKind::HEADLINE {
        let s = paper_sim_scenario(n, 42, pattern);
        let t0 = std::time::Instant::now();
        let out = run_scenario(s.cluster, s.jobs, s.config, kind).expect("valid scenario");
        println!(
            "{:<10} meanJCT {:>8.2} h | medJCT {:>8.2} h | makespan {:>8.2} h | util {:>5.1}% | FTF {:>6.2} | qdelay {:>7.2} h | realloc {:>4.1}% | done {} | wall {:?}",
            out.scheduler,
            out.mean_jct() / 3600.0,
            out.median_jct() / 3600.0,
            out.makespan() / 3600.0,
            out.demand_weighted_utilization() * 100.0,
            out.ftf().mean,
            out.queuing_delays().mean / 3600.0,
            out.reallocation_rate() * 100.0,
            out.completed_jobs(),
            t0.elapsed(),
        );
    }
}

//! Round-path benchmark: one large Hadar simulation, serial vs parallel vs
//! incremental.
//!
//! Three configurations run the *same* simulation (identical trace, cluster,
//! and round cap) and must produce bit-identical job outcomes:
//!
//! * **serial** — one candidate-generation worker, cross-round cache off:
//!   the pre-optimization baseline round path,
//! * **parallel** — auto worker count (`HADAR_ROUND_THREADS` or the machine
//!   parallelism), cross-round cache off: isolates the intra-round
//!   candidate-prefetch speedup,
//! * **incremental** — auto workers plus the cross-round candidate cache:
//!   the full optimized path, where quiescent rounds reuse the previous
//!   round's class geometries and decisions.
//!
//! Results are printed and recorded in `BENCH_round.json` (override the
//! path with `HADAR_BENCH_OUT`); CI runs `--quick` and uploads the file as
//! an artifact. Usage: `cargo run --release --bin round_bench [-- --quick]`.

use std::time::Instant;

use hadar_cluster::Cluster;
use hadar_core::{HadarConfig, HadarScheduler, RoundParallelism};
use hadar_sim::{SimConfig, SimOutcome, Simulation};
use hadar_workload::{generate_trace, ArrivalPattern, TraceConfig};

/// Cluster for `n` jobs, matching Fig. 7's scaling (3 GPU types ×
/// `n/32` nodes × 4 GPUs).
fn scaled_cluster(num_jobs: usize) -> Cluster {
    Cluster::scaled((num_jobs / 32).max(1))
}

#[derive(Clone, Copy)]
struct Mode {
    parallelism: RoundParallelism,
    cross_round_cache: bool,
}

const MODES: [Mode; 3] = [
    // serial
    Mode {
        parallelism: RoundParallelism::Fixed(1),
        cross_round_cache: false,
    },
    // parallel
    Mode {
        parallelism: RoundParallelism::Auto,
        cross_round_cache: false,
    },
    // incremental
    Mode {
        parallelism: RoundParallelism::Auto,
        cross_round_cache: true,
    },
];

struct ModeResult {
    wall_seconds: f64,
    decision_seconds: f64,
    candidates_seconds: f64,
    reused_rounds: usize,
    rounds: usize,
    outcome: SimOutcome,
}

fn run_mode(num_jobs: usize, max_rounds: u64, mode: Mode) -> ModeResult {
    let cluster = scaled_cluster(num_jobs);
    let jobs = generate_trace(
        &TraceConfig {
            num_jobs,
            seed: 7,
            pattern: ArrivalPattern::Static,
        },
        cluster.catalog(),
    );
    let sim_config = SimConfig {
        max_rounds,
        ..SimConfig::default()
    };
    let scheduler = HadarScheduler::new(HadarConfig {
        round_parallelism: mode.parallelism,
        cross_round_cache: mode.cross_round_cache,
        ..HadarConfig::default()
    });
    let t0 = Instant::now();
    let outcome = Simulation::new(cluster, jobs, sim_config)
        .run(scheduler)
        .expect("valid round-bench scenario");
    let wall_seconds = t0.elapsed().as_secs_f64();
    let (_, candidates_seconds, _) = outcome.phase_totals();
    ModeResult {
        wall_seconds,
        decision_seconds: outcome.total_decision_seconds(),
        candidates_seconds,
        reused_rounds: outcome.reused_rounds(),
        rounds: outcome.rounds.len(),
        outcome,
    }
}

/// The per-job decision trail that must be bit-identical across modes.
fn decision_trail(out: &SimOutcome) -> Vec<(Option<u64>, Option<u64>, u32, u32)> {
    out.records
        .iter()
        .map(|r| {
            (
                r.first_scheduled.map(f64::to_bits),
                r.finish.map(f64::to_bits),
                r.rounds_run,
                r.reallocations,
            )
        })
        .collect()
}

struct SizeResult {
    jobs: usize,
    rounds: usize,
    serial: ModeResult,
    parallel: ModeResult,
    incremental: ModeResult,
}

fn bench_size(num_jobs: usize, max_rounds: u64) -> SizeResult {
    let [serial, parallel, incremental] = MODES.map(|mode| run_mode(num_jobs, max_rounds, mode));
    // The tentpole guarantee: all three paths are exact.
    assert_eq!(
        decision_trail(&serial.outcome),
        decision_trail(&parallel.outcome),
        "parallel candidate generation changed decisions at n={num_jobs}"
    );
    assert_eq!(
        decision_trail(&serial.outcome),
        decision_trail(&incremental.outcome),
        "cross-round cache changed decisions at n={num_jobs}"
    );
    SizeResult {
        jobs: num_jobs,
        rounds: serial.rounds,
        serial,
        parallel,
        incremental,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // (jobs, round cap) — the cap bounds quick/CI wall time; a static trace
    // on the Fig. 7 cluster keeps hundreds of jobs queued the whole window,
    // which is exactly the hot regime the round path optimizes.
    let plan: &[(usize, u64)] = if quick {
        &[(64, 8), (128, 8)]
    } else {
        &[(256, 40), (1024, 40), (2048, 30)]
    };

    println!("Hadar round path: serial vs parallel vs incremental (one simulation per cell)");
    let mut results = Vec::new();
    for &(jobs, max_rounds) in plan {
        let r = bench_size(jobs, max_rounds);
        println!(
            "  n={:>4} jobs × {} rounds: serial {:>8.2}s | parallel {:>8.2}s ({:.2}×) | incremental {:>8.2}s ({:.2}×, {} reused rounds)",
            r.jobs,
            r.rounds,
            r.serial.wall_seconds,
            r.parallel.wall_seconds,
            r.serial.wall_seconds / r.parallel.wall_seconds,
            r.incremental.wall_seconds,
            r.serial.wall_seconds / r.incremental.wall_seconds,
            r.incremental.reused_rounds,
        );
        println!(
            "          decision totals: serial {:>7.2}s (candidates {:>6.2}s) | incremental {:>7.2}s (candidates {:>6.2}s)",
            r.serial.decision_seconds,
            r.serial.candidates_seconds,
            r.incremental.decision_seconds,
            r.incremental.candidates_seconds,
        );
        results.push(r);
    }

    // cargo runs bins with cwd = the invocation dir; default to the
    // workspace root so the JSON lands next to BENCH_solver.json.
    let out_path = std::env::var("HADAR_BENCH_OUT")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_round.json").into());
    let mode_json = |m: &ModeResult| {
        format!(
            concat!(
                "{{\"wall_seconds\": {:.4}, \"decision_seconds\": {:.4}, ",
                "\"candidates_seconds\": {:.4}, \"reused_rounds\": {}}}"
            ),
            m.wall_seconds, m.decision_seconds, m.candidates_seconds, m.reused_rounds,
        )
    };
    let sizes: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "    {{\"jobs\": {}, \"rounds\": {}, ",
                    "\"serial\": {}, \"parallel\": {}, \"incremental\": {}, ",
                    "\"speedup_parallel_vs_serial\": {:.2}, ",
                    "\"speedup_incremental_vs_serial\": {:.2}}}"
                ),
                r.jobs,
                r.rounds,
                mode_json(&r.serial),
                mode_json(&r.parallel),
                mode_json(&r.incremental),
                r.serial.wall_seconds / r.parallel.wall_seconds,
                r.serial.wall_seconds / r.incremental.wall_seconds,
            )
        })
        .collect();
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = format!(
        "{{\n  \"bench\": \"round\",\n  \"scheduler\": \"hadar\",\n  \"mode\": \"{}\",\n  \"host_threads\": {},\n  \"timing\": \"wall-clock per full simulation; serial = 1 worker + no cross-round cache, parallel = auto workers, incremental = auto workers + cross-round candidate cache; job outcomes asserted bit-identical across the three\",\n  \"note\": \"mode-vs-mode speedups need host_threads > 1 to show parallel gains; on a 1-thread host all modes share one core and the ratios sit near 1. The cross-PR round-path speedup is tracked in EXPERIMENTS.md (Fig. 7 decision times).\",\n  \"sizes\": [\n{}\n  ]\n}}\n",
        if quick { "quick" } else { "full" },
        host_threads,
        sizes.join(",\n")
    );
    std::fs::write(&out_path, json).expect("write BENCH_round.json");
    println!("wrote {out_path}");
}

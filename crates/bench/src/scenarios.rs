//! Canonical evaluation scenarios (cluster + trace + sim parameters).

use hadar_cluster::{Cluster, JobId};
use hadar_sim::SimConfig;
use hadar_workload::{generate_trace, ArrivalPattern, DlTask, Job, TraceConfig};

/// A fully specified experiment input.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Human-readable label ("static", "continuous λ=60", …).
    pub label: String,
    /// Cluster topology.
    pub cluster: Cluster,
    /// The trace.
    pub jobs: Vec<Job>,
    /// Simulator parameters.
    pub config: SimConfig,
}

/// The paper's simulation setup (§IV-A): 15 nodes / 60 GPUs, `num_jobs`
/// trace jobs, 6-minute rounds, 10-second reallocation penalty.
///
/// The paper uses 480 jobs; smaller counts are used by quicker experiments
/// and tests (pass 480 for the full-figure runs).
pub fn paper_sim_scenario(num_jobs: usize, seed: u64, pattern: ArrivalPattern) -> Scenario {
    let cluster = Cluster::paper_simulation();
    let jobs = generate_trace(
        &TraceConfig {
            num_jobs,
            seed,
            pattern,
        },
        cluster.catalog(),
    );
    let label = match pattern {
        ArrivalPattern::Static => format!("static/{num_jobs}jobs/seed{seed}"),
        ArrivalPattern::Poisson { jobs_per_hour } => {
            format!("continuous-λ{jobs_per_hour}/{num_jobs}jobs/seed{seed}")
        }
    };
    Scenario {
        label,
        cluster,
        jobs,
        config: SimConfig::default(),
    }
}

/// The prototype workload of §IV-B / Table III: the 8-GPU AWS cluster with
/// 10 jobs of mixed models and gang sizes.
pub fn aws_prototype_scenario(seed: u64) -> Scenario {
    let cluster = Cluster::paper_aws_prototype();
    // "10 jobs of different models and sizes (GPU demands) from Table II".
    // Gangs are small (8 single-GPU instances); epochs scaled so the run
    // lasts hours like the prototype experiment (downscaled ImageNet).
    // Heavy-tailed mix mirroring the prototype run: three long trainings
    // (downscaled-ImageNet ResNet-50 and friends) plus seven sub-hour jobs.
    let specs: [(DlTask, u32, u64); 10] = [
        (DlTask::ResNet50, 2, 110),
        (DlTask::ResNet18, 2, 7_000),
        (DlTask::Lstm, 2, 700),
        (DlTask::ResNet18, 1, 600),
        (DlTask::CycleGan, 1, 30),
        (DlTask::Transformer, 1, 120),
        (DlTask::Lstm, 1, 90),
        (DlTask::CycleGan, 2, 40),
        (DlTask::Transformer, 2, 250),
        (DlTask::ResNet50, 1, 12),
    ];
    // Deterministic small stagger in arrivals (jobs submitted over ~15 min).
    let jobs = specs
        .iter()
        .enumerate()
        .map(|(i, &(model, gang, epochs))| {
            let arrival = ((i as u64 * 7 + seed) % 10) as f64 * 90.0;
            Job::for_model(
                JobId(i as u32),
                model,
                cluster.catalog(),
                arrival,
                gang,
                epochs,
            )
        })
        .collect();
    Scenario {
        label: format!("aws-prototype/seed{seed}"),
        cluster,
        jobs,
        config: SimConfig::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scenario_shapes() {
        let s = paper_sim_scenario(480, 1, ArrivalPattern::Static);
        assert_eq!(s.jobs.len(), 480);
        assert_eq!(s.cluster.total_gpus(), 60);
        assert_eq!(s.config.round_length, 360.0);
        assert!(s.label.contains("static"));
    }

    #[test]
    fn aws_scenario_shapes() {
        let s = aws_prototype_scenario(0);
        assert_eq!(s.jobs.len(), 10);
        assert_eq!(s.cluster.total_gpus(), 8);
        // Every gang fits the 8-GPU cluster.
        assert!(s.jobs.iter().all(|j| j.gang <= 2));
    }

    #[test]
    fn scenarios_deterministic() {
        let a = paper_sim_scenario(50, 3, ArrivalPattern::paper_continuous());
        let b = paper_sim_scenario(50, 3, ArrivalPattern::paper_continuous());
        assert_eq!(a.jobs, b.jobs);
    }
}

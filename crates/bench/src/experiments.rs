//! Scheduler factory and shared run helpers for the experiment binaries.

use hadar_baselines::{
    GavelConfig, GavelPolicy, GavelScheduler, SrtfScheduler, TiresiasScheduler, YarnCsScheduler,
};
use hadar_cluster::Cluster;
use hadar_core::{FtfUtility, HadarConfig, HadarScheduler, MinMakespan, UtilityKind};
use hadar_sim::{Scheduler, SimConfig, SimResult, Simulation, Telemetry};
use hadar_workload::Job;

/// The schedulers compared in the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Hadar with its default (effective-throughput) objective.
    Hadar,
    /// Hadar expressing the makespan-minimization policy (Fig. 6).
    HadarMakespan,
    /// Hadar expressing the finish-time-fairness policy.
    HadarFtf,
    /// Gavel with the max-total-throughput objective (the paper's setting).
    Gavel,
    /// Gavel with its max-min fairness (LAS) policy.
    GavelMaxMin,
    /// Tiresias, two queues, PromoteKnob off.
    Tiresias,
    /// YARN capacity scheduler.
    YarnCs,
    /// Extension baseline: heterogeneity-aware SRTF (not in the paper).
    Srtf,
}

impl SchedulerKind {
    /// The four schedulers of the headline comparisons (Figs. 3–4).
    pub const HEADLINE: [SchedulerKind; 4] = [
        SchedulerKind::Hadar,
        SchedulerKind::Gavel,
        SchedulerKind::Tiresias,
        SchedulerKind::YarnCs,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::Hadar => "Hadar",
            SchedulerKind::HadarMakespan => "Hadar (makespan)",
            SchedulerKind::HadarFtf => "Hadar (FTF)",
            SchedulerKind::Gavel => "Gavel",
            SchedulerKind::GavelMaxMin => "Gavel (max-min)",
            SchedulerKind::Tiresias => "Tiresias",
            SchedulerKind::YarnCs => "YARN-CS",
            SchedulerKind::Srtf => "SRTF",
        }
    }

    /// Instantiate the scheduler. `cluster`/`n_jobs` parameterize the
    /// FTF-objective variant.
    pub fn build(self, cluster: &Cluster, n_jobs: usize) -> Box<dyn Scheduler> {
        match self {
            SchedulerKind::Hadar => Box::new(HadarScheduler::new(HadarConfig::default())),
            SchedulerKind::HadarMakespan => Box::new(HadarScheduler::new(
                HadarConfig::with_utility(UtilityKind::MinMakespan(MinMakespan::default())),
            )),
            SchedulerKind::HadarFtf => Box::new(HadarScheduler::new(HadarConfig::with_utility(
                UtilityKind::Ftf(FtfUtility::new(cluster.clone(), n_jobs)),
            ))),
            SchedulerKind::Gavel => Box::new(GavelScheduler::paper_default()),
            SchedulerKind::GavelMaxMin => Box::new(GavelScheduler::new(GavelConfig {
                policy: GavelPolicy::MaxMinFairness,
                ..GavelConfig::default()
            })),
            SchedulerKind::Tiresias => Box::new(TiresiasScheduler::paper_default()),
            SchedulerKind::YarnCs => Box::new(YarnCsScheduler::new()),
            SchedulerKind::Srtf => Box::new(SrtfScheduler::new()),
        }
    }
}

/// Run one simulation of `kind` over `jobs` on `cluster`. A bad
/// configuration or an invalid allocation surfaces as a [`hadar_sim::SimError`]
/// for the caller (typically a sweep cell) to report.
pub fn run_scenario(
    cluster: Cluster,
    jobs: Vec<Job>,
    config: SimConfig,
    kind: SchedulerKind,
) -> SimResult {
    run_scenario_with_telemetry(cluster, jobs, config, kind, Telemetry::disabled())
}

/// [`run_scenario`] with an explicit telemetry sink. Pass
/// [`Telemetry::enabled`] to record the per-round JSONL stream (read it
/// back via `SimOutcome::telemetry_stream`); an observing sink never
/// changes the simulated schedule.
pub fn run_scenario_with_telemetry(
    cluster: Cluster,
    jobs: Vec<Job>,
    config: SimConfig,
    kind: SchedulerKind,
    telemetry: Telemetry,
) -> SimResult {
    let n = jobs.len();
    let scheduler = kind.build(&cluster, n);
    let mut outcome =
        Simulation::new(cluster, jobs, config).run_with_telemetry(scheduler, telemetry)?;
    // Label with the comparison name (e.g. distinguish Hadar variants).
    outcome.scheduler = kind.name().to_owned();
    Ok(outcome)
}

/// The directory experiment binaries write CSVs to.
pub fn results_dir() -> std::path::PathBuf {
    std::path::PathBuf::from(
        std::env::var("HADAR_RESULTS_DIR").unwrap_or_else(|_| "results".to_owned()),
    )
}

/// Build the sweep runner for an experiment binary from its raw arguments:
/// `--threads N` (N ≥ 1; 1 = strict serial) forces the worker count,
/// otherwise `HADAR_THREADS` or the machine's available parallelism
/// (capped at 16) decides. Exits with an error on a malformed value.
pub fn runner_from_cli(args: &[String]) -> hadar_sim::SweepRunner {
    let Some(i) = args.iter().position(|a| a == "--threads") else {
        return hadar_sim::SweepRunner::from_env();
    };
    match args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
        Some(n) if n >= 1 => hadar_sim::SweepRunner::new(n),
        _ => {
            eprintln!("error: --threads expects a positive integer");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hadar_workload::{generate_trace, ArrivalPattern, TraceConfig};

    #[test]
    fn every_kind_builds_and_runs() {
        let cluster = Cluster::paper_simulation();
        let jobs = generate_trace(
            &TraceConfig {
                num_jobs: 6,
                seed: 9,
                pattern: ArrivalPattern::Static,
            },
            cluster.catalog(),
        );
        for kind in [
            SchedulerKind::Hadar,
            SchedulerKind::HadarMakespan,
            SchedulerKind::HadarFtf,
            SchedulerKind::Gavel,
            SchedulerKind::GavelMaxMin,
            SchedulerKind::Tiresias,
            SchedulerKind::YarnCs,
            SchedulerKind::Srtf,
        ] {
            let out = run_scenario(cluster.clone(), jobs.clone(), SimConfig::default(), kind)
                .expect("valid scenario");
            assert_eq!(out.completed_jobs(), 6, "{}", kind.name());
            assert_eq!(out.scheduler, kind.name());
        }
    }
}

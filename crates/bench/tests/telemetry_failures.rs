//! Satellite regression test: a sweep under aggressive machine failures
//! where some cells complete *zero* jobs must neither panic in the metrics
//! layer (NaN-free summaries, no "no NaN" expect) nor in reporting, and
//! the telemetry streams must carry the eviction counts.

use hadar_bench::experiments::{run_scenario_with_telemetry, SchedulerKind};
use hadar_cluster::Cluster;
use hadar_sim::{FailureModel, SimConfig, SimResult, SweepRunner, Telemetry};
use hadar_workload::{generate_trace, ArrivalPattern, TraceConfig};

#[test]
fn high_failure_sweep_with_zero_completion_cells_does_not_panic() {
    let cluster = Cluster::paper_simulation();
    // 12 rounds is far less than any job's service time, so no cell can
    // complete a job; MTBF of 2 rounds makes evictions near-certain.
    let config = SimConfig {
        max_rounds: 12,
        failure: Some(FailureModel {
            mtbf_rounds: 2.0,
            mttr_rounds: 2.0,
            seed: 5,
        }),
        ..SimConfig::default()
    };

    let mut cells: Vec<Box<dyn FnOnce() -> SimResult + Send>> = Vec::new();
    for seed in [1u64, 2, 3] {
        let jobs = generate_trace(
            &TraceConfig {
                num_jobs: 6,
                seed,
                pattern: ArrivalPattern::Static,
            },
            cluster.catalog(),
        );
        for kind in SchedulerKind::HEADLINE {
            let (cluster, jobs) = (cluster.clone(), jobs.clone());
            cells.push(Box::new(move || {
                run_scenario_with_telemetry(cluster, jobs, config, kind, Telemetry::enabled())
            }));
        }
    }

    let mut total_evicted = 0u64;
    let mut zero_completion_cells = 0usize;
    for cell in SweepRunner::new(2).run(cells) {
        let out = cell.outcome.expect("cell must not fail");
        assert!(
            out.timed_out,
            "{}: 12 rounds cannot finish a job",
            out.scheduler
        );
        if out.completed_jobs() == 0 {
            zero_completion_cells += 1;
        }
        // The panic-shaped paths: summary stats over an empty/NaN JCT
        // sample, fairness over unfinished jobs, and report helpers.
        let m = out.metrics();
        assert_eq!(m.count, out.completed_jobs());
        let _ = out.ftf();
        let _ = out.queuing_delays();
        let _ = out.demand_weighted_utilization();

        let stream = out.telemetry_stream().expect("stream recorded");
        let report = hadar_metrics::validate_telemetry_jsonl(stream)
            .unwrap_or_else(|e| panic!("{}: invalid stream: {e}", out.scheduler));
        assert_eq!(report.completed, out.completed_jobs() as u64);
        assert_eq!(report.evicted, out.telemetry.jobs_evicted);
        total_evicted += report.evicted;
    }
    assert!(
        zero_completion_cells > 0,
        "test premise: some cell completes nothing"
    );
    assert!(total_evicted > 0, "mtbf=2 rounds must evict something");
}

//! The core guarantee of the parallel sweep runner: fanning figure cells
//! over a thread pool produces byte-identical CSVs and identical summaries
//! to the strict serial reference, and parallel runs are deterministic.
//!
//! One test function on purpose: the experiments locate their output via
//! the process-wide `HADAR_RESULTS_DIR` variable, so the serial and
//! parallel runs must happen sequentially in a single test.

use std::collections::BTreeMap;
use std::path::Path;

use hadar_sim::SweepRunner;

/// Run a representative slice of the figure suite into `dir` and return
/// `(csv name -> bytes, figure name -> summary)`.
///
/// The slice covers the sweep shapes: order-dependent "(x Hadar)"
/// ratios (fig5), a parameter-grid sweep (fig9), a multi-cluster
/// comparison (extensions), and the seeded fault-injection sweep
/// (failures), whose RNG-driven eviction timeline must also be
/// thread-count-invariant.
fn run_figures_into(
    dir: &Path,
    runner: &SweepRunner,
) -> (BTreeMap<String, Vec<u8>>, BTreeMap<String, String>) {
    std::fs::create_dir_all(dir).unwrap();
    std::env::set_var("HADAR_RESULTS_DIR", dir);
    let results = vec![
        hadar_bench::figures::fig5::run(true, runner),
        hadar_bench::figures::fig9::run(true, runner),
        hadar_bench::figures::extensions::run(true, runner),
        hadar_bench::figures::failures::run(true, runner),
    ];
    let mut csvs = BTreeMap::new();
    let mut summaries = BTreeMap::new();
    for r in results {
        summaries.insert(r.name.clone(), r.summary.clone());
        for p in &r.csv_paths {
            let name = p.file_name().unwrap().to_string_lossy().into_owned();
            csvs.insert(name, std::fs::read(p).unwrap());
        }
    }
    (csvs, summaries)
}

#[test]
fn parallel_figures_are_byte_identical_and_deterministic() {
    let base = std::env::temp_dir().join(format!("hadar-par-eq-{}", std::process::id()));
    let (serial_csvs, serial_summaries) =
        run_figures_into(&base.join("serial"), &SweepRunner::serial());
    let (par_csvs, par_summaries) = run_figures_into(&base.join("par-a"), &SweepRunner::new(4));
    let (rerun_csvs, _) = run_figures_into(&base.join("par-b"), &SweepRunner::new(4));

    assert_eq!(
        serial_csvs.keys().collect::<Vec<_>>(),
        par_csvs.keys().collect::<Vec<_>>()
    );
    for (name, bytes) in &serial_csvs {
        assert_eq!(
            Some(bytes),
            par_csvs.get(name),
            "{name}: parallel CSV differs from serial reference"
        );
        assert_eq!(
            par_csvs.get(name),
            rerun_csvs.get(name),
            "{name}: two parallel runs disagree"
        );
    }
    assert_eq!(serial_summaries, par_summaries, "summaries diverged");

    let _ = std::fs::remove_dir_all(&base);
}

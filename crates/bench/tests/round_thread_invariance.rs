//! The tentpole guarantee of the parallel round path: candidate prefetch
//! over worker threads is a pure cache warm-up, so every simulation
//! artifact — decision trails and rendered result CSVs — is byte-identical
//! at any `HADAR_ROUND_THREADS` / [`RoundParallelism`] setting.
//!
//! One test function on purpose: `HADAR_ROUND_THREADS` and
//! `HADAR_RESULTS_DIR` are process-wide, so the runs must happen
//! sequentially in a single test.

use std::path::Path;

use hadar_cluster::Cluster;
use hadar_core::{HadarConfig, HadarScheduler, RoundParallelism};
use hadar_sim::{SimConfig, SimOutcome, Simulation, SweepRunner};
use hadar_workload::{generate_trace, ArrivalPattern, TraceConfig};

/// A 128-job static trace on the scaled cluster keeps well over
/// `MIN_PARALLEL_QUEUE` (64) jobs queued for many rounds, so the parallel
/// prefetch genuinely engages whenever more than one thread is configured.
fn run_sim(parallelism: RoundParallelism) -> SimOutcome {
    let cluster = Cluster::scaled(4);
    let jobs = generate_trace(
        &TraceConfig {
            num_jobs: 128,
            seed: 13,
            pattern: ArrivalPattern::Static,
        },
        cluster.catalog(),
    );
    let config = HadarConfig {
        round_parallelism: parallelism,
        ..HadarConfig::default()
    };
    let sim_config = SimConfig {
        max_rounds: 25,
        ..SimConfig::default()
    };
    Simulation::new(cluster, jobs, sim_config)
        .run(HadarScheduler::new(config))
        .unwrap()
}

/// Render the outcome as a results CSV with bit-exact float formatting —
/// the byte-level artifact the invariance promise is about.
fn results_csv(out: &SimOutcome) -> Vec<u8> {
    let mut csv = String::from("job,first_scheduled,finish,rounds_run,reallocations\n");
    for r in &out.records {
        csv.push_str(&format!(
            "{},{:?},{:?},{},{}\n",
            r.job.id,
            r.first_scheduled.map(f64::to_bits),
            r.finish.map(f64::to_bits),
            r.rounds_run,
            r.reallocations,
        ));
    }
    csv.into_bytes()
}

/// Run the quick Fig. 5 sweep into `dir` and return its CSVs as bytes.
fn fig5_csvs(dir: &Path) -> Vec<(String, Vec<u8>)> {
    std::fs::create_dir_all(dir).unwrap();
    std::env::set_var("HADAR_RESULTS_DIR", dir);
    let result = hadar_bench::figures::fig5::run(true, &SweepRunner::serial());
    result
        .csv_paths
        .iter()
        .map(|p| {
            let name = p.file_name().unwrap().to_string_lossy().into_owned();
            (name, std::fs::read(p).unwrap())
        })
        .collect()
}

#[test]
fn round_thread_count_never_changes_results() {
    // Direct simulation: one serial reference, then heavier thread counts
    // (well past this container's core count — worker threads are spawned
    // by request, not by available parallelism).
    let reference = results_csv(&run_sim(RoundParallelism::Fixed(1)));
    for n in [2usize, 4, 13] {
        let csv = results_csv(&run_sim(RoundParallelism::Fixed(n)));
        assert_eq!(
            reference, csv,
            "results CSV differs between 1 and {n} round threads"
        );
    }

    // Auto mode resolves HADAR_ROUND_THREADS from the environment on every
    // round; both settings must match the serial reference byte-for-byte.
    for n in ["1", "5"] {
        std::env::set_var("HADAR_ROUND_THREADS", n);
        let csv = results_csv(&run_sim(RoundParallelism::Auto));
        assert_eq!(
            reference, csv,
            "results CSV differs under HADAR_ROUND_THREADS={n}"
        );
    }

    // The pre-existing figure pipeline: the quick Fig. 5 sweep must render
    // byte-identical CSVs at 1 vs 4 round threads.
    let base = std::env::temp_dir().join(format!("hadar-round-inv-{}", std::process::id()));
    std::env::set_var("HADAR_ROUND_THREADS", "1");
    let serial = fig5_csvs(&base.join("t1"));
    std::env::set_var("HADAR_ROUND_THREADS", "4");
    let parallel = fig5_csvs(&base.join("t4"));
    std::env::remove_var("HADAR_ROUND_THREADS");
    assert!(!serial.is_empty(), "fig5 quick run produced no CSVs");
    assert_eq!(
        serial, parallel,
        "fig5 CSVs differ between 1 and 4 round threads"
    );

    let _ = std::fs::remove_dir_all(&base);
}

//! Acceptance test for the telemetry subsystem: every policy's JSONL
//! stream validates against schema `hadar.telemetry.v1`, carries that
//! policy's own counters, and recording the stream never perturbs the
//! simulated schedule (the sink is purely observational).

use hadar_bench::experiments::{run_scenario_with_telemetry, SchedulerKind};
use hadar_cluster::Cluster;
use hadar_sim::{SimConfig, SimOutcome, Telemetry};
use hadar_workload::{generate_trace, ArrivalPattern, TraceConfig};

const NUM_JOBS: usize = 6;

fn run(kind: SchedulerKind, telemetry: Telemetry) -> SimOutcome {
    let cluster = Cluster::paper_simulation();
    let jobs = generate_trace(
        &TraceConfig {
            num_jobs: NUM_JOBS,
            seed: 11,
            pattern: ArrivalPattern::Static,
        },
        cluster.catalog(),
    );
    run_scenario_with_telemetry(cluster, jobs, SimConfig::default(), kind, telemetry)
        .expect("valid scenario")
}

/// The five CLI-facing policies and a counter key each must emit.
const POLICY_KEYS: [(SchedulerKind, &str); 5] = [
    (SchedulerKind::Hadar, "hadar."),
    (SchedulerKind::Gavel, "gavel.lp_solves"),
    (SchedulerKind::Tiresias, "tiresias.queue_high"),
    (SchedulerKind::YarnCs, "yarn.running"),
    (SchedulerKind::Srtf, "srtf.placed_"),
];

#[test]
fn every_policy_stream_validates_against_schema() {
    for (kind, key) in POLICY_KEYS {
        let out = run(kind, Telemetry::enabled());
        let stream = out.telemetry_stream().expect("stream recorded");
        let report = hadar_metrics::validate_telemetry_jsonl(stream)
            .unwrap_or_else(|e| panic!("{}: invalid stream: {e}", kind.name()));
        assert!(report.rounds > 0, "{}", kind.name());
        assert_eq!(report.completed, NUM_JOBS as u64, "{}", kind.name());
        assert!(
            stream.contains(key),
            "{} stream missing its policy counter {key:?}",
            kind.name()
        );
        // The in-memory summary agrees with the stream's summary line.
        assert_eq!(out.telemetry.rounds, report.rounds, "{}", kind.name());
        assert_eq!(out.telemetry.jobs_completed, report.completed);
    }
}

#[test]
fn observing_sink_never_perturbs_the_schedule() {
    for kind in [
        SchedulerKind::Hadar,
        SchedulerKind::Gavel,
        SchedulerKind::Tiresias,
        SchedulerKind::YarnCs,
        SchedulerKind::Srtf,
    ] {
        let observed = run(kind, Telemetry::enabled());
        let silent = run(kind, Telemetry::disabled());
        assert!(silent.telemetry_stream().is_none());
        assert_eq!(
            observed.makespan(),
            silent.makespan(),
            "{}: makespan changed under observation",
            kind.name()
        );
        assert_eq!(observed.completed_jobs(), silent.completed_jobs());
        for (a, b) in observed.records.iter().zip(silent.records.iter()) {
            assert_eq!(a.finish, b.finish, "{}", kind.name());
            assert_eq!(a.first_scheduled, b.first_scheduled);
            assert_eq!(a.reallocations, b.reallocations);
        }
    }
}

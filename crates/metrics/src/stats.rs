//! Summary statistics and empirical CDFs.

/// Summary statistics over a sample of non-negative measurements
/// (JCTs, queuing delays, …).
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryStats {
    /// Sample size.
    pub count: usize,
    /// Arithmetic mean (0.0 for an empty sample).
    pub mean: f64,
    /// Median (p50).
    pub median: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Sample standard deviation (0.0 for fewer than two samples).
    pub stddev: f64,
    /// NaN samples dropped before computing the statistics above. A corrupt
    /// measurement is surfaced here instead of panicking the whole sweep
    /// cell (or silently poisoning every aggregate).
    pub nan_count: usize,
}

impl SummaryStats {
    /// Compute statistics over `values`. NaN samples are filtered out and
    /// counted in [`SummaryStats::nan_count`]; the remaining statistics
    /// cover only the finite-or-infinite (comparable) samples.
    pub fn of(values: &[f64]) -> Self {
        let mut sorted: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
        let nan_count = values.len() - sorted.len();
        if sorted.is_empty() {
            return Self {
                count: 0,
                mean: 0.0,
                median: 0.0,
                min: 0.0,
                max: 0.0,
                p95: 0.0,
                stddev: 0.0,
                nan_count,
            };
        }
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len();
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            sorted.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        Self {
            count: n,
            mean,
            median: percentile_sorted(&sorted, 50.0),
            min: sorted[0],
            max: sorted[n - 1],
            p95: percentile_sorted(&sorted, 95.0),
            stddev: var.sqrt(),
            nan_count,
        }
    }
}

/// Linear-interpolated percentile of a sorted slice, `p ∈ [0, 100]`.
///
/// # Panics
/// Panics on an empty slice or out-of-range `p`.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty sample");
    assert!((0.0..=100.0).contains(&p), "percentile out of range");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Empirical CDF of completion times: returns `(time, fraction)` step points
/// — for each distinct completion time, the cumulative fraction of samples
/// completed by then. This is the Fig. 3 series ("accumulative fraction of
/// jobs completed along the timeline").
pub fn cdf_points(completion_times: &[f64]) -> Vec<(f64, f64)> {
    if completion_times.is_empty() {
        return Vec::new();
    }
    // A NaN completion time cannot be placed on the CDF; drop it rather
    // than panic (it also must not inflate the denominator, or the curve
    // would never reach 1.0).
    let mut sorted: Vec<f64> = completion_times
        .iter()
        .copied()
        .filter(|v| !v.is_nan())
        .collect();
    if sorted.is_empty() {
        return Vec::new();
    }
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len() as f64;
    let mut out: Vec<(f64, f64)> = Vec::new();
    for (i, t) in sorted.iter().enumerate() {
        let frac = (i + 1) as f64 / n;
        match out.last_mut() {
            Some(last) if last.0 == *t => last.1 = frac,
            _ => out.push((*t, frac)),
        }
    }
    out
}

/// Sample a CDF at evenly spaced time points (for fixed-grid figure output):
/// returns the completed fraction at each of `steps + 1` points spanning
/// `[0, horizon]`.
pub fn cdf_on_grid(completion_times: &[f64], horizon: f64, steps: usize) -> Vec<(f64, f64)> {
    assert!(horizon > 0.0 && steps > 0);
    let pts = cdf_points(completion_times);
    (0..=steps)
        .map(|i| {
            let t = horizon * i as f64 / steps as f64;
            // Index of the first CDF point strictly after t; the point
            // before it (if any) is the last one at or before t. Binary
            // search instead of a linear scan per grid point keeps the
            // sweep at O((steps + points) log points) overall.
            let idx = pts.partition_point(|&(pt, _)| pt <= t);
            let frac = if idx == 0 { 0.0 } else { pts[idx - 1].1 };
            (t, frac)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = SummaryStats::of(&[4.0, 1.0, 3.0, 2.0]);
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.median - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        // Sample stddev of 1..4 = sqrt(5/3).
        assert!((s.stddev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_of_empty_and_singleton() {
        let e = SummaryStats::of(&[]);
        assert_eq!(e.count, 0);
        assert_eq!(e.mean, 0.0);
        let s = SummaryStats::of(&[7.0]);
        assert_eq!(s.median, 7.0);
        assert_eq!(s.p95, 7.0);
        assert_eq!(s.stddev, 0.0);
    }

    #[test]
    fn summary_filters_nan_samples() {
        // Regression: a single NaN JCT used to panic the whole summary via
        // `partial_cmp().expect("no NaN")`. It is now dropped and counted.
        let s = SummaryStats::of(&[1.0, f64::NAN, 3.0]);
        assert_eq!(s.nan_count, 1);
        assert_eq!(s.count, 2);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);

        let all_nan = SummaryStats::of(&[f64::NAN, f64::NAN]);
        assert_eq!(all_nan.nan_count, 2);
        assert_eq!(all_nan.count, 0);
        assert_eq!(all_nan.mean, 0.0);
    }

    #[test]
    fn cdf_filters_nan_and_still_reaches_one() {
        let pts = cdf_points(&[2.0, f64::NAN, 1.0]);
        assert_eq!(pts.len(), 2);
        assert_eq!(pts.last().unwrap().1, 1.0);
        assert!(cdf_points(&[f64::NAN]).is_empty());
    }

    #[test]
    fn percentile_interpolates() {
        let v = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile_sorted(&v, 0.0), 10.0);
        assert_eq!(percentile_sorted(&v, 100.0), 40.0);
        assert!((percentile_sorted(&v, 50.0) - 25.0).abs() < 1e-12);
        assert!((percentile_sorted(&v, 25.0) - 17.5).abs() < 1e-12);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let pts = cdf_points(&[3.0, 1.0, 2.0, 2.0]);
        assert_eq!(pts.len(), 3); // distinct times 1, 2, 3
        assert!(pts.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 <= w[1].1));
        assert_eq!(pts.last().unwrap().1, 1.0);
        // Duplicate time 2.0 collapses to its final fraction 0.75.
        assert_eq!(pts[1], (2.0, 0.75));
    }

    #[test]
    fn cdf_grid_sampling() {
        let g = cdf_on_grid(&[1.0, 3.0], 4.0, 4);
        assert_eq!(g.len(), 5);
        assert_eq!(g[0], (0.0, 0.0));
        assert_eq!(g[1], (1.0, 0.5));
        assert_eq!(g[2], (2.0, 0.5));
        assert_eq!(g[3], (3.0, 1.0));
        assert_eq!(g[4], (4.0, 1.0));
    }

    #[test]
    fn cdf_of_empty_is_empty() {
        assert!(cdf_points(&[]).is_empty());
    }

    /// The linear-scan reference the binary search replaced.
    fn cdf_on_grid_reference(times: &[f64], horizon: f64, steps: usize) -> Vec<(f64, f64)> {
        let pts = cdf_points(times);
        (0..=steps)
            .map(|i| {
                let t = horizon * i as f64 / steps as f64;
                let frac = pts
                    .iter()
                    .take_while(|(pt, _)| *pt <= t)
                    .last()
                    .map_or(0.0, |&(_, f)| f);
                (t, frac)
            })
            .collect()
    }

    #[test]
    fn cdf_grid_matches_linear_scan_reference() {
        // Property check over deterministic pseudo-random samples, including
        // duplicates, boundary-aligned values, and points past the horizon.
        let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for case in 0..50 {
            let n = (next() % 40) as usize;
            let times: Vec<f64> = (0..n)
                .map(|_| match next() % 4 {
                    // Exactly on a grid boundary — the `<=` edge case.
                    0 => (next() % 12) as f64,
                    // Beyond the horizon.
                    1 => 12.0 + (next() % 100) as f64 / 7.0,
                    _ => (next() % 1200) as f64 / 100.0,
                })
                .collect();
            let steps = 1 + (next() % 24) as usize;
            let got = cdf_on_grid(&times, 12.0, steps);
            let want = cdf_on_grid_reference(&times, 12.0, steps);
            assert_eq!(got, want, "case {case}: times={times:?} steps={steps}");
        }
    }
}

//! Validation and summarization of the simulator's telemetry JSONL stream.
//!
//! The stream format is produced by `hadar-sim`'s `Telemetry` sink (schema
//! `hadar.telemetry.v1`): a `meta` header line, one `round` record per
//! scheduling round, and a final `summary` line — each a single JSON object.
//! This module is the consumer-side contract: [`validate_telemetry_jsonl`]
//! checks both JSON well-formedness (via a small hand-rolled parser — see
//! DESIGN.md §8 for why serde is not used) and the schema (required record
//! types, required round keys, strictly increasing round numbers), and
//! extracts a [`TelemetryReport`] of headline aggregates. CI runs it against
//! `simulate --telemetry-out` output; the bench harness uses the report to
//! tag sweep rows.

/// The schema identifier this validator accepts (mirrors
/// `hadar_sim::TELEMETRY_SCHEMA`; duplicated rather than imported because
/// `hadar-metrics` sits below `hadar-sim` in the crate graph).
pub const TELEMETRY_SCHEMA: &str = "hadar.telemetry.v1";

/// Keys every `round` record must carry.
const ROUND_KEYS: [&str; 15] = [
    "round",
    "time_s",
    "queue_depth",
    "running",
    "scheduled",
    "preempted",
    "evicted",
    "completed",
    "arrivals",
    "reallocations",
    "demand_gpus",
    "busy_gpu_s",
    "held_gpu_s",
    "machines_down",
    "decision_s",
];

/// Headline aggregates extracted from a validated stream.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryReport {
    /// Scheduler display name from the `meta` header.
    pub scheduler: String,
    /// Number of `round` records.
    pub rounds: u64,
    /// `scheduled` total from the `summary` record.
    pub scheduled: u64,
    /// `preempted` total from the `summary` record.
    pub preempted: u64,
    /// `evicted` total from the `summary` record.
    pub evicted: u64,
    /// `completed` total from the `summary` record.
    pub completed: u64,
}

/// Validate one telemetry JSONL stream against the
/// [`TELEMETRY_SCHEMA`] contract and extract a [`TelemetryReport`].
///
/// Checks, in order: every line parses as a JSON object; the first line is a
/// `meta` record carrying the expected schema id and a scheduler name; every
/// middle line is a `round` record with all [`ROUND_KEYS`] present and
/// strictly increasing round numbers; the last line is a `summary` record.
/// Returns a rendered description of the first violation found.
pub fn validate_telemetry_jsonl(stream: &str) -> Result<TelemetryReport, String> {
    let lines: Vec<&str> = stream.lines().filter(|l| !l.trim().is_empty()).collect();
    if lines.len() < 2 {
        return Err(format!(
            "stream has {} lines; need at least meta + summary",
            lines.len()
        ));
    }
    for (i, line) in lines.iter().enumerate() {
        check_json(line).map_err(|e| format!("line {}: {e}: {line}", i + 1))?;
    }

    let meta = lines[0];
    if string_field(meta, "type").as_deref() != Some("meta") {
        return Err(format!("line 1 is not a meta record: {meta}"));
    }
    match string_field(meta, "schema") {
        Some(s) if s == TELEMETRY_SCHEMA => {}
        other => {
            return Err(format!(
                "meta schema is {other:?}, expected {TELEMETRY_SCHEMA:?}"
            ))
        }
    }
    let scheduler = string_field(meta, "scheduler")
        .ok_or_else(|| format!("meta record lacks a scheduler name: {meta}"))?;

    let last = *lines.last().expect("non-empty");
    if string_field(last, "type").as_deref() != Some("summary") {
        return Err(format!("last line is not a summary record: {last}"));
    }

    let mut rounds = 0u64;
    let mut prev_round: Option<u64> = None;
    for (i, line) in lines[1..lines.len() - 1].iter().enumerate() {
        if string_field(line, "type").as_deref() != Some("round") {
            return Err(format!("line {} is not a round record: {line}", i + 2));
        }
        for key in ROUND_KEYS {
            if number_field(line, key).is_none() {
                return Err(format!("line {} lacks round key {key:?}: {line}", i + 2));
            }
        }
        let n = number_field(line, "round").expect("checked above") as u64;
        if prev_round.is_some_and(|p| n <= p) {
            return Err(format!(
                "line {}: round numbers must strictly increase ({prev_round:?} then {n})",
                i + 2
            ));
        }
        prev_round = Some(n);
        rounds += 1;
    }

    let summary_count = |key: &str| -> Result<u64, String> {
        number_field(last, key)
            .map(|v| v as u64)
            .ok_or_else(|| format!("summary record lacks {key:?}: {last}"))
    };
    let report = TelemetryReport {
        scheduler,
        rounds,
        scheduled: summary_count("scheduled")?,
        preempted: summary_count("preempted")?,
        evicted: summary_count("evicted")?,
        completed: summary_count("completed")?,
    };
    if summary_count("rounds")? != rounds {
        return Err(format!(
            "summary claims {} rounds but the stream has {rounds}",
            summary_count("rounds")?
        ));
    }
    Ok(report)
}

/// Check that `line` is exactly one well-formed JSON object.
fn check_json(line: &str) -> Result<(), String> {
    let mut p = JsonChecker {
        bytes: line.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    if p.peek() != Some(b'{') {
        return Err("expected a JSON object".into());
    }
    p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(())
}

/// A minimal recursive-descent JSON syntax checker. Validates structure
/// only; values are not materialized (the schema layer above extracts the
/// few fields it needs by key search).
struct JsonChecker<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonChecker<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at offset {}",
                b as char,
                self.pos.saturating_sub(1)
            ))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at offset {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.value()?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(()),
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.value()?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(()),
                other => return Err(format!("expected ',' or ']', got {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.bump() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(()),
                Some(b'\\') => match self.bump() {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {}
                    Some(b'u') => {
                        for _ in 0..4 {
                            if !self.bump().is_some_and(|b| b.is_ascii_hexdigit()) {
                                return Err("bad \\u escape".into());
                            }
                        }
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(b) if b < 0x20 => return Err("raw control character in string".into()),
                Some(_) => {}
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits0 = self.digits()?;
        if digits0 == 0 {
            return Err("number with no digits".into());
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if self.digits()? == 0 {
                return Err("number with empty fraction".into());
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if self.digits()? == 0 {
                return Err("number with empty exponent".into());
            }
        }
        Ok(())
    }

    fn digits(&mut self) -> Result<usize, String> {
        let start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        Ok(self.pos - start)
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }
}

/// Extract the string value of a top-level `"key":"value"` pair by key
/// search. Sound here because the producer never nests objects whose inner
/// keys collide with the top-level schema keys (policy counters are
/// prefixed, e.g. `gavel.lp_solves`), and the line has already passed the
/// syntax checker.
fn string_field(line: &str, key: &str) -> Option<String> {
    let rest = field_value(line, key)?;
    let rest = rest.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(rest[..end].to_owned())
}

/// Extract a numeric field value by key search (same caveats as
/// [`string_field`]).
fn number_field(line: &str, key: &str) -> Option<f64> {
    let rest = field_value(line, key)?;
    let end = rest
        .find(|c: char| !matches!(c, '0'..='9' | '-' | '+' | '.' | 'e' | 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The text immediately after `"key":`.
fn field_value<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let at = line.find(&needle)?;
    Some(&line[at + needle.len()..])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stream() -> String {
        [
            format!(
                "{{\"type\":\"meta\",\"schema\":\"{TELEMETRY_SCHEMA}\",\"scheduler\":\"Hadar\",\
                 \"total_gpus\":60,\"machines\":15,\"jobs\":6,\"round_length_s\":360}}"
            ),
            "{\"type\":\"round\",\"round\":1,\"time_s\":0,\"queue_depth\":6,\"running\":4,\
             \"scheduled\":4,\"preempted\":0,\"evicted\":0,\"completed\":0,\"arrivals\":6,\
             \"reallocations\":4,\"demand_gpus\":12,\"busy_gpu_s\":1000,\"held_gpu_s\":1200,\
             \"machines_down\":0,\"decision_s\":0.01,\"util_by_type\":{\"K80\":0,\"V100\":8}}"
                .into(),
            "{\"type\":\"round\",\"round\":2,\"time_s\":360,\"queue_depth\":2,\"running\":2,\
             \"scheduled\":0,\"preempted\":0,\"evicted\":0,\"completed\":4,\"arrivals\":0,\
             \"reallocations\":0,\"demand_gpus\":4,\"busy_gpu_s\":900,\"held_gpu_s\":900,\
             \"machines_down\":0,\"decision_s\":0.002,\"util_by_type\":{\"K80\":0,\"V100\":4},\
             \"policy\":{\"hadar.alpha\":1.5}}"
                .into(),
            "{\"type\":\"summary\",\"rounds\":2,\"scheduled\":4,\"preempted\":0,\"evicted\":0,\
             \"completed\":6,\"max_queue_depth\":6}"
                .into(),
        ]
        .join("\n")
    }

    #[test]
    fn valid_stream_passes_and_reports() {
        let r = validate_telemetry_jsonl(&sample_stream()).unwrap();
        assert_eq!(r.scheduler, "Hadar");
        assert_eq!(r.rounds, 2);
        assert_eq!(r.scheduled, 4);
        assert_eq!(r.completed, 6);
        assert_eq!(r.evicted, 0);
    }

    #[test]
    fn malformed_json_is_rejected() {
        let s = sample_stream().replace("\"type\":\"summary\"", "\"type\":\"summary");
        let e = validate_telemetry_jsonl(&s).unwrap_err();
        assert!(e.contains("line 4"), "{e}");
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let s = sample_stream().replace(TELEMETRY_SCHEMA, "hadar.telemetry.v0");
        let e = validate_telemetry_jsonl(&s).unwrap_err();
        assert!(e.contains("schema"), "{e}");
    }

    #[test]
    fn missing_round_key_is_rejected() {
        let s = sample_stream().replace("\"machines_down\":0,", "");
        let e = validate_telemetry_jsonl(&s).unwrap_err();
        assert!(e.contains("machines_down"), "{e}");
    }

    #[test]
    fn non_increasing_rounds_are_rejected() {
        let s = sample_stream().replace("\"round\":2", "\"round\":1");
        let e = validate_telemetry_jsonl(&s).unwrap_err();
        assert!(e.contains("strictly increase"), "{e}");
    }

    #[test]
    fn round_count_mismatch_is_rejected() {
        let s = sample_stream().replace("\"rounds\":2", "\"rounds\":7");
        let e = validate_telemetry_jsonl(&s).unwrap_err();
        assert!(e.contains("7 rounds"), "{e}");
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let s: String = sample_stream().lines().next().unwrap().to_owned();
        assert!(validate_telemetry_jsonl(&s).is_err());
    }

    #[test]
    fn json_checker_accepts_and_rejects() {
        assert!(check_json("{}").is_ok());
        assert!(check_json("{\"a\":[1,2.5,-3e2],\"b\":{\"c\":null},\"d\":\"x\\\"y\"}").is_ok());
        assert!(check_json("{\"a\":1,}").is_err());
        assert!(check_json("{\"a\":}").is_err());
        assert!(check_json("[1]").is_err()); // top level must be an object
        assert!(check_json("{\"a\":01e}").is_err());
        assert!(check_json("{} trailing").is_err());
    }
}

#![warn(missing_docs)]

//! # hadar-metrics
//!
//! Metrics and reporting for scheduler evaluation (§IV of the paper):
//!
//! * [`stats`] — summary statistics (mean/median/percentiles/min-max) and
//!   empirical CDFs (the Fig. 3 "accumulative fraction of jobs completed"
//!   series),
//! * [`ftf`] — finish-time fairness (Themis' ρ metric, used in Fig. 5),
//! * [`report`] — plain-text table rendering for experiment binaries,
//! * [`csv`] — small CSV writer used by the experiment harness (kept
//!   dependency-free; see DESIGN.md §8 for why serde is not used),
//! * [`telemetry`] — validator/summarizer for the simulator's per-round
//!   telemetry JSONL stream (schema `hadar.telemetry.v1`).

//!
//! ```
//! use hadar_metrics::SummaryStats;
//! let s = SummaryStats::of(&[1.0, 2.0, 3.0, 4.0]);
//! assert_eq!(s.median, 2.5);
//! assert_eq!(s.max, 4.0);
//! ```

pub mod chart;
pub mod csv;
pub mod ftf;
pub mod report;
pub mod stats;
pub mod telemetry;

pub use chart::{bar_chart, line_chart};
pub use csv::CsvWriter;
pub use ftf::{finish_time_fairness, isolated_finish_time};
pub use report::Table;
pub use stats::{cdf_points, SummaryStats};
pub use telemetry::{validate_telemetry_jsonl, TelemetryReport};

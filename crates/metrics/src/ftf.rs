//! Finish-time fairness (FTF).
//!
//! Themis (NSDI '20) defines the fairness of a job's outcome as
//! `ρ_j = (f_j − a_j) / (f_j^isolated − a_j)`: the ratio of its shared-
//! cluster completion time to the completion time it would see with an
//! exclusive `1/n` slice of the cluster (`n` = number of jobs sharing it).
//! `ρ ≤ 1` means the job did at least as well as its fair share; the paper
//! compares schedulers on the average ρ (Fig. 5), lower being better.

use hadar_cluster::Cluster;
use hadar_workload::Job;

/// The completion time a job would achieve with an exclusive `1/n` share of
/// the cluster.
///
/// With a `1/n` time-slice of every GPU, the job's best achievable average
/// rate is `1/n` of its best full-cluster rate (all `W_j` workers on its
/// fastest type, assuming the cluster holds at least `W_j` of it; otherwise
/// the best feasible mixed placement bottlenecked by its slowest used type).
/// Hence `f^isolated − a_j = n · E_jN_j / rate_best`.
pub fn isolated_finish_time(job: &Job, cluster: &Cluster, n_jobs: usize) -> f64 {
    assert!(n_jobs >= 1);
    let rate = best_full_cluster_rate(job, cluster);
    if rate <= 0.0 {
        return f64::INFINITY;
    }
    n_jobs as f64 * job.total_iterations() / rate
}

/// The job's best aggregate rate given the cluster's type inventory: fill
/// `W_j` workers from the fastest types first; the bottleneck is the slowest
/// type actually used (Eq. 1b).
pub fn best_full_cluster_rate(job: &Job, cluster: &Cluster) -> f64 {
    let mut remaining = job.gang;
    let mut slowest_used = f64::INFINITY;
    for &r in job.profile.types_by_preference() {
        let avail = cluster.total_of_type(r);
        if avail == 0 {
            continue;
        }
        let take = remaining.min(avail);
        if take > 0 {
            slowest_used = slowest_used.min(job.profile.rate(r));
            remaining -= take;
        }
        if remaining == 0 {
            break;
        }
    }
    if remaining > 0 || !slowest_used.is_finite() {
        0.0 // cluster cannot host the gang at all
    } else {
        job.gang as f64 * slowest_used
    }
}

/// Finish-time fairness ρ of one job outcome.
///
/// `jct` is the observed `f_j − a_j`. Returns `ρ = jct / isolated_jct`.
pub fn finish_time_fairness(job: &Job, cluster: &Cluster, n_jobs: usize, jct: f64) -> f64 {
    assert!(jct >= 0.0 && jct.is_finite(), "JCT must be finite");
    let iso = isolated_finish_time(job, cluster, n_jobs);
    if iso.is_infinite() {
        return 0.0; // job could never run in isolation either; treat as fair
    }
    jct / iso
}

#[cfg(test)]
mod tests {
    use super::*;
    use hadar_cluster::JobId;
    use hadar_workload::DlTask;

    fn cluster() -> Cluster {
        Cluster::paper_simulation() // 20 × V100, 20 × P100, 20 × K80
    }

    fn job(gang: u32, epochs: u64) -> Job {
        Job::for_model(
            JobId(0),
            DlTask::ResNet18,
            cluster().catalog(),
            0.0,
            gang,
            epochs,
        )
    }

    #[test]
    fn best_rate_uses_fastest_type_when_available() {
        let j = job(4, 10);
        // ResNet-18 on V100 = 120 it/s; 4 workers fit in 20 V100s.
        assert_eq!(best_full_cluster_rate(&j, &cluster()), 480.0);
    }

    #[test]
    fn best_rate_bottlenecks_on_mixed_fill() {
        // Gang of 30 > 20 V100s: spills onto P100 (70 it/s) → bottleneck 70.
        let j = job(30, 10);
        assert_eq!(best_full_cluster_rate(&j, &cluster()), 30.0 * 70.0);
    }

    #[test]
    fn best_rate_zero_when_gang_cannot_fit() {
        let j = job(100, 10); // 100 > 60 total GPUs
        assert_eq!(best_full_cluster_rate(&j, &cluster()), 0.0);
    }

    #[test]
    fn isolated_time_scales_with_n() {
        let j = job(2, 10);
        let c = cluster();
        let t1 = isolated_finish_time(&j, &c, 1);
        let t4 = isolated_finish_time(&j, &c, 4);
        assert!((t4 / t1 - 4.0).abs() < 1e-12);
        // n=1: exclusive cluster at best rate = min_runtime.
        assert!((t1 - j.min_runtime()).abs() < 1e-9);
    }

    #[test]
    fn rho_is_one_for_exactly_fair_outcome() {
        let j = job(2, 10);
        let c = cluster();
        let iso = isolated_finish_time(&j, &c, 8);
        let rho = finish_time_fairness(&j, &c, 8, iso);
        assert!((rho - 1.0).abs() < 1e-12);
        // Finishing twice as fast as fair share → ρ = 0.5.
        let rho_fast = finish_time_fairness(&j, &c, 8, iso / 2.0);
        assert!((rho_fast - 0.5).abs() < 1e-12);
    }
}

//! Minimal CSV writer for experiment output files.
//!
//! Fields containing commas, quotes, or newlines are quoted per RFC 4180.
//! Kept dependency-free by design (DESIGN.md §8).

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Accumulates CSV rows and writes them to a file or string.
#[derive(Debug, Clone)]
pub struct CsvWriter {
    buf: String,
    width: usize,
}

impl CsvWriter {
    /// Start a CSV document with the given header columns.
    pub fn new<S: AsRef<str>>(header: &[S]) -> Self {
        let mut w = Self {
            buf: String::new(),
            width: header.len(),
        };
        w.push_row(header.iter().map(|s| s.as_ref().to_owned()).collect());
        w
    }

    /// Append a row of already-stringified cells.
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.width, "CSV row width mismatch");
        self.push_row(cells);
        self
    }

    /// Append a row of float cells, formatted with up to 6 significant
    /// decimals.
    pub fn row_f64(&mut self, cells: &[f64]) -> &mut Self {
        let strs: Vec<String> = cells.iter().map(|v| format_float(*v)).collect();
        self.row(strs)
    }

    fn push_row(&mut self, cells: Vec<String>) {
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            self.buf.push_str(&escape(c));
        }
        self.buf.push('\n');
    }

    /// The document so far.
    pub fn as_str(&self) -> &str {
        &self.buf
    }

    /// Write to `path`, creating parent directories as needed.
    pub fn write_to(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, &self.buf)
    }
}

fn escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        let mut out = String::with_capacity(field.len() + 2);
        out.push('"');
        for ch in field.chars() {
            if ch == '"' {
                out.push('"');
            }
            out.push(ch);
        }
        out.push('"');
        out
    } else {
        field.to_owned()
    }
}

fn format_float(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        // Integral values print without a fractional tail.
        format!("{}", v as i64)
    } else {
        let mut s = String::new();
        write!(s, "{v:.6}").expect("write to String cannot fail");
        // Trim trailing zeros but keep at least one decimal digit.
        while s.ends_with('0') {
            s.pop();
        }
        if s.ends_with('.') {
            s.push('0');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_document() {
        let mut w = CsvWriter::new(&["a", "b"]);
        w.row(vec!["1", "x"]);
        w.row_f64(&[2.5, 3.0]);
        assert_eq!(w.as_str(), "a,b\n1,x\n2.5,3\n");
    }

    #[test]
    fn escaping() {
        let mut w = CsvWriter::new(&["v"]);
        w.row(vec!["a,b"]);
        w.row(vec!["say \"hi\""]);
        w.row(vec!["two\nlines"]);
        assert_eq!(
            w.as_str(),
            "v\n\"a,b\"\n\"say \"\"hi\"\"\"\n\"two\nlines\"\n"
        );
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_checked() {
        let mut w = CsvWriter::new(&["a", "b"]);
        w.row(vec!["only-one"]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(format_float(1.0), "1");
        assert_eq!(format_float(0.123456789), "0.123457");
        assert_eq!(format_float(2.50), "2.5");
    }

    #[test]
    fn writes_file_with_parents() {
        let dir = std::env::temp_dir().join("hadar-metrics-test");
        let path = dir.join("sub").join("out.csv");
        let _ = std::fs::remove_dir_all(&dir);
        let mut w = CsvWriter::new(&["x"]);
        w.row(vec!["1"]);
        w.write_to(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "x\n1\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Terminal chart rendering for experiment binaries: multi-series step
//! plots (the Fig. 3 CDFs) and horizontal bar charts (Figs. 4–6), so the
//! regenerators show the figure *shape* directly without a plotting stack.

/// Render a multi-series line/step chart on a character grid.
///
/// Each series is a list of `(x, y)` points (assumed sorted by `x`); series
/// are drawn with distinct glyphs and listed in a legend. Returns a string
/// of `height` grid rows plus axes and legend.
pub fn line_chart(series: &[(&str, &[(f64, f64)])], width: usize, height: usize) -> String {
    assert!(width >= 16 && height >= 4, "chart too small");
    const GLYPHS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];
    let all: Vec<(f64, f64)> = series.iter().flat_map(|(_, s)| s.iter().copied()).collect();
    if all.is_empty() {
        return String::from("(no data)\n");
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for (x, y) in &all {
        x_min = x_min.min(*x);
        x_max = x_max.max(*x);
        y_min = y_min.min(*y);
        y_max = y_max.max(*y);
    }
    if x_max <= x_min {
        x_max = x_min + 1.0;
    }
    if y_max <= y_min {
        y_max = y_min + 1.0;
    }

    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, s)) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        // Step interpolation: for each column, the last y at or before the
        // column's x.
        let mut idx = 0usize;
        let mut last_y: Option<f64> = None;
        // Columns index both the x interpolation and `grid[row][col]`, so a
        // plain range is clearer than iterating rows.
        #[allow(clippy::needless_range_loop)]
        for col in 0..width {
            let x = x_min + (x_max - x_min) * col as f64 / (width - 1) as f64;
            while idx < s.len() && s[idx].0 <= x {
                last_y = Some(s[idx].1);
                idx += 1;
            }
            if let Some(y) = last_y {
                let row_f = (y - y_min) / (y_max - y_min) * (height - 1) as f64;
                let row = height - 1 - (row_f.round() as usize).min(height - 1);
                if grid[row][col] == ' ' {
                    grid[row][col] = glyph;
                }
            }
        }
    }

    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{y_max:>8.2} |")
        } else if i == height - 1 {
            format!("{y_min:>8.2} |")
        } else {
            format!("{:>8} |", "")
        };
        out.push_str(&label);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>8} +{}\n", "", "-".repeat(width)));
    out.push_str(&format!(
        "{:>8}  {:<width$.2}{:>.2}\n",
        "",
        x_min,
        x_max,
        width = width.saturating_sub(6)
    ));
    out.push_str("legend: ");
    for (si, (name, _)) in series.iter().enumerate() {
        if si > 0 {
            out.push_str("  ");
        }
        out.push(GLYPHS[si % GLYPHS.len()]);
        out.push(' ');
        out.push_str(name);
    }
    out.push('\n');
    out
}

/// Render a horizontal bar chart: one row per `(label, value)`, scaled to
/// `width` characters at the maximum value.
pub fn bar_chart(items: &[(&str, f64)], width: usize) -> String {
    assert!(width >= 8);
    let max = items.iter().map(|&(_, v)| v).fold(0.0f64, f64::max);
    let label_w = items.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, value) in items {
        assert!(*value >= 0.0, "bar values must be non-negative");
        let bars = if max > 0.0 {
            ((value / max) * width as f64).round() as usize
        } else {
            0
        };
        out.push_str(&format!(
            "{label:<label_w$} |{} {value:.2}\n",
            "#".repeat(bars)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_chart_draws_each_series() {
        let a: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, i as f64)).collect();
        let b: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, (9 - i) as f64)).collect();
        let out = line_chart(&[("up", &a), ("down", &b)], 30, 8);
        assert!(out.contains('*'), "series glyph missing:\n{out}");
        assert!(out.contains('o'));
        assert!(out.contains("legend: * up  o down"));
        // Axis labels.
        assert!(out.contains("9.00"));
        assert!(out.contains("0.00"));
    }

    #[test]
    fn line_chart_handles_empty_and_flat() {
        assert_eq!(line_chart(&[], 20, 5), "(no data)\n");
        let flat = [(0.0, 1.0), (5.0, 1.0)];
        let out = line_chart(&[("flat", &flat[..])], 20, 5);
        assert!(out.contains('*'));
    }

    #[test]
    fn bar_chart_scales_to_max() {
        let out = bar_chart(&[("a", 2.0), ("bb", 4.0), ("c", 0.0)], 10);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].contains(&"#".repeat(10)));
        assert!(lines[0].contains(&"#".repeat(5)));
        assert!(!lines[2].contains('#'));
        // Labels aligned.
        assert!(lines[0].starts_with("a  |"));
        assert!(lines[1].starts_with("bb |"));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn bar_chart_rejects_negative() {
        bar_chart(&[("x", -1.0)], 10);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_chart_rejected() {
        line_chart(&[], 4, 2);
    }
}

//! Plain-text table rendering for experiment output.

/// A simple left-aligned text table with a header row.
///
/// ```
/// use hadar_metrics::Table;
/// let mut t = Table::new(vec!["Scheduler", "JCT (h)"]);
/// t.row(vec!["Hadar".into(), "2.21".into()]);
/// t.row(vec!["Gavel".into(), "4.97".into()]);
/// let s = t.render();
/// assert!(s.contains("Hadar"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a data row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render to a string with a separator line under the header.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(c);
                // Pad all but the last column.
                if i + 1 < cols {
                    out.extend(std::iter::repeat_n(' ', widths[i] - c.len()));
                }
            }
            out.push('\n');
        };
        emit(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.extend(std::iter::repeat_n('-', total));
        out.push('\n');
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }
}

/// Format seconds as hours with two decimals (the unit of Table III).
pub fn fmt_hours(seconds: f64) -> String {
    format!("{:.2}", seconds / 3600.0)
}

/// Format a ratio like "2.3x".
pub fn fmt_ratio(r: f64) -> String {
    format!("{r:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(vec!["A", "Blong"]);
        t.row(vec!["xxxx".into(), "1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("A   "));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].starts_with("xxxx"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new(vec!["A"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_hours(7200.0), "2.00");
        assert_eq!(fmt_ratio(2.345), "2.35x");
    }
}

//! Rack topology: a second network tier for the communication cost model.
//!
//! The paper's cost model only distinguishes consolidated from spread
//! placements. Real clusters have (at least) two network tiers — NVLink/PCIe
//! within a machine, ToR switches within a rack, and an oversubscribed
//! aggregation fabric across racks — so gradient synchronization crossing a
//! rack boundary is measurably slower than crossing machines within one
//! rack. [`RackTopology`] assigns machines to racks; the
//! [`crate::CommCostModel`] charges an extra multiplicative penalty per rack
//! spanned. When a cluster carries no topology the model behaves exactly as
//! the flat two-level (machine/cross-machine) model.

use crate::allocation::JobPlacement;
use crate::machine::MachineId;

/// Identifier of a rack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RackId(pub u16);

/// Machine → rack assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RackTopology {
    rack_of: Vec<RackId>,
}

impl RackTopology {
    /// Build from an explicit assignment (index = machine id).
    pub fn new(rack_of: Vec<RackId>) -> Self {
        Self { rack_of }
    }

    /// Assign `num_machines` machines round-chunk-wise to racks of
    /// `machines_per_rack` (the common row-of-servers layout).
    ///
    /// # Panics
    /// Panics if `machines_per_rack` is 0.
    pub fn uniform(num_machines: usize, machines_per_rack: usize) -> Self {
        assert!(machines_per_rack >= 1, "racks must hold at least 1 machine");
        Self {
            rack_of: (0..num_machines)
                .map(|h| RackId((h / machines_per_rack) as u16))
                .collect(),
        }
    }

    /// The rack of machine `h`. Machines beyond the assignment get their own
    /// synthetic rack (conservative: counted as remote).
    pub fn rack_of(&self, h: MachineId) -> RackId {
        self.rack_of
            .get(h.index())
            .copied()
            .unwrap_or(RackId(u16::MAX - (h.index() % 1000) as u16))
    }

    /// Number of racks in the assignment.
    pub fn num_racks(&self) -> usize {
        let mut ids: Vec<RackId> = self.rack_of.clone();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// Number of distinct racks a placement touches.
    pub fn racks_spanned(&self, placement: &JobPlacement) -> usize {
        let mut ids: Vec<RackId> = placement
            .slices()
            .iter()
            .map(|s| self.rack_of(s.machine))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::PlacementSlice;
    use crate::catalog::GpuTypeId;

    #[test]
    fn uniform_assignment() {
        let t = RackTopology::uniform(7, 3);
        assert_eq!(t.rack_of(MachineId(0)), RackId(0));
        assert_eq!(t.rack_of(MachineId(2)), RackId(0));
        assert_eq!(t.rack_of(MachineId(3)), RackId(1));
        assert_eq!(t.rack_of(MachineId(6)), RackId(2));
        assert_eq!(t.num_racks(), 3);
    }

    #[test]
    fn unknown_machines_are_remote() {
        let t = RackTopology::uniform(2, 2);
        assert_ne!(t.rack_of(MachineId(50)), RackId(0));
    }

    #[test]
    fn racks_spanned_counts_distinct() {
        let t = RackTopology::uniform(6, 2);
        let p = JobPlacement::from_slices([
            PlacementSlice {
                machine: MachineId(0),
                gpu: GpuTypeId(0),
                count: 1,
            },
            PlacementSlice {
                machine: MachineId(1),
                gpu: GpuTypeId(0),
                count: 1,
            },
            PlacementSlice {
                machine: MachineId(4),
                gpu: GpuTypeId(0),
                count: 1,
            },
        ]);
        // Machines 0,1 share rack 0; machine 4 is rack 2.
        assert_eq!(t.racks_spanned(&p), 2);
        assert_eq!(t.racks_spanned(&JobPlacement::empty()), 0);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_sized_racks_rejected() {
        RackTopology::uniform(4, 0);
    }
}

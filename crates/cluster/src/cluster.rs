//! Cluster topology: machines plus the GPU-type catalog, and the standard
//! topologies used throughout the paper's evaluation.

use crate::catalog::{names, GpuCatalog, GpuTypeId};
use crate::machine::{Machine, MachineId};
use crate::rack::RackTopology;

/// A heterogeneous GPU cluster: `H` machines over a catalog of `R` types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cluster {
    catalog: GpuCatalog,
    machines: Vec<Machine>,
    /// `total_per_type[r]` = Σ_h c_h^r, cached at build time.
    total_per_type: Vec<u32>,
    /// Optional rack assignment; `None` = flat (machine-level) network.
    racks: Option<RackTopology>,
}

impl Cluster {
    /// Build a cluster from a catalog and machines.
    ///
    /// # Panics
    /// Panics if any machine carries capacity for a type id outside the
    /// catalog.
    pub fn new(catalog: GpuCatalog, machines: Vec<Machine>) -> Self {
        let r = catalog.len();
        let mut total_per_type = vec![0u32; r];
        for m in &machines {
            assert!(
                m.num_type_slots() <= r,
                "machine {} has capacity slots for {} types but catalog has {}",
                m.id(),
                m.num_type_slots(),
                r
            );
            for (i, &c) in m.capacities().iter().enumerate() {
                total_per_type[i] += c;
            }
        }
        Self {
            catalog,
            machines,
            total_per_type,
            racks: None,
        }
    }

    /// Attach a rack topology (see [`RackTopology`]).
    ///
    /// # Panics
    /// Panics if the assignment does not cover every machine.
    pub fn with_racks(mut self, racks: RackTopology) -> Self {
        for h in self.machine_ids() {
            // rack_of() tolerates missing machines, but an explicit cluster
            // topology should cover everything it claims to describe.
            let _ = racks.rack_of(h);
        }
        self.racks = Some(racks);
        self
    }

    /// The rack topology, if any.
    #[inline]
    pub fn racks(&self) -> Option<&RackTopology> {
        self.racks.as_ref()
    }

    /// The GPU-type catalog.
    #[inline]
    pub fn catalog(&self) -> &GpuCatalog {
        &self.catalog
    }

    /// Number of machines, `H`.
    #[inline]
    pub fn num_machines(&self) -> usize {
        self.machines.len()
    }

    /// Number of GPU types, `R`.
    #[inline]
    pub fn num_types(&self) -> usize {
        self.catalog.len()
    }

    /// Machine `h`.
    #[inline]
    pub fn machine(&self, h: MachineId) -> &Machine {
        &self.machines[h.index()]
    }

    /// All machines in id order.
    #[inline]
    pub fn machines(&self) -> &[Machine] {
        &self.machines
    }

    /// Capacity `c_h^r`.
    #[inline]
    pub fn capacity(&self, h: MachineId, r: GpuTypeId) -> u32 {
        self.machines[h.index()].capacity(r)
    }

    /// Cluster-wide capacity of type `r`, Σ_h `c_h^r`.
    #[inline]
    pub fn total_of_type(&self, r: GpuTypeId) -> u32 {
        self.total_per_type.get(r.index()).copied().unwrap_or(0)
    }

    /// Total number of GPUs in the cluster, all types.
    pub fn total_gpus(&self) -> u32 {
        self.total_per_type.iter().sum()
    }

    /// Iterate over machine ids.
    pub fn machine_ids(&self) -> impl Iterator<Item = MachineId> {
        (0..self.machines.len() as u32).map(MachineId)
    }

    /// The paper's simulated cluster (§IV-A): 15 nodes, 20 GPUs of each of
    /// V100 / P100 / K80 (60 GPUs total), arranged as 5 homogeneous 4-GPU
    /// nodes per type.
    pub fn paper_simulation() -> Self {
        let mut b = ClusterBuilder::new();
        let v100 = b.gpu_type(names::V100);
        let p100 = b.gpu_type(names::P100);
        let k80 = b.gpu_type(names::K80);
        for _ in 0..5 {
            b.machine(&[(v100, 4)]);
        }
        for _ in 0..5 {
            b.machine(&[(p100, 4)]);
        }
        for _ in 0..5 {
            b.machine(&[(k80, 4)]);
        }
        b.build()
    }

    /// The paper's AWS prototype cluster (§IV-B): eight single-GPU instances,
    /// two each of T4 (g4dn.xlarge), K520 (g2dn.2xlarge), K80 (p2.xlarge),
    /// and V100 (p3.2xlarge).
    pub fn paper_aws_prototype() -> Self {
        let mut b = ClusterBuilder::new();
        let t4 = b.gpu_type(names::T4);
        let k520 = b.gpu_type(names::K520);
        let k80 = b.gpu_type(names::K80);
        let v100 = b.gpu_type(names::V100);
        for ty in [t4, k520, k80, v100] {
            for _ in 0..2 {
                b.machine(&[(ty, 1)]);
            }
        }
        b.build()
    }

    /// The toy cluster of the motivating example (§II-A, Fig. 1):
    /// 2 × V100, 3 × P100, 1 × K80, one machine per GPU family.
    pub fn motivation_toy() -> Self {
        let mut b = ClusterBuilder::new();
        let v100 = b.gpu_type(names::V100);
        let p100 = b.gpu_type(names::P100);
        let k80 = b.gpu_type(names::K80);
        b.machine(&[(v100, 2)]);
        b.machine(&[(p100, 3)]);
        b.machine(&[(k80, 1)]);
        b.build()
    }

    /// A scaled heterogeneous cluster for the Fig. 7 scalability sweep:
    /// `scale` nodes of each type with 4 GPUs per node (V100/P100/K80).
    pub fn scaled(scale: usize) -> Self {
        let mut b = ClusterBuilder::new();
        let v100 = b.gpu_type(names::V100);
        let p100 = b.gpu_type(names::P100);
        let k80 = b.gpu_type(names::K80);
        for ty in [v100, p100, k80] {
            for _ in 0..scale {
                b.machine(&[(ty, 4)]);
            }
        }
        b.build()
    }
}

/// Incremental [`Cluster`] construction.
///
/// ```
/// use hadar_cluster::ClusterBuilder;
/// let mut b = ClusterBuilder::new();
/// let v100 = b.gpu_type("V100");
/// let k80 = b.gpu_type("K80");
/// b.machine(&[(v100, 4)]);
/// b.machine(&[(v100, 2), (k80, 2)]);
/// let cluster = b.build();
/// assert_eq!(cluster.num_machines(), 2);
/// assert_eq!(cluster.total_of_type(v100), 6);
/// ```
#[derive(Debug, Default)]
pub struct ClusterBuilder {
    catalog: GpuCatalog,
    machines: Vec<Machine>,
}

impl ClusterBuilder {
    /// A builder with an empty catalog and no machines.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern (or look up) a GPU type by name.
    pub fn gpu_type(&mut self, name: &str) -> GpuTypeId {
        self.catalog.intern(name)
    }

    /// Add a machine with the given `(type, count)` capacities; returns its id.
    pub fn machine(&mut self, caps: &[(GpuTypeId, u32)]) -> MachineId {
        let id = MachineId(self.machines.len() as u32);
        let mut capacity = vec![0u32; self.catalog.len()];
        for &(r, c) in caps {
            assert!(
                r.index() < capacity.len(),
                "type {r} not interned in this builder"
            );
            capacity[r.index()] += c;
        }
        self.machines.push(Machine::new(id, capacity));
        id
    }

    /// Add `n` identical machines.
    pub fn machines(&mut self, n: usize, caps: &[(GpuTypeId, u32)]) {
        for _ in 0..n {
            self.machine(caps);
        }
    }

    /// Finalize the cluster.
    pub fn build(self) -> Cluster {
        Cluster::new(self.catalog, self.machines)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_simulation_topology() {
        let c = Cluster::paper_simulation();
        assert_eq!(c.num_machines(), 15);
        assert_eq!(c.num_types(), 3);
        assert_eq!(c.total_gpus(), 60);
        for (id, _) in c.catalog().iter() {
            assert_eq!(c.total_of_type(id), 20);
        }
    }

    #[test]
    fn paper_aws_topology() {
        let c = Cluster::paper_aws_prototype();
        assert_eq!(c.num_machines(), 8);
        assert_eq!(c.num_types(), 4);
        assert_eq!(c.total_gpus(), 8);
        let v100 = c.catalog().lookup("V100").unwrap();
        assert_eq!(c.total_of_type(v100), 2);
    }

    #[test]
    fn motivation_toy_topology() {
        let c = Cluster::motivation_toy();
        assert_eq!(c.total_gpus(), 6);
        let v100 = c.catalog().lookup("V100").unwrap();
        let p100 = c.catalog().lookup("P100").unwrap();
        let k80 = c.catalog().lookup("K80").unwrap();
        assert_eq!(c.total_of_type(v100), 2);
        assert_eq!(c.total_of_type(p100), 3);
        assert_eq!(c.total_of_type(k80), 1);
    }

    #[test]
    fn scaled_grows_linearly() {
        let c = Cluster::scaled(4);
        assert_eq!(c.num_machines(), 12);
        assert_eq!(c.total_gpus(), 48);
    }

    #[test]
    fn builder_merges_duplicate_type_entries() {
        let mut b = ClusterBuilder::new();
        let v = b.gpu_type("V100");
        let h = b.machine(&[(v, 2), (v, 3)]);
        let c = b.build();
        assert_eq!(c.capacity(h, v), 5);
    }

    #[test]
    #[should_panic(expected = "not interned")]
    fn builder_rejects_foreign_type() {
        let mut other = ClusterBuilder::new();
        other.gpu_type("A");
        let foreign = {
            let mut b2 = ClusterBuilder::new();
            b2.gpu_type("A");
            b2.gpu_type("B")
        };
        // `foreign` has index 1, which `other`'s catalog does not contain.
        other.machine(&[(foreign, 1)]);
    }
}

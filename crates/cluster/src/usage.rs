//! Occupied-GPU bookkeeping: the `γ_h^r(t)` quantities that drive the
//! primal–dual price function (Eq. 5 of the paper).

use crate::catalog::GpuTypeId;
use crate::cluster::Cluster;
use crate::machine::MachineId;

/// Per-(machine, type) occupied counts, dense `H × R` matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Usage {
    num_types: usize,
    /// Row-major `used[h * R + r]`.
    used: Vec<u32>,
}

impl Usage {
    /// All-zero usage for `cluster`.
    pub fn empty(cluster: &Cluster) -> Self {
        Self {
            num_types: cluster.num_types(),
            used: vec![0; cluster.num_machines() * cluster.num_types()],
        }
    }

    #[inline]
    fn idx(&self, h: MachineId, r: GpuTypeId) -> usize {
        h.index() * self.num_types + r.index()
    }

    /// Occupied count `γ_h^r`.
    #[inline]
    pub fn get(&self, h: MachineId, r: GpuTypeId) -> u32 {
        self.used[self.idx(h, r)]
    }

    /// Add `count` occupied GPUs of type `r` on machine `h`.
    #[inline]
    pub fn add(&mut self, h: MachineId, r: GpuTypeId, count: u32) {
        let i = self.idx(h, r);
        self.used[i] += count;
    }

    /// Release `count` occupied GPUs.
    ///
    /// # Panics
    /// Panics (in debug builds, via underflow check) if releasing more than
    /// held.
    #[inline]
    pub fn sub(&mut self, h: MachineId, r: GpuTypeId, count: u32) {
        let i = self.idx(h, r);
        self.used[i] = self.used[i]
            .checked_sub(count)
            .expect("usage underflow: released more GPUs than held");
    }

    /// Free GPUs of type `r` on machine `h`, `c_h^r − γ_h^r`
    /// (saturating at 0 if over-allocated).
    #[inline]
    pub fn free(&self, cluster: &Cluster, h: MachineId, r: GpuTypeId) -> u32 {
        cluster.capacity(h, r).saturating_sub(self.get(h, r))
    }

    /// Total free GPUs of type `r` across the cluster.
    pub fn free_of_type(&self, cluster: &Cluster, r: GpuTypeId) -> u32 {
        cluster
            .machine_ids()
            .map(|h| self.free(cluster, h, r))
            .sum()
    }

    /// Total free GPUs on machine `h` across all types.
    pub fn free_on_machine(&self, cluster: &Cluster, h: MachineId) -> u32 {
        cluster
            .catalog()
            .ids()
            .map(|r| self.free(cluster, h, r))
            .sum()
    }

    /// Total occupied GPUs across the cluster.
    pub fn total_used(&self) -> u32 {
        self.used.iter().sum()
    }

    /// Whether every GPU in the cluster is occupied.
    pub fn is_cluster_full(&self, cluster: &Cluster) -> bool {
        self.total_used() >= cluster.total_gpus()
    }

    /// A compact fingerprint of the usage state, used as a memoization key
    /// by the dynamic-programming dual subroutine (Algorithm 2).
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a over the raw counts: cheap, deterministic, and stable
        // across runs (unlike `DefaultHasher` with random keys).
        let mut h: u64 = 0xcbf29ce484222325;
        for &v in &self.used {
            h ^= v as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// Raw occupied counts, row-major `[h][r]`.
    pub fn raw(&self) -> &[u32] {
        &self.used
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterBuilder;

    fn cl() -> (Cluster, GpuTypeId, GpuTypeId) {
        let mut b = ClusterBuilder::new();
        let a = b.gpu_type("A");
        let c = b.gpu_type("C");
        b.machine(&[(a, 4)]);
        b.machine(&[(a, 1), (c, 2)]);
        (b.build(), a, c)
    }

    #[test]
    fn add_sub_free_roundtrip() {
        let (cl, a, c) = cl();
        let mut u = Usage::empty(&cl);
        u.add(MachineId(0), a, 3);
        assert_eq!(u.get(MachineId(0), a), 3);
        assert_eq!(u.free(&cl, MachineId(0), a), 1);
        u.sub(MachineId(0), a, 2);
        assert_eq!(u.free(&cl, MachineId(0), a), 3);
        assert_eq!(u.free_of_type(&cl, a), 4);
        assert_eq!(u.free_of_type(&cl, c), 2);
        assert_eq!(u.free_on_machine(&cl, MachineId(1)), 3);
    }

    #[test]
    #[should_panic(expected = "usage underflow")]
    fn sub_underflow_panics() {
        let (cl, a, _) = cl();
        let mut u = Usage::empty(&cl);
        u.sub(MachineId(0), a, 1);
    }

    #[test]
    fn cluster_full_detection() {
        let (cl, a, c) = cl();
        let mut u = Usage::empty(&cl);
        assert!(!u.is_cluster_full(&cl));
        u.add(MachineId(0), a, 4);
        u.add(MachineId(1), a, 1);
        u.add(MachineId(1), c, 2);
        assert!(u.is_cluster_full(&cl));
        assert_eq!(u.total_used(), 7);
    }

    #[test]
    fn fingerprint_distinguishes_states() {
        let (cl, a, _) = cl();
        let mut u1 = Usage::empty(&cl);
        let u0 = u1.clone();
        u1.add(MachineId(0), a, 1);
        assert_ne!(u0.fingerprint(), u1.fingerprint());
        let mut u2 = Usage::empty(&cl);
        u2.add(MachineId(0), a, 1);
        assert_eq!(u1.fingerprint(), u2.fingerprint());
    }
}

//! Occupied-GPU bookkeeping: the `γ_h^r(t)` quantities that drive the
//! primal–dual price function (Eq. 5 of the paper).

use crate::allocation::PlacementSlice;
use crate::catalog::GpuTypeId;
use crate::cluster::Cluster;
use crate::machine::MachineId;

/// Per-(machine, type) occupied counts, dense `H × R` matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Usage {
    num_types: usize,
    /// Row-major `used[h * R + r]`.
    used: Vec<u32>,
    /// Incrementally maintained position-weighted hash of `used` (see
    /// [`Usage::fingerprint`]): `Σ_i weight(i)·used[i]` mod 2⁶⁴.
    hash: u64,
    /// Per-type slices of the same weighted sum: `col_hashes[r]` covers the
    /// cells `used[h·R + r]` for every machine `h` (see
    /// [`Usage::column_fingerprint`]). The full `hash` is their sum.
    col_hashes: Vec<u64>,
    /// Incrementally maintained `Σ used[i]`.
    total: u32,
}

/// The per-index fingerprint weight: splitmix64 of the flat index. The
/// output is a fixed pseudo-random 64-bit constant per position, so the
/// weighted sum separates positions and counts without scanning the matrix.
#[inline]
fn weight(i: usize) -> u64 {
    let mut z = (i as u64).wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl Usage {
    /// All-zero usage for `cluster`.
    pub fn empty(cluster: &Cluster) -> Self {
        Self {
            num_types: cluster.num_types(),
            used: vec![0; cluster.num_machines() * cluster.num_types()],
            hash: 0,
            col_hashes: vec![0; cluster.num_types()],
            total: 0,
        }
    }

    #[inline]
    fn idx(&self, h: MachineId, r: GpuTypeId) -> usize {
        h.index() * self.num_types + r.index()
    }

    /// Occupied count `γ_h^r`.
    #[inline]
    pub fn get(&self, h: MachineId, r: GpuTypeId) -> u32 {
        self.used[self.idx(h, r)]
    }

    /// Add `count` occupied GPUs of type `r` on machine `h`.
    #[inline]
    pub fn add(&mut self, h: MachineId, r: GpuTypeId, count: u32) {
        let i = self.idx(h, r);
        let delta = weight(i).wrapping_mul(count as u64);
        self.used[i] += count;
        self.hash = self.hash.wrapping_add(delta);
        self.col_hashes[r.index()] = self.col_hashes[r.index()].wrapping_add(delta);
        self.total += count;
    }

    /// Release `count` occupied GPUs.
    ///
    /// # Panics
    /// Panics (in debug builds, via underflow check) if releasing more than
    /// held.
    #[inline]
    pub fn sub(&mut self, h: MachineId, r: GpuTypeId, count: u32) {
        let i = self.idx(h, r);
        let delta = weight(i).wrapping_mul(count as u64);
        self.used[i] = self.used[i]
            .checked_sub(count)
            .expect("usage underflow: released more GPUs than held");
        self.hash = self.hash.wrapping_sub(delta);
        self.col_hashes[r.index()] = self.col_hashes[r.index()].wrapping_sub(delta);
        self.total -= count;
    }

    /// Free GPUs of type `r` on machine `h`, `c_h^r − γ_h^r`
    /// (saturating at 0 if over-allocated).
    #[inline]
    pub fn free(&self, cluster: &Cluster, h: MachineId, r: GpuTypeId) -> u32 {
        cluster.capacity(h, r).saturating_sub(self.get(h, r))
    }

    /// Total free GPUs of type `r` across the cluster.
    pub fn free_of_type(&self, cluster: &Cluster, r: GpuTypeId) -> u32 {
        cluster
            .machine_ids()
            .map(|h| self.free(cluster, h, r))
            .sum()
    }

    /// Total free GPUs on machine `h` across all types.
    pub fn free_on_machine(&self, cluster: &Cluster, h: MachineId) -> u32 {
        cluster
            .catalog()
            .ids()
            .map(|r| self.free(cluster, h, r))
            .sum()
    }

    /// Total occupied GPUs across the cluster.
    #[inline]
    pub fn total_used(&self) -> u32 {
        self.total
    }

    /// Whether every GPU in the cluster is occupied.
    pub fn is_cluster_full(&self, cluster: &Cluster) -> bool {
        self.total_used() >= cluster.total_gpus()
    }

    /// A compact fingerprint of the usage state, used as a memoization key
    /// by the dynamic-programming dual subroutine (Algorithm 2).
    ///
    /// Maintained incrementally in [`Usage::add`]/[`Usage::sub`] as the
    /// position-weighted sum `Σ_i weight(i)·used[i]` (mod 2⁶⁴) with fixed
    /// splitmix64 per-index weights, so reading it is O(1) instead of a scan
    /// over the whole `H × R` matrix — the DP subroutine fingerprints the
    /// usage at every node it expands, which made the scan the hot path of
    /// each scheduling round. Deterministic and stable across runs and
    /// threads (unlike `DefaultHasher` with random keys).
    #[inline]
    pub fn fingerprint(&self) -> u64 {
        self.hash
    }

    /// The fingerprint this usage *would* report after [`Usage::add`]-ing
    /// every slice of a placement — computed without cloning or mutating.
    ///
    /// Because the hash is the position-weighted sum `Σ_i weight(i)·used[i]`
    /// (mod 2⁶⁴), additions commute and the post-add hash is just the current
    /// hash plus the slices' weighted counts. The DP dual subroutine uses
    /// this to probe its memo table for an already-expanded child state
    /// before paying for the `H × R` matrix clone.
    #[inline]
    pub fn fingerprint_after(&self, slices: &[PlacementSlice]) -> u64 {
        let mut h = self.hash;
        for s in slices {
            let i = self.idx(s.machine, s.gpu);
            h = h.wrapping_add(weight(i).wrapping_mul(s.count as u64));
        }
        h
    }

    /// Fingerprint of a single GPU type's column of the usage matrix: the
    /// position-weighted sum over `used[h·R + r]` for every machine `h`,
    /// maintained incrementally like [`Usage::fingerprint`] (which equals
    /// the sum of all column fingerprints).
    ///
    /// Candidate generation orders machines per GPU type, and an allocation
    /// touches only the columns of the types it actually uses — so a memo
    /// keyed by `(type, column fingerprint)` stays valid across allocations
    /// to *other* types, where the full fingerprint would already differ.
    #[inline]
    pub fn column_fingerprint(&self, r: GpuTypeId) -> u64 {
        self.col_hashes[r.index()]
    }

    /// Raw occupied counts, row-major `[h][r]`.
    pub fn raw(&self) -> &[u32] {
        &self.used
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterBuilder;

    fn cl() -> (Cluster, GpuTypeId, GpuTypeId) {
        let mut b = ClusterBuilder::new();
        let a = b.gpu_type("A");
        let c = b.gpu_type("C");
        b.machine(&[(a, 4)]);
        b.machine(&[(a, 1), (c, 2)]);
        (b.build(), a, c)
    }

    #[test]
    fn add_sub_free_roundtrip() {
        let (cl, a, c) = cl();
        let mut u = Usage::empty(&cl);
        u.add(MachineId(0), a, 3);
        assert_eq!(u.get(MachineId(0), a), 3);
        assert_eq!(u.free(&cl, MachineId(0), a), 1);
        u.sub(MachineId(0), a, 2);
        assert_eq!(u.free(&cl, MachineId(0), a), 3);
        assert_eq!(u.free_of_type(&cl, a), 4);
        assert_eq!(u.free_of_type(&cl, c), 2);
        assert_eq!(u.free_on_machine(&cl, MachineId(1)), 3);
    }

    #[test]
    #[should_panic(expected = "usage underflow")]
    fn sub_underflow_panics() {
        let (cl, a, _) = cl();
        let mut u = Usage::empty(&cl);
        u.sub(MachineId(0), a, 1);
    }

    #[test]
    fn cluster_full_detection() {
        let (cl, a, c) = cl();
        let mut u = Usage::empty(&cl);
        assert!(!u.is_cluster_full(&cl));
        u.add(MachineId(0), a, 4);
        u.add(MachineId(1), a, 1);
        u.add(MachineId(1), c, 2);
        assert!(u.is_cluster_full(&cl));
        assert_eq!(u.total_used(), 7);
    }

    #[test]
    fn fingerprint_distinguishes_states() {
        let (cl, a, _) = cl();
        let mut u1 = Usage::empty(&cl);
        let u0 = u1.clone();
        u1.add(MachineId(0), a, 1);
        assert_ne!(u0.fingerprint(), u1.fingerprint());
        let mut u2 = Usage::empty(&cl);
        u2.add(MachineId(0), a, 1);
        assert_eq!(u1.fingerprint(), u2.fingerprint());
    }

    #[test]
    fn fingerprint_is_path_independent() {
        // The incremental hash must depend only on the final counts, not on
        // the order or granularity of the add/sub calls that produced them.
        let (cl, a, c) = cl();
        let mut u1 = Usage::empty(&cl);
        u1.add(MachineId(0), a, 3);
        u1.add(MachineId(1), c, 2);
        u1.sub(MachineId(0), a, 1);

        let mut u2 = Usage::empty(&cl);
        u2.add(MachineId(1), c, 1);
        u2.add(MachineId(0), a, 1);
        u2.add(MachineId(1), c, 1);
        u2.add(MachineId(0), a, 1);

        assert_eq!(u1, u2);
        assert_eq!(u1.fingerprint(), u2.fingerprint());
        assert_eq!(u1.total_used(), 4);

        // Releasing everything returns to the empty fingerprint.
        u1.sub(MachineId(0), a, 2);
        u1.sub(MachineId(1), c, 2);
        assert_eq!(u1.fingerprint(), Usage::empty(&cl).fingerprint());
        assert_eq!(u1.total_used(), 0);
    }

    #[test]
    fn fingerprint_after_matches_actual_adds() {
        let (cl, a, c) = cl();
        let mut u = Usage::empty(&cl);
        u.add(MachineId(0), a, 2);
        let slices = vec![
            PlacementSlice {
                machine: MachineId(0),
                gpu: a,
                count: 1,
            },
            PlacementSlice {
                machine: MachineId(1),
                gpu: c,
                count: 2,
            },
        ];
        let predicted = u.fingerprint_after(&slices);
        assert_ne!(predicted, u.fingerprint());
        for s in &slices {
            u.add(s.machine, s.gpu, s.count);
        }
        assert_eq!(predicted, u.fingerprint());
        // Empty slice list predicts the unchanged fingerprint.
        assert_eq!(u.fingerprint_after(&[]), u.fingerprint());
    }

    #[test]
    fn column_fingerprint_tracks_only_its_type() {
        let (cl, a, c) = cl();
        let mut u = Usage::empty(&cl);
        let (a0, c0) = (u.column_fingerprint(a), u.column_fingerprint(c));
        u.add(MachineId(1), a, 1);
        // Only the touched column moves…
        assert_ne!(u.column_fingerprint(a), a0);
        assert_eq!(u.column_fingerprint(c), c0);
        u.add(MachineId(1), c, 2);
        assert_ne!(u.column_fingerprint(c), c0);
        // …the full fingerprint is the sum of the columns…
        assert_eq!(
            u.fingerprint(),
            u.column_fingerprint(a)
                .wrapping_add(u.column_fingerprint(c))
        );
        // …and releasing restores the column exactly (path independence).
        u.sub(MachineId(1), c, 2);
        assert_eq!(u.column_fingerprint(c), c0);
        // Same column content reached differently fingerprints identically.
        let mut v = Usage::empty(&cl);
        v.add(MachineId(1), a, 1);
        assert_eq!(v.column_fingerprint(a), u.column_fingerprint(a));
        // Position matters within a column.
        let mut w1 = Usage::empty(&cl);
        w1.add(MachineId(0), a, 1);
        assert_ne!(w1.column_fingerprint(a), v.column_fingerprint(a));
    }

    #[test]
    fn fingerprint_separates_count_and_position() {
        // Same total spread differently must fingerprint differently: a
        // count-only (unweighted) sum would collide here.
        let (cl, a, _) = cl();
        let mut u1 = Usage::empty(&cl);
        u1.add(MachineId(0), a, 2);
        let mut u2 = Usage::empty(&cl);
        u2.add(MachineId(0), a, 1);
        u2.add(MachineId(1), a, 1);
        assert_ne!(u1.fingerprint(), u2.fingerprint());
    }
}

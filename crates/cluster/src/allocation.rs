//! Scheduling decisions: `w_{jh}^r(t)` — which GPUs each job holds in a round.

use std::collections::BTreeMap;

use crate::catalog::GpuTypeId;
use crate::cluster::Cluster;
use crate::machine::MachineId;
use crate::usage::Usage;
use crate::JobId;

/// One slice of a job's placement: `count` GPUs of one type on one machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlacementSlice {
    /// Host machine.
    pub machine: MachineId,
    /// Accelerator type.
    pub gpu: GpuTypeId,
    /// Number of GPUs, `w_{jh}^r(t) > 0`.
    pub count: u32,
}

/// The complete placement of one job in one round: the set of
/// `(machine, type, count)` slices summing to the gang size `W_j`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct JobPlacement {
    slices: Vec<PlacementSlice>,
}

impl JobPlacement {
    /// An empty placement (job not scheduled this round).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Build from slices; zero-count slices are dropped, and slices sharing
    /// `(machine, type)` are merged so equality is structural.
    pub fn from_slices(slices: impl IntoIterator<Item = PlacementSlice>) -> Self {
        let mut merged: BTreeMap<(MachineId, GpuTypeId), u32> = BTreeMap::new();
        for s in slices {
            if s.count > 0 {
                *merged.entry((s.machine, s.gpu)).or_default() += s.count;
            }
        }
        Self {
            slices: merged
                .into_iter()
                .map(|((machine, gpu), count)| PlacementSlice {
                    machine,
                    gpu,
                    count,
                })
                .collect(),
        }
    }

    /// Convenience: a placement of `count` GPUs of one type on one machine.
    pub fn single(machine: MachineId, gpu: GpuTypeId, count: u32) -> Self {
        Self::from_slices([PlacementSlice {
            machine,
            gpu,
            count,
        }])
    }

    /// The placement slices in canonical `(machine, type)` order.
    pub fn slices(&self) -> &[PlacementSlice] {
        &self.slices
    }

    /// Total worker count, Σ `w_{jh}^r`.
    pub fn total_workers(&self) -> u32 {
        self.slices.iter().map(|s| s.count).sum()
    }

    /// Whether the job received no GPUs.
    pub fn is_empty(&self) -> bool {
        self.slices.is_empty()
    }

    /// Number of distinct machines spanned (1 ⇒ consolidated).
    pub fn num_machines(&self) -> usize {
        let mut ms: Vec<MachineId> = self.slices.iter().map(|s| s.machine).collect();
        ms.dedup(); // slices are sorted by (machine, type)
        ms.len()
    }

    /// Whether all workers sit on a single machine.
    pub fn is_consolidated(&self) -> bool {
        self.num_machines() <= 1
    }

    /// Distinct GPU types used, in ascending id order.
    pub fn gpu_types(&self) -> Vec<GpuTypeId> {
        let mut ts: Vec<GpuTypeId> = self.slices.iter().map(|s| s.gpu).collect();
        ts.sort_unstable();
        ts.dedup();
        ts
    }

    /// The bottleneck throughput `x_j(t) = min{X_j^r | w_{jh}^r > 0}`
    /// (Eq. 1b): the slowest per-task rate across the types this placement
    /// touches. `rate_of` maps a type to the job's `X_j^r`.
    ///
    /// Returns `None` for an empty placement.
    pub fn bottleneck_rate(&self, rate_of: impl FnMut(GpuTypeId) -> f64) -> Option<f64> {
        self.gpu_types()
            .into_iter()
            .map(rate_of)
            .min_by(|a, b| a.partial_cmp(b).expect("throughput must not be NaN"))
    }

    /// Like [`JobPlacement::bottleneck_rate`] but with per-slice resolution:
    /// `rate_of(machine, type)` may differ across machines hosting the same
    /// type (e.g. a straggling server). The synchronization barrier still
    /// paces the gang at the slowest task.
    pub fn bottleneck_rate_per_slice(
        &self,
        mut rate_of: impl FnMut(MachineId, GpuTypeId) -> f64,
    ) -> Option<f64> {
        self.slices
            .iter()
            .map(|s| rate_of(s.machine, s.gpu))
            .min_by(|a, b| a.partial_cmp(b).expect("throughput must not be NaN"))
    }
}

/// The full scheduling decision for one round: a placement per scheduled job.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Allocation {
    placements: BTreeMap<JobId, JobPlacement>,
}

impl Allocation {
    /// An allocation scheduling no jobs.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Assign `placement` to `job`. Empty placements are treated as "not
    /// scheduled" and removed.
    pub fn set(&mut self, job: JobId, placement: JobPlacement) {
        if placement.is_empty() {
            self.placements.remove(&job);
        } else {
            self.placements.insert(job, placement);
        }
    }

    /// Remove a job's placement.
    pub fn remove(&mut self, job: JobId) -> Option<JobPlacement> {
        self.placements.remove(&job)
    }

    /// The placement of `job`, if scheduled this round.
    pub fn get(&self, job: JobId) -> Option<&JobPlacement> {
        self.placements.get(&job)
    }

    /// Iterate `(job, placement)` in job-id order.
    pub fn iter(&self) -> impl Iterator<Item = (JobId, &JobPlacement)> {
        self.placements.iter().map(|(&j, p)| (j, p))
    }

    /// Number of scheduled jobs.
    pub fn num_jobs(&self) -> usize {
        self.placements.len()
    }

    /// Whether no job is scheduled.
    pub fn is_empty(&self) -> bool {
        self.placements.is_empty()
    }

    /// Total GPUs in use across all jobs.
    pub fn total_gpus_used(&self) -> u32 {
        self.placements.values().map(|p| p.total_workers()).sum()
    }

    /// Aggregate into per-machine/type occupied counts `γ_h^r`.
    pub fn usage(&self, cluster: &Cluster) -> Usage {
        let mut u = Usage::empty(cluster);
        for p in self.placements.values() {
            for s in p.slices() {
                u.add(s.machine, s.gpu, s.count);
            }
        }
        u
    }

    /// Validate against the cluster: capacity (constraint 1d) and, for each
    /// job, the gang-size requirement `Σ w ∈ {0, W_j}` (constraint 1e) using
    /// `gang_of`.
    ///
    /// Returns the first violation found, or `Ok(())`.
    pub fn validate(
        &self,
        cluster: &Cluster,
        mut gang_of: impl FnMut(JobId) -> u32,
    ) -> Result<(), AllocationError> {
        let usage = self.usage(cluster);
        for h in cluster.machine_ids() {
            for r in cluster.catalog().ids() {
                let used = usage.get(h, r);
                let cap = cluster.capacity(h, r);
                if used > cap {
                    return Err(AllocationError::OverCapacity {
                        machine: h,
                        gpu: r,
                        used,
                        capacity: cap,
                    });
                }
            }
        }
        for (&j, p) in &self.placements {
            let w = p.total_workers();
            let gang = gang_of(j);
            if w != gang {
                return Err(AllocationError::GangViolation {
                    job: j,
                    got: w,
                    want: gang,
                });
            }
        }
        Ok(())
    }
}

/// A constraint violation detected by [`Allocation::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocationError {
    /// More GPUs of a type placed on a machine than it has (violates 1d).
    OverCapacity {
        /// Machine where the violation occurred.
        machine: MachineId,
        /// GPU type over-allocated.
        gpu: GpuTypeId,
        /// GPUs placed.
        used: u32,
        /// Machine capacity `c_h^r`.
        capacity: u32,
    },
    /// A scheduled job got a worker count different from its gang size
    /// (violates the All-or-Nothing property, 1e).
    GangViolation {
        /// Offending job.
        job: JobId,
        /// Workers placed.
        got: u32,
        /// Required gang size `W_j`.
        want: u32,
    },
}

impl std::fmt::Display for AllocationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocationError::OverCapacity {
                machine,
                gpu,
                used,
                capacity,
            } => write!(
                f,
                "machine {machine} type {gpu}: {used} GPUs allocated but capacity is {capacity}"
            ),
            AllocationError::GangViolation { job, got, want } => {
                write!(
                    f,
                    "job {job}: scheduled with {got} workers, gang size is {want}"
                )
            }
        }
    }
}

impl std::error::Error for AllocationError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterBuilder;

    fn toy() -> (Cluster, GpuTypeId, GpuTypeId) {
        let mut b = ClusterBuilder::new();
        let a = b.gpu_type("A");
        let c = b.gpu_type("C");
        b.machine(&[(a, 2)]);
        b.machine(&[(a, 1), (c, 2)]);
        (b.build(), a, c)
    }

    #[test]
    fn placement_merges_and_orders_slices() {
        let p = JobPlacement::from_slices([
            PlacementSlice {
                machine: MachineId(1),
                gpu: GpuTypeId(0),
                count: 1,
            },
            PlacementSlice {
                machine: MachineId(0),
                gpu: GpuTypeId(0),
                count: 2,
            },
            PlacementSlice {
                machine: MachineId(1),
                gpu: GpuTypeId(0),
                count: 1,
            },
            PlacementSlice {
                machine: MachineId(1),
                gpu: GpuTypeId(1),
                count: 0, // dropped
            },
        ]);
        assert_eq!(p.total_workers(), 4);
        assert_eq!(p.slices().len(), 2);
        assert_eq!(p.slices()[0].machine, MachineId(0));
        assert_eq!(p.slices()[1].count, 2);
        assert_eq!(p.num_machines(), 2);
        assert!(!p.is_consolidated());
    }

    #[test]
    fn bottleneck_rate_is_min_over_types() {
        let p = JobPlacement::from_slices([
            PlacementSlice {
                machine: MachineId(0),
                gpu: GpuTypeId(0),
                count: 2,
            },
            PlacementSlice {
                machine: MachineId(1),
                gpu: GpuTypeId(1),
                count: 1,
            },
        ]);
        let rate = p
            .bottleneck_rate(|r| if r == GpuTypeId(0) { 40.0 } else { 30.0 })
            .unwrap();
        assert_eq!(rate, 30.0);
        assert_eq!(JobPlacement::empty().bottleneck_rate(|_| 1.0), None);
    }

    #[test]
    fn empty_placement_is_unscheduled() {
        let mut a = Allocation::empty();
        a.set(JobId(0), JobPlacement::empty());
        assert!(a.is_empty());
        assert_eq!(a.get(JobId(0)), None);
    }

    #[test]
    fn validate_accepts_feasible() {
        let (cl, a, c) = toy();
        let mut alloc = Allocation::empty();
        alloc.set(
            JobId(0),
            JobPlacement::from_slices([
                PlacementSlice {
                    machine: MachineId(0),
                    gpu: a,
                    count: 2,
                },
                PlacementSlice {
                    machine: MachineId(1),
                    gpu: c,
                    count: 1,
                },
            ]),
        );
        assert_eq!(alloc.validate(&cl, |_| 3), Ok(()));
        assert_eq!(alloc.total_gpus_used(), 3);
    }

    #[test]
    fn validate_rejects_over_capacity() {
        let (cl, a, _) = toy();
        let mut alloc = Allocation::empty();
        alloc.set(JobId(0), JobPlacement::single(MachineId(0), a, 3));
        let err = alloc.validate(&cl, |_| 3).unwrap_err();
        assert!(matches!(
            err,
            AllocationError::OverCapacity {
                used: 3,
                capacity: 2,
                ..
            }
        ));
    }

    #[test]
    fn validate_rejects_gang_violation() {
        let (cl, a, _) = toy();
        let mut alloc = Allocation::empty();
        alloc.set(JobId(5), JobPlacement::single(MachineId(0), a, 2));
        let err = alloc.validate(&cl, |_| 4).unwrap_err();
        assert_eq!(
            err,
            AllocationError::GangViolation {
                job: JobId(5),
                got: 2,
                want: 4
            }
        );
        assert!(err.to_string().contains("gang size is 4"));
    }

    #[test]
    fn usage_aggregates_across_jobs() {
        let (cl, a, c) = toy();
        let mut alloc = Allocation::empty();
        alloc.set(JobId(0), JobPlacement::single(MachineId(1), a, 1));
        alloc.set(JobId(1), JobPlacement::single(MachineId(1), c, 2));
        let u = alloc.usage(&cl);
        assert_eq!(u.get(MachineId(1), a), 1);
        assert_eq!(u.get(MachineId(1), c), 2);
        assert_eq!(u.get(MachineId(0), a), 0);
    }
}

//! Machines (servers) holding accelerators.

use crate::catalog::GpuTypeId;

/// Index of a machine `h ∈ [H]` within a [`crate::Cluster`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MachineId(pub u32);

impl MachineId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for MachineId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// A server with per-type accelerator capacities `c_h^r`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Machine {
    id: MachineId,
    /// `capacity[r]` = number of type-`r` GPUs installed on this machine.
    capacity: Vec<u32>,
}

impl Machine {
    /// Create a machine; `capacity[r]` is indexed by [`GpuTypeId`].
    pub fn new(id: MachineId, capacity: Vec<u32>) -> Self {
        Self { id, capacity }
    }

    /// This machine's id.
    #[inline]
    pub fn id(&self) -> MachineId {
        self.id
    }

    /// Capacity `c_h^r` for type `r`. Types beyond the capacity vector hold 0.
    #[inline]
    pub fn capacity(&self, r: GpuTypeId) -> u32 {
        self.capacity.get(r.index()).copied().unwrap_or(0)
    }

    /// Total number of GPUs across all types on this machine.
    pub fn total_gpus(&self) -> u32 {
        self.capacity.iter().sum()
    }

    /// The raw per-type capacity vector.
    pub fn capacities(&self) -> &[u32] {
        &self.capacity
    }

    /// Number of type slots carried (may be less than the catalog's `R`).
    pub fn num_type_slots(&self) -> usize {
        self.capacity.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_lookup_and_total() {
        let m = Machine::new(MachineId(3), vec![4, 0, 2]);
        assert_eq!(m.id(), MachineId(3));
        assert_eq!(m.capacity(GpuTypeId(0)), 4);
        assert_eq!(m.capacity(GpuTypeId(1)), 0);
        assert_eq!(m.capacity(GpuTypeId(2)), 2);
        // Out-of-range type ids read as zero capacity.
        assert_eq!(m.capacity(GpuTypeId(9)), 0);
        assert_eq!(m.total_gpus(), 6);
    }

    #[test]
    fn machine_id_display() {
        assert_eq!(MachineId(12).to_string(), "h12");
    }
}

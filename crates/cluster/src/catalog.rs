//! Interned accelerator types.
//!
//! The paper evaluates on clusters mixing NVIDIA V100, P100, and K80 GPUs
//! (simulation, §IV-A) and T4 / GRID K520 / K80 / V100 (AWS prototype,
//! §IV-B). Rather than hard-coding an enum, types are interned in a
//! [`GpuCatalog`] so user clusters can define arbitrary accelerator families
//! (TPUs, FPGAs, …) without touching scheduler code.

/// Index of an accelerator type `r ∈ [R]` within a [`GpuCatalog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GpuTypeId(pub u16);

impl GpuTypeId {
    /// The id as a `usize` index into per-type vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for GpuTypeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Registry of accelerator types present in a cluster.
///
/// A catalog is immutable once the cluster is built; `R = catalog.len()`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GpuCatalog {
    names: Vec<String>,
}

impl GpuCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a catalog from a list of type names.
    ///
    /// Duplicate names are interned once.
    pub fn from_names<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut cat = Self::new();
        for n in names {
            cat.intern(n.as_ref());
        }
        cat
    }

    /// Intern `name`, returning its id (existing id if already present).
    pub fn intern(&mut self, name: &str) -> GpuTypeId {
        if let Some(id) = self.lookup(name) {
            return id;
        }
        assert!(
            self.names.len() < u16::MAX as usize,
            "too many GPU types interned"
        );
        self.names.push(name.to_owned());
        GpuTypeId((self.names.len() - 1) as u16)
    }

    /// Find the id of `name`, if interned.
    pub fn lookup(&self, name: &str) -> Option<GpuTypeId> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| GpuTypeId(i as u16))
    }

    /// Name of type `id`.
    ///
    /// # Panics
    /// Panics if `id` is not part of this catalog.
    pub fn name(&self, id: GpuTypeId) -> &str {
        &self.names[id.index()]
    }

    /// Number of types, `R`.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the catalog has no types.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate over `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (GpuTypeId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (GpuTypeId(i as u16), n.as_str()))
    }

    /// All ids in order.
    pub fn ids(&self) -> impl Iterator<Item = GpuTypeId> {
        (0..self.names.len() as u16).map(GpuTypeId)
    }
}

/// Canonical names used by the paper's clusters.
pub mod names {
    /// NVIDIA Tesla V100 (fastest type in the simulated cluster).
    pub const V100: &str = "V100";
    /// NVIDIA Tesla P100.
    pub const P100: &str = "P100";
    /// NVIDIA Tesla K80 (slowest type in the simulated cluster).
    pub const K80: &str = "K80";
    /// NVIDIA T4 Tensor Core (AWS g4dn.xlarge).
    pub const T4: &str = "T4";
    /// NVIDIA GRID K520 (AWS g2dn.2xlarge).
    pub const K520: &str = "K520";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut c = GpuCatalog::new();
        let a = c.intern("V100");
        let b = c.intern("V100");
        assert_eq!(a, b);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn from_names_preserves_order() {
        let c = GpuCatalog::from_names(["V100", "P100", "K80"]);
        assert_eq!(c.lookup("V100"), Some(GpuTypeId(0)));
        assert_eq!(c.lookup("P100"), Some(GpuTypeId(1)));
        assert_eq!(c.lookup("K80"), Some(GpuTypeId(2)));
        assert_eq!(c.lookup("T4"), None);
        assert_eq!(c.name(GpuTypeId(2)), "K80");
    }

    #[test]
    fn from_names_dedups() {
        let c = GpuCatalog::from_names(["A", "B", "A"]);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn iter_matches_ids() {
        let c = GpuCatalog::from_names(["X", "Y"]);
        let pairs: Vec<_> = c.iter().collect();
        assert_eq!(pairs, vec![(GpuTypeId(0), "X"), (GpuTypeId(1), "Y")]);
        let ids: Vec<_> = c.ids().collect();
        assert_eq!(ids, vec![GpuTypeId(0), GpuTypeId(1)]);
    }

    #[test]
    fn empty_catalog() {
        let c = GpuCatalog::new();
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
    }
}

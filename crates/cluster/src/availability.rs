//! Machine availability mask.
//!
//! Real clusters lose whole machines — host crashes, NIC faults, planned
//! maintenance — not just throughput (see `hadar-sim`'s straggler model for
//! the latter). [`Availability`] is the per-round up/down view the engine
//! threads through the scheduler context so every policy sees genuinely
//! shrunken capacity: a down machine contributes nothing to
//! [`Availability::available_of_type`] and must not be placed on.
//!
//! The mask is deliberately dumb state — who fails and when is decided by
//! the failure process in `hadar-sim`; this type only answers "which
//! machines can run tasks *this* round".

use crate::cluster::Cluster;
use crate::machine::MachineId;

/// Per-machine up/down mask for one scheduling round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Availability {
    up: Vec<bool>,
}

impl Availability {
    /// A mask with every one of `num_machines` machines up.
    pub fn all_up(num_machines: usize) -> Self {
        Self {
            up: vec![true; num_machines],
        }
    }

    /// Number of machines covered by the mask.
    #[inline]
    pub fn num_machines(&self) -> usize {
        self.up.len()
    }

    /// Whether machine `h` is up. Machines beyond the mask are treated as
    /// up, mirroring how straggler factors default to 1.0.
    #[inline]
    pub fn is_up(&self, h: MachineId) -> bool {
        self.up.get(h.index()).copied().unwrap_or(true)
    }

    /// Mark machine `h` up or down.
    ///
    /// # Panics
    /// Panics if `h` is outside the mask.
    pub fn set(&mut self, h: MachineId, up: bool) {
        self.up[h.index()] = up;
    }

    /// Number of machines currently down.
    pub fn num_down(&self) -> usize {
        self.up.iter().filter(|&&u| !u).count()
    }

    /// Whether any machine is down (fast path: schedulers can skip masking
    /// entirely when the whole cluster is healthy).
    pub fn any_down(&self) -> bool {
        self.up.iter().any(|&u| !u)
    }

    /// Ids of the machines currently down, in id order.
    pub fn down_machines(&self) -> impl Iterator<Item = MachineId> + '_ {
        self.up
            .iter()
            .enumerate()
            .filter(|(_, &u)| !u)
            .map(|(i, _)| MachineId(i as u32))
    }

    /// Cluster-wide capacity of type `r` restricted to machines that are up:
    /// Σ_h `c_h^r · up_h`.
    pub fn available_of_type(&self, cluster: &Cluster, r: crate::catalog::GpuTypeId) -> u32 {
        if !self.any_down() {
            return cluster.total_of_type(r);
        }
        cluster
            .machine_ids()
            .filter(|&h| self.is_up(h))
            .map(|h| cluster.capacity(h, r))
            .sum()
    }

    /// Total GPUs on machines that are up.
    pub fn available_gpus(&self, cluster: &Cluster) -> u32 {
        if !self.any_down() {
            return cluster.total_gpus();
        }
        cluster
            .machine_ids()
            .filter(|&h| self.is_up(h))
            .map(|h| {
                (0..cluster.num_types() as u16)
                    .map(|r| cluster.capacity(h, crate::catalog::GpuTypeId(r)))
                    .sum::<u32>()
            })
            .sum()
    }

    /// A 64-bit digest of the mask (FNV-1a over the up bits). Schedulers
    /// that cache decisions keyed on the job set (e.g. Gavel's LP solution)
    /// fold this in so a failure or recovery invalidates the cache.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &u in &self.up {
            h ^= u as u64 + 1;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;

    #[test]
    fn all_up_mask_is_transparent() {
        let c = Cluster::paper_simulation();
        let a = Availability::all_up(c.num_machines());
        assert!(!a.any_down());
        assert_eq!(a.num_down(), 0);
        assert_eq!(a.available_gpus(&c), c.total_gpus());
        for (r, _) in c.catalog().iter() {
            assert_eq!(a.available_of_type(&c, r), c.total_of_type(r));
        }
        assert_eq!(a.down_machines().count(), 0);
    }

    #[test]
    fn down_machine_shrinks_capacity() {
        let c = Cluster::paper_simulation();
        let mut a = Availability::all_up(c.num_machines());
        // Machine 0 is a 4-GPU V100 node.
        let v100 = c.catalog().lookup("V100").unwrap();
        a.set(MachineId(0), false);
        assert!(a.any_down());
        assert_eq!(a.num_down(), 1);
        assert!(!a.is_up(MachineId(0)));
        assert!(a.is_up(MachineId(1)));
        assert_eq!(a.available_of_type(&c, v100), c.total_of_type(v100) - 4);
        assert_eq!(a.available_gpus(&c), c.total_gpus() - 4);
        assert_eq!(a.down_machines().collect::<Vec<_>>(), vec![MachineId(0)]);
        a.set(MachineId(0), true);
        assert_eq!(a.available_gpus(&c), c.total_gpus());
    }

    #[test]
    fn out_of_range_machines_count_as_up() {
        let a = Availability::all_up(2);
        assert!(a.is_up(MachineId(99)));
    }

    #[test]
    fn fingerprint_tracks_mask_changes() {
        let mut a = Availability::all_up(8);
        let healthy = a.fingerprint();
        a.set(MachineId(3), false);
        let degraded = a.fingerprint();
        assert_ne!(healthy, degraded);
        a.set(MachineId(3), true);
        assert_eq!(a.fingerprint(), healthy);
    }
}

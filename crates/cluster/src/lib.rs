#![warn(missing_docs)]

//! # hadar-cluster
//!
//! Heterogeneous GPU-cluster model underlying the Hadar scheduler
//! (Sultana et al., *Hadar: Heterogeneity-Aware Optimization-Based Online
//! Scheduling for Deep Learning Cluster*, IPDPS 2024).
//!
//! The paper's system model (§III-A) describes a cluster of machines
//! `h ∈ [H]`, each holding `c_h^r` accelerators of type `r ∈ [R]`. This crate
//! provides that model plus the bookkeeping every scheduler in the workspace
//! shares:
//!
//! * [`GpuTypeId`] / [`GpuCatalog`] — interned accelerator types,
//! * [`Machine`] / [`Cluster`] — capacities `c_h^r` and standard topologies,
//! * [`JobPlacement`] / [`Allocation`] — the per-round decision
//!   `w_{jh}^r(t)`, i.e. how many type-`r` GPUs on machine `h` each job gets,
//! * [`Usage`] — the occupied-counts view `γ_h^r(t)` used by the
//!   price function of the primal–dual framework,
//! * [`CommCostModel`] — the cross-server communication penalty applied to
//!   non-consolidated placements in Algorithm 2's `FIND_ALLOC`.
//!
//! The crate is dependency-free and deterministic; all randomness lives in
//! `hadar-workload`.

//!
//! ```
//! use hadar_cluster::{ClusterBuilder, JobId, JobPlacement, Allocation};
//! let mut b = ClusterBuilder::new();
//! let v100 = b.gpu_type("V100");
//! let k80 = b.gpu_type("K80");
//! let h0 = b.machine(&[(v100, 4)]);
//! let h1 = b.machine(&[(k80, 2)]);
//! let cluster = b.build();
//!
//! // Place a 3-worker gang across both machines (mixed types).
//! let mut alloc = Allocation::empty();
//! alloc.set(JobId(0), JobPlacement::from_slices([
//!     hadar_cluster::PlacementSlice { machine: h0, gpu: v100, count: 2 },
//!     hadar_cluster::PlacementSlice { machine: h1, gpu: k80, count: 1 },
//! ]));
//! assert!(alloc.validate(&cluster, |_| 3).is_ok());
//! ```

pub mod allocation;
pub mod availability;
pub mod catalog;
pub mod cluster;
pub mod comm;
pub mod machine;
pub mod rack;
pub mod usage;

pub use allocation::{Allocation, JobPlacement, PlacementSlice};
pub use availability::Availability;
pub use catalog::{GpuCatalog, GpuTypeId};
pub use cluster::{Cluster, ClusterBuilder};
pub use comm::CommCostModel;
pub use machine::{Machine, MachineId};
pub use rack::{RackId, RackTopology};
pub use usage::Usage;

/// Identifier of a job, assigned by the workload layer.
///
/// Jobs are dense small integers within one simulation; `JobId` is used as an
/// index into per-job vectors throughout the workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u32);

impl JobId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "J{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_id_display_and_index() {
        let j = JobId(7);
        assert_eq!(j.index(), 7);
        assert_eq!(j.to_string(), "J7");
    }

    #[test]
    fn job_id_ordering_is_numeric() {
        assert!(JobId(2) < JobId(10));
    }
}

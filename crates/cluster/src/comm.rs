//! Cross-server communication cost model.
//!
//! Algorithm 2's `FIND_ALLOC` compares *consolidated* placements (all tasks
//! of a job packed into the minimum number of servers) against
//! *non-consolidated* ones; for the latter it adds a communication cost
//! (lines 26–27) reflecting the gradient-synchronization traffic that must
//! cross the network between servers every iteration.
//!
//! We model two effects, both configurable:
//!
//! 1. a **throughput degradation**: each extra server spanned slows the
//!    synchronization barrier, multiplying the job's bottleneck rate by
//!    `(1 − penalty)^(machines − 1)`, and
//! 2. an **additive price surcharge** used directly in the cost comparison,
//!    proportional to the number of extra servers and to the mean GPU price
//!    of the placement (so it is expressed in the same units as the dual
//!    prices `k_h^r`).

use crate::allocation::JobPlacement;
use crate::rack::RackTopology;

/// Parameters of the communication cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommCostModel {
    /// Fractional throughput loss per extra server spanned (0.0–1.0).
    /// Default 0.08: spanning a second server costs 8 % of throughput,
    /// consistent with parameter-server synchronization over 10 GbE for the
    /// mid-size models of Table II.
    pub throughput_penalty_per_hop: f64,
    /// Additive cost per extra server, as a multiple of the placement's mean
    /// per-GPU price. Default 0.5.
    pub price_surcharge_per_hop: f64,
    /// Extra fractional throughput loss per additional *rack* spanned
    /// (applied on top of the per-server penalty when the cluster carries a
    /// [`RackTopology`]). Default 0.05: the oversubscribed aggregation
    /// fabric costs another 5 % per rack hop.
    pub rack_penalty_per_hop: f64,
}

impl Default for CommCostModel {
    fn default() -> Self {
        Self {
            throughput_penalty_per_hop: 0.08,
            price_surcharge_per_hop: 0.5,
            rack_penalty_per_hop: 0.05,
        }
    }
}

impl CommCostModel {
    /// A model with no communication penalty (ideal network).
    pub fn free() -> Self {
        Self {
            throughput_penalty_per_hop: 0.0,
            price_surcharge_per_hop: 0.0,
            rack_penalty_per_hop: 0.0,
        }
    }

    /// Multiplicative factor applied to a job's bottleneck throughput for a
    /// placement spanning `machines` servers. 1.0 for consolidated.
    pub fn throughput_factor(&self, machines: usize) -> f64 {
        debug_assert!((0.0..=1.0).contains(&self.throughput_penalty_per_hop));
        let hops = machines.saturating_sub(1) as i32;
        (1.0 - self.throughput_penalty_per_hop).powi(hops)
    }

    /// Throughput factor for a concrete placement on a flat network.
    pub fn placement_factor(&self, p: &JobPlacement) -> f64 {
        self.placement_factor_racked(p, None)
    }

    /// Throughput factor for a placement, charging the extra rack-tier
    /// penalty when a topology is present.
    pub fn placement_factor_racked(&self, p: &JobPlacement, racks: Option<&RackTopology>) -> f64 {
        let machine_factor = self.throughput_factor(p.num_machines());
        let rack_factor = match racks {
            Some(t) => {
                debug_assert!((0.0..=1.0).contains(&self.rack_penalty_per_hop));
                let hops = t.racks_spanned(p).saturating_sub(1) as i32;
                (1.0 - self.rack_penalty_per_hop).powi(hops)
            }
            None => 1.0,
        };
        machine_factor * rack_factor
    }

    /// Additive communication cost (in price units) for a placement whose
    /// GPU-price sum is `price_sum` over `workers` workers and which spans
    /// `machines` servers. Zero for consolidated placements.
    pub fn comm_cost(&self, machines: usize, price_sum: f64, workers: u32) -> f64 {
        let hops = machines.saturating_sub(1) as f64;
        if hops == 0.0 || workers == 0 {
            return 0.0;
        }
        let mean_price = price_sum / workers as f64;
        self.price_surcharge_per_hop * hops * mean_price
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::PlacementSlice;
    use crate::catalog::GpuTypeId;
    use crate::machine::MachineId;
    use crate::rack::RackTopology;

    #[test]
    fn consolidated_is_penalty_free() {
        let m = CommCostModel::default();
        assert_eq!(m.throughput_factor(1), 1.0);
        assert_eq!(m.throughput_factor(0), 1.0);
        assert_eq!(m.comm_cost(1, 10.0, 4), 0.0);
    }

    #[test]
    fn factor_compounds_per_hop() {
        let m = CommCostModel {
            throughput_penalty_per_hop: 0.1,
            price_surcharge_per_hop: 0.0,
            rack_penalty_per_hop: 0.0,
        };
        let f2 = m.throughput_factor(2);
        let f3 = m.throughput_factor(3);
        assert!((f2 - 0.9).abs() < 1e-12);
        assert!((f3 - 0.81).abs() < 1e-12);
    }

    #[test]
    fn comm_cost_scales_with_hops_and_price() {
        let m = CommCostModel {
            throughput_penalty_per_hop: 0.0,
            price_surcharge_per_hop: 0.5,
            rack_penalty_per_hop: 0.0,
        };
        // 3 machines => 2 hops; mean price 2.5 => cost = 0.5 * 2 * 2.5.
        assert!((m.comm_cost(3, 10.0, 4) - 2.5).abs() < 1e-12);
        assert_eq!(m.comm_cost(3, 10.0, 0), 0.0);
    }

    #[test]
    fn rack_penalty_compounds_with_machine_penalty() {
        let m = CommCostModel {
            throughput_penalty_per_hop: 0.1,
            price_surcharge_per_hop: 0.0,
            rack_penalty_per_hop: 0.2,
        };
        let topo = RackTopology::uniform(4, 2); // machines {0,1} and {2,3}
        let same_rack = JobPlacement::from_slices([
            PlacementSlice {
                machine: MachineId(0),
                gpu: GpuTypeId(0),
                count: 1,
            },
            PlacementSlice {
                machine: MachineId(1),
                gpu: GpuTypeId(0),
                count: 1,
            },
        ]);
        let cross_rack = JobPlacement::from_slices([
            PlacementSlice {
                machine: MachineId(0),
                gpu: GpuTypeId(0),
                count: 1,
            },
            PlacementSlice {
                machine: MachineId(2),
                gpu: GpuTypeId(0),
                count: 1,
            },
        ]);
        // Same rack: only the machine hop (0.9).
        assert!((m.placement_factor_racked(&same_rack, Some(&topo)) - 0.9).abs() < 1e-12);
        // Cross rack: machine hop × rack hop (0.9 × 0.8).
        assert!((m.placement_factor_racked(&cross_rack, Some(&topo)) - 0.72).abs() < 1e-12);
        // Without a topology the rack tier is free.
        assert!((m.placement_factor_racked(&cross_rack, None) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn free_model_is_neutral() {
        let m = CommCostModel::free();
        let p = JobPlacement::from_slices([
            PlacementSlice {
                machine: MachineId(0),
                gpu: GpuTypeId(0),
                count: 1,
            },
            PlacementSlice {
                machine: MachineId(1),
                gpu: GpuTypeId(0),
                count: 1,
            },
        ]);
        assert_eq!(m.placement_factor(&p), 1.0);
        assert_eq!(m.comm_cost(5, 100.0, 2), 0.0);
    }
}

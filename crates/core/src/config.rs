//! Hadar scheduler configuration.

use crate::find_alloc::Features;
use crate::profiler::ProfilerConfig;
use crate::utility::UtilityKind;

/// How the dual subroutine selects the job subset each round (Algorithm 2
/// ships both "a greedy algorithm and a dynamic programming approach").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocMode {
    /// Always use the memoized dynamic program (exact subset selection;
    /// exponential worst case — use only for small queues).
    Dp,
    /// Always use the single-pass greedy in utility-density order
    /// (`O(|Q| · H · R)` per round).
    Greedy,
    /// Dynamic program when at most `dp_max_queue` jobs are queued, greedy
    /// beyond — the default (`dp_max_queue = 9`).
    Auto {
        /// Largest queue the DP is applied to.
        dp_max_queue: usize,
    },
}

impl Default for AllocMode {
    fn default() -> Self {
        AllocMode::Auto { dp_max_queue: 9 }
    }
}

/// Worker-thread policy for intra-round candidate generation (the parallel
/// prefetch inside the dual subroutine). Whatever the setting, the output is
/// byte-identical to the serial path: workers only pre-populate the
/// candidate cache against read-only usage snapshots, and the admission loop
/// itself stays serial in deterministic order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum RoundParallelism {
    /// `HADAR_ROUND_THREADS` when set (≥ 1), otherwise the machine's
    /// available parallelism, capped at 16 (mirrors the sweep runner's
    /// `HADAR_THREADS` convention).
    #[default]
    Auto,
    /// Exactly `n` worker threads; `1` disables the parallel prefetch.
    Fixed(usize),
}

impl RoundParallelism {
    /// Resolve to a concrete thread count (≥ 1). `Auto` re-reads the
    /// environment on every call so tests (and long-lived processes) can
    /// retune without rebuilding schedulers.
    pub fn resolve(self) -> usize {
        match self {
            RoundParallelism::Fixed(n) => n.max(1),
            RoundParallelism::Auto => std::env::var("HADAR_ROUND_THREADS")
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|&n| n >= 1)
                .unwrap_or_else(|| {
                    std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(1)
                })
                .min(16),
        }
    }
}

/// Configuration of [`crate::HadarScheduler`].
#[derive(Debug)]
pub struct HadarConfig {
    /// The scheduling objective (default: effective throughput, the paper's
    /// special case that minimizes size-weighted average JCT).
    pub utility: UtilityKind,
    /// Dual-subroutine mode.
    pub alloc_mode: AllocMode,
    /// The checkpoint-restart stall (seconds) the scheduler *assumes* a
    /// reallocation costs when estimating finish times. Should match the
    /// simulator's [`hadar_sim::PreemptionPenalty`]; default 10 s (§IV-A).
    pub expected_realloc_penalty: f64,
    /// Optional throughput-profiling stage (Fig. 2's estimator): when set,
    /// scheduling decisions in a job's first rounds use noisy throughput
    /// estimates instead of oracle values.
    pub profiler: Option<ProfilerConfig>,
    /// Ablation switches for candidate generation (mixed-type placements,
    /// sticky placements). All on by default.
    pub features: Features,
    /// The §IV-A-5 allocation-update policy: when the active job set has
    /// not changed since the last full optimization and every job is
    /// running, renew the current placements instead of re-optimizing
    /// (default on — matches the paper's "only 30% of scheduling rounds
    /// require a change in allocation" observation).
    pub incremental: bool,
    /// Worker threads for the intra-round candidate prefetch (default:
    /// auto-detect; output is byte-identical at any setting).
    pub round_parallelism: RoundParallelism,
    /// Keep the candidate cache's placement-geometry layer alive across
    /// rounds (keyed by usage fingerprint + job class, invalidated on any
    /// price-shape/availability/feature change) instead of rebuilding it
    /// from scratch every round. Exact — decisions are identical either
    /// way; off exists for benchmarking the speedup.
    pub cross_round_cache: bool,
}

impl Default for HadarConfig {
    fn default() -> Self {
        Self {
            utility: UtilityKind::default(),
            alloc_mode: AllocMode::default(),
            expected_realloc_penalty: 10.0,
            profiler: None,
            features: Features::default(),
            incremental: true,
            round_parallelism: RoundParallelism::default(),
            cross_round_cache: true,
        }
    }
}

impl HadarConfig {
    /// Default configuration but with the given utility.
    pub fn with_utility(utility: UtilityKind) -> Self {
        Self {
            utility,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::utility::Utility;

    #[test]
    fn defaults_match_paper_settings() {
        let c = HadarConfig::default();
        assert_eq!(c.alloc_mode, AllocMode::Auto { dp_max_queue: 9 });
        assert_eq!(c.expected_realloc_penalty, 10.0);
        assert!(c.profiler.is_none());
        assert_eq!(c.utility.name(), "effective-throughput");
        assert_eq!(c.round_parallelism, RoundParallelism::Auto);
        assert!(c.cross_round_cache);
    }

    #[test]
    fn round_parallelism_resolves_to_at_least_one() {
        assert_eq!(RoundParallelism::Fixed(0).resolve(), 1);
        assert_eq!(RoundParallelism::Fixed(5).resolve(), 5);
        assert!(RoundParallelism::Auto.resolve() >= 1);
        assert!(RoundParallelism::Auto.resolve() <= 16);
    }

    #[test]
    fn with_utility_overrides_objective() {
        let c = HadarConfig::with_utility(UtilityKind::MinMakespan(Default::default()));
        assert_eq!(c.utility.name(), "min-makespan");
        assert_eq!(c.expected_realloc_penalty, 10.0);
    }
}

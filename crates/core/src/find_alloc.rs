//! `FIND_ALLOC` (Algorithm 2, lines 22–34): the best-payoff placement for a
//! single job against the current cluster usage and prices.
//!
//! GPU types are considered in descending-throughput order (line 23); both
//! *consolidated* placements (all tasks packed into the fewest servers,
//! line 24) and *non-consolidated* ones (spread across servers, line 25) are
//! enumerated, including **mixed-type** placements — the task-level
//! heterogeneity flexibility that separates Hadar from job-level schedulers.
//! Each candidate is priced at `Σ_h Σ_r k_h^r(t) · w_{jh}^r` (line 26) with
//! the cross-server communication surcharge added for spread placements
//! (line 27); the candidate maximizing the payoff
//! `μ_j = U_j(f̂_{js} − a_j) − cost` is returned iff `μ_j > 0` (lines 28–33).
//!
//! Note on fidelity: the paper picks the minimum-*cost* candidate and then
//! checks payoff. Because different candidates imply different finish times
//! (and hence different utilities), selecting by maximum payoff implements
//! the underlying dual objective `argmax_s φ_j(s)` (Eq. 4) directly; for
//! candidates with equal estimated finish times the two rules coincide.

use hadar_cluster::{
    Cluster, CommCostModel, GpuTypeId, JobPlacement, MachineId, PlacementSlice, Usage,
};
use hadar_sim::JobState;

use crate::estimate::estimate_completion;
use crate::price::PriceState;
use crate::utility::Utility;

/// Ablation switches for candidate generation (all on by default).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Features {
    /// Generate mixed-GPU-type placements (the task-level flexibility that
    /// defines Hadar; off = job-level placement like Gavel).
    pub mixed_types: bool,
    /// Offer the job's current placement as a stall-free candidate
    /// (off = re-place from scratch each round).
    pub sticky: bool,
}

impl Default for Features {
    fn default() -> Self {
        Self {
            mixed_types: true,
            sticky: true,
        }
    }
}

/// Shared read-only context for allocation decisions within one round.
pub struct AllocEnv<'a> {
    /// Cluster topology.
    pub cluster: &'a Cluster,
    /// Communication cost model.
    pub comm: &'a CommCostModel,
    /// The round's dual prices.
    pub prices: &'a PriceState,
    /// The scheduling objective.
    pub utility: &'a dyn Utility,
    /// Current time.
    pub now: f64,
    /// Assumed checkpoint-restart stall when a job's placement changes.
    pub realloc_stall: f64,
    /// Candidate-generation ablation switches.
    pub features: Features,
    /// Per-machine throughput factors (may be empty ⇒ all healthy). Hadar
    /// is fault-aware: candidate rates are discounted by their hosts'
    /// factors, so placements avoid — and running jobs migrate off —
    /// straggling servers, and a factor of 0.0 (a *failed* machine, see the
    /// simulator's failure model) excludes the machine from candidate
    /// generation entirely.
    pub machine_factors: &'a [f64],
}

impl AllocEnv<'_> {
    /// The throughput factor of machine `h` (1.0 when not provided, 0.0
    /// while the machine is down).
    pub fn machine_factor(&self, h: MachineId) -> f64 {
        self.machine_factors.get(h.index()).copied().unwrap_or(1.0)
    }

    /// Whether machine `h` can run tasks at all this round.
    fn machine_usable(&self, h: MachineId) -> bool {
        self.machine_factor(h) > 0.0
    }
}

/// A priced candidate placement for one job.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// The placement `w_{jh}^r`.
    pub placement: JobPlacement,
    /// Effective aggregate rate (iterations/sec) including the cross-server
    /// degradation.
    pub rate: f64,
    /// Estimated utility `U_j(f̂_j − a_j)` under this placement.
    pub utility: f64,
    /// Resource cost `Σ k_h^r w_{jh}^r`.
    pub resource_cost: f64,
    /// Communication surcharge (0 for consolidated placements).
    pub comm_cost: f64,
    /// `μ_j = utility − resource_cost − comm_cost`.
    pub payoff: f64,
    /// Whether this placement differs from the job's current one (and would
    /// therefore pay the checkpoint stall).
    pub changed: bool,
}

/// Find the best positive-payoff placement for `state`, or `None` if every
/// candidate has non-positive payoff (the job should wait this round).
pub fn find_alloc(state: &JobState, env: &AllocEnv<'_>, usage: &Usage) -> Option<Candidate> {
    find_candidates(state, env, usage).into_iter().next()
}

/// Per-round memo of [`find_candidates`] results keyed by
/// `(job, usage fingerprint)`.
///
/// Within one scheduling round the prices, queue, and clock are fixed, so a
/// job's candidate list depends only on the cluster usage it is evaluated
/// against. The DP subroutine and its greedy floor both walk sequences of
/// usage states that frequently coincide (the greedy admission path is one
/// of the DP's branches); sharing this cache between them prices and ranks
/// each distinct `(job, state)` query once instead of re-enumerating every
/// placement. The cache must not outlive the round — prices change every
/// round, and the profiler may substitute job profiles per round.
#[derive(Default)]
pub struct CandidateCache {
    map: std::collections::HashMap<(u32, u64), Vec<Candidate>>,
    hits: usize,
    misses: usize,
}

impl CandidateCache {
    /// An empty cache for one scheduling round.
    pub fn new() -> Self {
        Self::default()
    }

    /// The candidate list for `state` against `usage` (computed on first
    /// use), best payoff first.
    pub fn candidates(
        &mut self,
        state: &JobState,
        env: &AllocEnv<'_>,
        usage: &Usage,
    ) -> &[Candidate] {
        let key = (state.job.id.0, usage.fingerprint());
        match self.map.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                self.hits += 1;
                e.into_mut()
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                self.misses += 1;
                e.insert(find_candidates(state, env, usage))
            }
        }
    }

    /// The best positive-payoff candidate, as [`find_alloc`] returns it.
    pub fn best(
        &mut self,
        state: &JobState,
        env: &AllocEnv<'_>,
        usage: &Usage,
    ) -> Option<Candidate> {
        self.candidates(state, env, usage).first().cloned()
    }

    /// Queries answered from the memo.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Queries that had to run the full enumeration.
    pub fn misses(&self) -> usize {
        self.misses
    }
}

/// All distinct positive-payoff candidate placements for `state`, best
/// first. The DP subroutine branches over these so it can deliberately give
/// a job a slower (cheaper) type when that frees a fast type for a job that
/// benefits more from it.
pub fn find_candidates(state: &JobState, env: &AllocEnv<'_>, usage: &Usage) -> Vec<Candidate> {
    let prefs: &[GpuTypeId] = state.job.profile.types_by_preference();
    if prefs.is_empty() {
        return Vec::new();
    }
    let w = state.job.gang;
    let mut cands: Vec<Candidate> = Vec::new();
    let mut consider = |slices: Option<Vec<PlacementSlice>>| {
        if let Some(slices) = slices {
            if let Some(c) = evaluate(state, env, usage, slices) {
                if c.payoff > 0.0 && !cands.iter().any(|o| o.placement == c.placement) {
                    cands.push(c);
                }
            }
        }
    };

    // Sticky candidate: keep the current placement if it still fits (no
    // checkpoint stall, no movement).
    if env.features.sticky
        && !state.placement.is_empty()
        && fits(env.cluster, usage, &state.placement)
    {
        consider(Some(state.placement.slices().to_vec()));
    }

    for &r in prefs {
        consider(consolidated_homogeneous(env, usage, r, w));
        consider(spread_homogeneous(env, usage, r, w));
    }
    if env.features.mixed_types {
        consider(mixed_spread(env, usage, prefs, w));
        consider(mixed_best_single_machine(state, env, usage, prefs, w));
    }

    cands.sort_by(|a, b| b.payoff.partial_cmp(&a.payoff).expect("finite payoffs"));
    cands
}

/// Price and score one candidate.
fn evaluate(
    state: &JobState,
    env: &AllocEnv<'_>,
    usage: &Usage,
    slices: Vec<PlacementSlice>,
) -> Option<Candidate> {
    let placement = JobPlacement::from_slices(slices);
    if placement.total_workers() != state.job.gang {
        return None;
    }
    let changed = placement != state.placement;
    let bottleneck = placement
        .bottleneck_rate_per_slice(|h, r| state.job.profile.rate(r) * env.machine_factor(h))?;
    if bottleneck <= 0.0 {
        return None;
    }
    let rate = bottleneck
        * state.job.gang as f64
        * env
            .comm
            .placement_factor_racked(&placement, env.cluster.racks());
    let stall = if changed { env.realloc_stall } else { 0.0 };
    let est = estimate_completion(state, rate, env.now, stall)?;
    let utility = env.utility.value(&state.job, est.jct, est.finish);
    let resource_cost = price_of(env, usage, &placement);
    let comm_cost = env.comm.comm_cost(
        placement.num_machines(),
        resource_cost,
        placement.total_workers(),
    );
    Some(Candidate {
        payoff: utility - resource_cost - comm_cost,
        placement,
        rate,
        utility,
        resource_cost,
        comm_cost,
        changed,
    })
}

/// `Σ_h Σ_r k_h^r(γ_h^r) · w_{jh}^r` at the current usage.
pub fn price_of(env: &AllocEnv<'_>, usage: &Usage, placement: &JobPlacement) -> f64 {
    placement
        .slices()
        .iter()
        .map(|s| {
            let cap = env.cluster.capacity(s.machine, s.gpu);
            let gamma = usage.get(s.machine, s.gpu);
            env.prices.price(s.gpu, gamma, cap) * s.count as f64
        })
        .sum()
}

/// Whether `placement` fits within the free capacity left by `usage`.
pub fn fits(cluster: &Cluster, usage: &Usage, placement: &JobPlacement) -> bool {
    placement
        .slices()
        .iter()
        .all(|s| usage.free(cluster, s.machine, s.gpu) >= s.count)
}

/// All `w` workers of type `r` on one machine; among feasible machines, the
/// cheapest (lowest current price — i.e. the least-loaded server).
fn consolidated_homogeneous(
    env: &AllocEnv<'_>,
    usage: &Usage,
    r: GpuTypeId,
    w: u32,
) -> Option<Vec<PlacementSlice>> {
    let mut best: Option<(f64, MachineId)> = None;
    for h in env.cluster.machine_ids() {
        if env.machine_usable(h) && usage.free(env.cluster, h, r) >= w {
            let cap = env.cluster.capacity(h, r);
            let cost = env.prices.price(r, usage.get(h, r), cap);
            if best.is_none_or(|(c, _)| cost < c) {
                best = Some((cost, h));
            }
        }
    }
    best.map(|(_, h)| {
        vec![PlacementSlice {
            machine: h,
            gpu: r,
            count: w,
        }]
    })
}

/// All `w` workers of type `r`, spread across the fewest machines
/// (most-free-first fill).
fn spread_homogeneous(
    env: &AllocEnv<'_>,
    usage: &Usage,
    r: GpuTypeId,
    w: u32,
) -> Option<Vec<PlacementSlice>> {
    let mut machines: Vec<(u32, MachineId)> = env
        .cluster
        .machine_ids()
        .filter(|&h| env.machine_usable(h))
        .filter_map(|h| {
            let f = usage.free(env.cluster, h, r);
            (f > 0).then_some((f, h))
        })
        .collect();
    machines.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    fill(machines.into_iter().map(|(f, h)| (h, r, f)), w)
}

/// All `w` workers filled from the fastest types first, spreading over
/// machines as needed — the fully flexible task-level placement.
fn mixed_spread(
    env: &AllocEnv<'_>,
    usage: &Usage,
    prefs: &[GpuTypeId],
    w: u32,
) -> Option<Vec<PlacementSlice>> {
    let mut pool: Vec<(MachineId, GpuTypeId, u32)> = Vec::new();
    for &r in prefs {
        let mut machines: Vec<(u32, MachineId)> = env
            .cluster
            .machine_ids()
            .filter(|&h| env.machine_usable(h))
            .filter_map(|h| {
                let f = usage.free(env.cluster, h, r);
                (f > 0).then_some((f, h))
            })
            .collect();
        machines.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        pool.extend(machines.into_iter().map(|(f, h)| (h, r, f)));
    }
    fill(pool.into_iter(), w)
}

/// All `w` workers on a single machine, mixing types (fastest first);
/// evaluated per machine, returning the feasible fill with the highest
/// bottleneck throughput (ties to lower machine id).
fn mixed_best_single_machine(
    state: &JobState,
    env: &AllocEnv<'_>,
    usage: &Usage,
    prefs: &[GpuTypeId],
    w: u32,
) -> Option<Vec<PlacementSlice>> {
    let mut best: Option<(f64, Vec<PlacementSlice>)> = None;
    for h in env.cluster.machine_ids() {
        if !env.machine_usable(h) {
            continue;
        }
        let mut remaining = w;
        let mut slices = Vec::new();
        let mut bottleneck = f64::INFINITY;
        for &r in prefs {
            if remaining == 0 {
                break;
            }
            let free = usage.free(env.cluster, h, r);
            let take = free.min(remaining);
            if take > 0 {
                slices.push(PlacementSlice {
                    machine: h,
                    gpu: r,
                    count: take,
                });
                bottleneck = bottleneck.min(state.job.profile.rate(r) * env.machine_factor(h));
                remaining -= take;
            }
        }
        if remaining == 0 && best.as_ref().is_none_or(|(b, _)| bottleneck > *b) {
            best = Some((bottleneck, slices));
        }
    }
    best.map(|(_, s)| s)
}

/// Take from `(machine, type, available)` entries in order until `w` workers
/// are placed; `None` if the pool is too small.
fn fill(
    pool: impl Iterator<Item = (MachineId, GpuTypeId, u32)>,
    w: u32,
) -> Option<Vec<PlacementSlice>> {
    let mut remaining = w;
    let mut slices = Vec::new();
    for (machine, gpu, avail) in pool {
        if remaining == 0 {
            break;
        }
        let take = avail.min(remaining);
        if take > 0 {
            slices.push(PlacementSlice {
                machine,
                gpu,
                count: take,
            });
            remaining -= take;
        }
    }
    (remaining == 0).then_some(slices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::utility::EffectiveThroughput;
    use hadar_cluster::JobId;
    use hadar_workload::{DlTask, Job};

    fn setup(gang: u32) -> (Cluster, JobState) {
        let cluster = Cluster::motivation_toy(); // 2 V100 | 3 P100 | 1 K80
        let job = Job::for_model(JobId(0), DlTask::ResNet18, cluster.catalog(), 0.0, gang, 50);
        (cluster, JobState::new(job))
    }

    fn env<'a>(
        cluster: &'a Cluster,
        comm: &'a CommCostModel,
        prices: &'a PriceState,
        utility: &'a EffectiveThroughput,
    ) -> AllocEnv<'a> {
        AllocEnv {
            cluster,
            comm,
            prices,
            utility,
            now: 0.0,
            realloc_stall: 10.0,
            features: Features::default(),
            machine_factors: &[],
        }
    }

    fn prices_for(cluster: &Cluster, state: &JobState) -> PriceState {
        PriceState::compute(
            std::slice::from_ref(state),
            cluster,
            &EffectiveThroughput,
            0.0,
        )
    }

    #[test]
    fn small_gang_lands_consolidated_on_fastest_type() {
        let (cluster, state) = setup(2);
        let comm = CommCostModel::default();
        let prices = prices_for(&cluster, &state);
        let u = EffectiveThroughput;
        let e = env(&cluster, &comm, &prices, &u);
        let usage = Usage::empty(&cluster);
        let c = find_alloc(&state, &e, &usage).expect("positive payoff expected");
        // Both V100s on machine 0: consolidated, fastest.
        assert!(c.placement.is_consolidated());
        assert_eq!(c.placement.gpu_types(), vec![GpuTypeId(0)]);
        assert_eq!(c.placement.total_workers(), 2);
        assert!(c.payoff > 0.0);
        assert!(c.comm_cost == 0.0);
    }

    #[test]
    fn large_gang_mixes_types_when_needed() {
        // Gang of 6 needs every GPU in the toy cluster: must mix all types.
        let (cluster, state) = setup(6);
        let comm = CommCostModel::default();
        let prices = prices_for(&cluster, &state);
        let u = EffectiveThroughput;
        let e = env(&cluster, &comm, &prices, &u);
        let usage = Usage::empty(&cluster);
        let c = find_alloc(&state, &e, &usage).expect("only mixed placement fits");
        assert_eq!(c.placement.total_workers(), 6);
        assert_eq!(c.placement.gpu_types().len(), 3);
        // Rate = bottleneck (K80 = 20 it/s) × 6 × comm factor (3 machines).
        let expect = 20.0 * 6.0 * comm.throughput_factor(3);
        assert!((c.rate - expect).abs() < 1e-9, "rate={}", c.rate);
    }

    #[test]
    fn respects_existing_usage() {
        let (cluster, state) = setup(2);
        let comm = CommCostModel::default();
        let prices = prices_for(&cluster, &state);
        let u = EffectiveThroughput;
        let e = env(&cluster, &comm, &prices, &u);
        let mut usage = Usage::empty(&cluster);
        // Occupy both V100s: the job must fall back to P100s.
        usage.add(MachineId(0), GpuTypeId(0), 2);
        let c = find_alloc(&state, &e, &usage).expect("P100s are free");
        assert_eq!(c.placement.gpu_types(), vec![GpuTypeId(1)]);
    }

    #[test]
    fn none_when_nothing_fits() {
        let (cluster, state) = setup(2);
        let comm = CommCostModel::default();
        let prices = prices_for(&cluster, &state);
        let u = EffectiveThroughput;
        let e = env(&cluster, &comm, &prices, &u);
        let mut usage = Usage::empty(&cluster);
        for h in cluster.machine_ids() {
            for r in cluster.catalog().ids() {
                usage.add(h, r, cluster.capacity(h, r));
            }
        }
        assert_eq!(find_alloc(&state, &e, &usage), None);
    }

    #[test]
    fn sticky_placement_preferred_under_equal_rates() {
        let (cluster, mut state) = setup(2);
        let comm = CommCostModel::default();
        let prices = prices_for(&cluster, &state);
        let u = EffectiveThroughput;
        let e = env(&cluster, &comm, &prices, &u);
        let usage = Usage::empty(&cluster);
        // Job already sits on the V100s: keeping it avoids the 10 s stall,
        // so the sticky candidate must win and report `changed = false`.
        state.placement = JobPlacement::single(MachineId(0), GpuTypeId(0), 2);
        let c = find_alloc(&state, &e, &usage).unwrap();
        assert!(!c.changed);
        assert_eq!(c.placement, state.placement);
    }

    #[test]
    fn moving_pays_off_when_current_spot_is_slow() {
        let (cluster, mut state) = setup(1);
        let comm = CommCostModel::default();
        let prices = prices_for(&cluster, &state);
        let u = EffectiveThroughput;
        let e = env(&cluster, &comm, &prices, &u);
        let usage = Usage::empty(&cluster);
        // Currently on the K80 (20 it/s); V100 (120 it/s) is free. The gain
        // dwarfs the 10 s checkpoint stall for this 50-epoch job.
        state.placement = JobPlacement::single(MachineId(2), GpuTypeId(2), 1);
        let c = find_alloc(&state, &e, &usage).unwrap();
        assert!(c.changed);
        assert_eq!(c.placement.gpu_types(), vec![GpuTypeId(0)]);
    }

    #[test]
    fn straggler_awareness_migrates_off_slow_machine() {
        // Two 2-GPU V100 machines; the job currently runs on machine 0,
        // which is straggling at 30% speed. The stall-free sticky candidate
        // loses to moving onto the healthy machine.
        let mut b = hadar_cluster::ClusterBuilder::new();
        let v100 = b.gpu_type("V100");
        b.machine(&[(v100, 2)]);
        b.machine(&[(v100, 2)]);
        let cluster = b.build();
        let job = hadar_workload::Job::for_model(
            hadar_cluster::JobId(0),
            hadar_workload::DlTask::ResNet18,
            cluster.catalog(),
            0.0,
            2,
            100,
        );
        let mut state = JobState::new(job);
        state.placement = JobPlacement::single(MachineId(0), GpuTypeId(0), 2);
        let comm = CommCostModel::default();
        let prices = PriceState::compute(
            std::slice::from_ref(&state),
            &cluster,
            &EffectiveThroughput,
            0.0,
        );
        let factors = [0.3, 1.0];
        let e = AllocEnv {
            cluster: &cluster,
            comm: &comm,
            prices: &prices,
            utility: &EffectiveThroughput,
            now: 0.0,
            realloc_stall: 10.0,
            features: Features::default(),
            machine_factors: &factors,
        };
        let usage = Usage::empty(&cluster);
        let c = find_alloc(&state, &e, &usage).expect("healthy machine available");
        assert!(c.changed, "should migrate off the straggler");
        assert_eq!(c.placement.slices()[0].machine, MachineId(1));
        // And with the straggle gone, the sticky placement wins again.
        let e2 = AllocEnv {
            machine_factors: &[],
            ..e
        };
        let c2 = find_alloc(&state, &e2, &usage).unwrap();
        assert!(!c2.changed);
    }

    #[test]
    fn down_machine_is_never_selected() {
        // Same two-machine setup, but machine 0 is *down* (factor 0.0): the
        // sticky candidate dies and every generated candidate must live
        // entirely on machine 1. With both machines down, no candidate
        // survives at all.
        let mut b = hadar_cluster::ClusterBuilder::new();
        let v100 = b.gpu_type("V100");
        b.machine(&[(v100, 2)]);
        b.machine(&[(v100, 2)]);
        let cluster = b.build();
        let job = hadar_workload::Job::for_model(
            hadar_cluster::JobId(0),
            hadar_workload::DlTask::ResNet18,
            cluster.catalog(),
            0.0,
            2,
            100,
        );
        let mut state = JobState::new(job);
        state.placement = JobPlacement::single(MachineId(0), GpuTypeId(0), 2);
        let comm = CommCostModel::default();
        let prices = PriceState::compute(
            std::slice::from_ref(&state),
            &cluster,
            &EffectiveThroughput,
            0.0,
        );
        let factors = [0.0, 1.0];
        let e = AllocEnv {
            cluster: &cluster,
            comm: &comm,
            prices: &prices,
            utility: &EffectiveThroughput,
            now: 0.0,
            realloc_stall: 10.0,
            features: Features::default(),
            machine_factors: &factors,
        };
        let usage = Usage::empty(&cluster);
        let cands = find_candidates(&state, &e, &usage);
        assert!(!cands.is_empty());
        for c in &cands {
            assert!(
                c.placement
                    .slices()
                    .iter()
                    .all(|sl| sl.machine == MachineId(1)),
                "candidate touches the dead machine: {:?}",
                c.placement
            );
        }
        let c = find_alloc(&state, &e, &usage).expect("healthy machine available");
        assert!(c.changed, "must evacuate the dead machine");
        assert_eq!(c.placement.slices()[0].machine, MachineId(1));
        // Whole cluster down ⇒ nothing schedulable.
        let all_down = [0.0, 0.0];
        let e2 = AllocEnv {
            machine_factors: &all_down,
            ..e
        };
        assert!(find_alloc(&state, &e2, &usage).is_none());
    }

    #[test]
    fn price_of_sums_per_slice() {
        let (cluster, state) = setup(2);
        let comm = CommCostModel::default();
        let prices = prices_for(&cluster, &state);
        let u = EffectiveThroughput;
        let e = env(&cluster, &comm, &prices, &u);
        let usage = Usage::empty(&cluster);
        let p = JobPlacement::single(MachineId(0), GpuTypeId(0), 2);
        let got = price_of(&e, &usage, &p);
        let unit = prices.price(GpuTypeId(0), 0, 2);
        assert!((got - 2.0 * unit).abs() < 1e-12);
    }

    #[test]
    fn candidate_cache_memoizes_per_state() {
        let (cluster, state) = setup(2);
        let comm = CommCostModel::default();
        let prices = prices_for(&cluster, &state);
        let u = EffectiveThroughput;
        let e = env(&cluster, &comm, &prices, &u);
        let usage = Usage::empty(&cluster);
        let mut cache = CandidateCache::new();

        let direct = find_candidates(&state, &e, &usage);
        assert_eq!(cache.candidates(&state, &e, &usage), direct.as_slice());
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        // Same (job, usage) again: answered from the memo, same content.
        assert_eq!(cache.candidates(&state, &e, &usage), direct.as_slice());
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        // `best` agrees with `find_alloc`.
        assert_eq!(
            cache.best(&state, &e, &usage),
            find_alloc(&state, &e, &usage)
        );
        assert_eq!((cache.hits(), cache.misses()), (2, 1));

        // A different usage state is a distinct key.
        let mut used = usage.clone();
        used.add(MachineId(0), GpuTypeId(0), 2);
        assert_eq!(
            cache.candidates(&state, &e, &used),
            find_candidates(&state, &e, &used).as_slice()
        );
        assert_eq!((cache.hits(), cache.misses()), (2, 2));
    }

    #[test]
    fn unrunnable_job_gets_nothing() {
        let cluster = Cluster::motivation_toy();
        let profile = hadar_workload::ThroughputProfile::from_rates(vec![0.0, 0.0, 0.0]);
        let job = Job::new(JobId(0), DlTask::Lstm, 0.0, 1, 1, 10, profile);
        let state = JobState::new(job);
        let comm = CommCostModel::default();
        let prices = prices_for(&cluster, &state);
        let u = EffectiveThroughput;
        let e = env(&cluster, &comm, &prices, &u);
        assert_eq!(find_alloc(&state, &e, &Usage::empty(&cluster)), None);
    }
}

//! `FIND_ALLOC` (Algorithm 2, lines 22–34): the best-payoff placement for a
//! single job against the current cluster usage and prices.
//!
//! GPU types are considered in descending-throughput order (line 23); both
//! *consolidated* placements (all tasks packed into the fewest servers,
//! line 24) and *non-consolidated* ones (spread across servers, line 25) are
//! enumerated, including **mixed-type** placements — the task-level
//! heterogeneity flexibility that separates Hadar from job-level schedulers.
//! Each candidate is priced at `Σ_h Σ_r k_h^r(t) · w_{jh}^r` (line 26) with
//! the cross-server communication surcharge added for spread placements
//! (line 27); the candidate maximizing the payoff
//! `μ_j = U_j(f̂_{js} − a_j) − cost` is returned iff `μ_j > 0` (lines 28–33).
//!
//! Note on fidelity: the paper picks the minimum-*cost* candidate and then
//! checks payoff. Because different candidates imply different finish times
//! (and hence different utilities), selecting by maximum payoff implements
//! the underlying dual objective `argmax_s φ_j(s)` (Eq. 4) directly; for
//! candidates with equal estimated finish times the two rules coincide.

use std::collections::HashMap;
use std::time::Instant;

use hadar_cluster::{
    Cluster, CommCostModel, GpuTypeId, JobPlacement, MachineId, PlacementSlice, Usage,
};
use hadar_sim::JobState;

use crate::estimate::estimate_completion;
use crate::price::{PriceShape, PriceState};
use crate::utility::Utility;

/// Queues shorter than this never engage the parallel prefetch: thread
/// startup would cost more than the enumeration it saves.
pub(crate) const MIN_PARALLEL_QUEUE: usize = 64;

/// Cross-round geometry entries untouched for this many rounds are evicted.
const CLASS_KEEP_ROUNDS: u64 = 8;

/// Machine-pool entries untouched for this many rounds are evicted. Pools
/// are cheap to rebuild (one sort), so they are kept on a much shorter
/// leash than class geometry; the payoff is within-round sharing plus the
/// immediately-previous round's saturated states.
const POOL_KEEP_ROUNDS: u64 = 2;

/// Ablation switches for candidate generation (all on by default).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Features {
    /// Generate mixed-GPU-type placements (the task-level flexibility that
    /// defines Hadar; off = job-level placement like Gavel).
    pub mixed_types: bool,
    /// Offer the job's current placement as a stall-free candidate
    /// (off = re-place from scratch each round).
    pub sticky: bool,
}

impl Default for Features {
    fn default() -> Self {
        Self {
            mixed_types: true,
            sticky: true,
        }
    }
}

/// Shared read-only context for allocation decisions within one round.
pub struct AllocEnv<'a> {
    /// Cluster topology.
    pub cluster: &'a Cluster,
    /// Communication cost model.
    pub comm: &'a CommCostModel,
    /// The round's dual prices.
    pub prices: &'a PriceState,
    /// The scheduling objective.
    pub utility: &'a dyn Utility,
    /// Current time.
    pub now: f64,
    /// Assumed checkpoint-restart stall when a job's placement changes.
    pub realloc_stall: f64,
    /// Candidate-generation ablation switches.
    pub features: Features,
    /// Per-machine throughput factors (may be empty ⇒ all healthy). Hadar
    /// is fault-aware: candidate rates are discounted by their hosts'
    /// factors, so placements avoid — and running jobs migrate off —
    /// straggling servers, and a factor of 0.0 (a *failed* machine, see the
    /// simulator's failure model) excludes the machine from candidate
    /// generation entirely.
    pub machine_factors: &'a [f64],
    /// Resolved worker-thread count for the candidate prefetch (1 = serial;
    /// see [`crate::RoundParallelism`]). Only consulted by
    /// [`CandidateCache::prefetch`] — candidate *content* never depends on
    /// it.
    pub round_threads: usize,
}

impl AllocEnv<'_> {
    /// The throughput factor of machine `h` (1.0 when not provided, 0.0
    /// while the machine is down).
    pub fn machine_factor(&self, h: MachineId) -> f64 {
        self.machine_factors.get(h.index()).copied().unwrap_or(1.0)
    }

    /// Whether machine `h` can run tasks at all this round.
    fn machine_usable(&self, h: MachineId) -> bool {
        self.machine_factor(h) > 0.0
    }
}

/// A priced candidate placement for one job.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// The placement `w_{jh}^r`.
    pub placement: JobPlacement,
    /// Effective aggregate rate (iterations/sec) including the cross-server
    /// degradation.
    pub rate: f64,
    /// Estimated utility `U_j(f̂_j − a_j)` under this placement.
    pub utility: f64,
    /// Resource cost `Σ k_h^r w_{jh}^r`.
    pub resource_cost: f64,
    /// Communication surcharge (0 for consolidated placements).
    pub comm_cost: f64,
    /// `μ_j = utility − resource_cost − comm_cost`.
    pub payoff: f64,
    /// Whether this placement differs from the job's current one (and would
    /// therefore pay the checkpoint stall).
    pub changed: bool,
}

/// Find the best positive-payoff placement for `state`, or `None` if every
/// candidate has non-positive payoff (the job should wait this round).
pub fn find_alloc(state: &JobState, env: &AllocEnv<'_>, usage: &Usage) -> Option<Candidate> {
    find_candidates(state, env, usage).into_iter().next()
}

/// The placement-relevant *class* of a job: gang size, GPU-type preference
/// order, and which adjacent preferred types tie in throughput.
///
/// Every job-independent generator in [`find_candidates`] — consolidated,
/// spread, mixed-spread, and (when machine factors are all 0 or 1) the
/// best-single-machine mix — produces identical geometry for two jobs of the
/// same class at the same usage, because those generators consult the job
/// only through its gang size and the *order* (plus tie structure) of its
/// preferred types, never the throughput values themselves. The candidate
/// cache exploits this to enumerate each class once per usage state instead
/// of once per job — across rounds, since prices enter the geometry only
/// through their [`PriceShape`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ClassKey {
    gang: u32,
    prefs: Vec<GpuTypeId>,
    /// Bit `i` set ⇔ `rate(prefs[i]) == rate(prefs[i+1])`: resolves every
    /// bottleneck comparison in [`mixed_best_single_machine`] without the
    /// rate values (prefs are sorted by strictly descending rate between
    /// tie groups).
    ties: u32,
}

impl ClassKey {
    fn of(state: &JobState) -> Option<ClassKey> {
        let prefs = state.job.profile.types_by_preference();
        if prefs.is_empty() || prefs.len() > 32 {
            return None;
        }
        let mut ties = 0u32;
        for i in 0..prefs.len() - 1 {
            if state.job.profile.rate(prefs[i]) == state.job.profile.rate(prefs[i + 1]) {
                ties |= 1 << i;
            }
        }
        Some(ClassKey {
            gang: state.job.gang,
            prefs: prefs.to_vec(),
            ties,
        })
    }
}

/// Everything *besides* the usage state that cached geometry depends on.
/// Compared at the start of each round; any change drops the geometry layer
/// wholesale (failures/recoveries flip `usable`, degenerate price bounds
/// flip `shapes`, ablations flip `features`, stragglers flip `class_ok`).
#[derive(Clone, PartialEq, Debug)]
struct CacheCtx {
    usable: Vec<bool>,
    shapes: Vec<PriceShape>,
    features: Features,
    /// Fingerprint of the `c_h^r` capacity matrix, so a cache accidentally
    /// carried across clusters can never serve foreign geometry.
    caps_hash: u64,
    /// Class sharing is sound only when every machine factor is exactly 0
    /// or 1 — fractional stragglers make the best-single-machine bottleneck
    /// depend on rate *values*, which differ within a class.
    class_ok: bool,
}

impl CacheCtx {
    fn of(env: &AllocEnv<'_>) -> Self {
        let usable: Vec<bool> = env
            .cluster
            .machine_ids()
            .map(|h| env.machine_usable(h))
            .collect();
        let shapes: Vec<PriceShape> = env
            .cluster
            .catalog()
            .ids()
            .map(|r| env.prices.shape(r))
            .collect();
        let class_ok = env.cluster.machine_ids().all(|h| {
            let f = env.machine_factor(h);
            f == 0.0 || f == 1.0
        });
        let mut caps_hash: u64 = 0xcbf29ce484222325;
        for h in env.cluster.machine_ids() {
            for r in env.cluster.catalog().ids() {
                caps_hash ^= u64::from(env.cluster.capacity(h, r)) + 1;
                caps_hash = caps_hash.wrapping_mul(0x100000001b3);
            }
        }
        Self {
            usable,
            shapes,
            features: env.features,
            caps_hash,
            class_ok,
        }
    }
}

struct ClassEntry {
    geoms: Vec<Vec<PlacementSlice>>,
    last_used: u64,
}

/// Memo of [`find_candidates`] results, layered for reuse both within and
/// across scheduling rounds.
///
/// **Priced layer** (per round): full candidate lists keyed by
/// `(job, usage fingerprint)`. Within one round the prices, queue, and clock
/// are fixed, so a job's candidates depend only on the usage they are
/// evaluated against; the DP subroutine and its greedy floor walk usage
/// sequences that frequently coincide, and the parallel prefetch fills this
/// layer from worker threads. Cleared by [`CandidateCache::begin_round`] —
/// prices change every round and the profiler may substitute job profiles.
///
/// **Geometry layer** (cross round): raw placement geometries keyed by
/// `(`[`ClassKey`]`, usage fingerprint)`, valid as long as the [`CacheCtx`]
/// (availability mask, price shapes, feature flags) is unchanged. This is
/// what makes quiescent rounds cheap: the long tail of queued-but-rejected
/// jobs re-queries the same saturated usage round after round, and after
/// this layer warms up each such query costs one evaluation pass instead of
/// a full machines × types enumeration. Entries idle for
/// [`CLASS_KEEP_ROUNDS`] rounds are evicted.
///
/// **Pool layer** (cross round, finer grain): per-GPU-type sorted machine
/// pools keyed by `(type, `[`Usage::column_fingerprint`]`)` under the same
/// [`CacheCtx`] validity. The greedy admission loop mutates usage after
/// every admission, so its full fingerprints — and hence the class layer —
/// rarely repeat; but each admission touches only the columns of the types
/// it uses, so the *other* types' pools (and their `O(M log M)` sorts, the
/// dominant per-query cost at scale) carry over unchanged. Entries idle
/// for [`POOL_KEEP_ROUNDS`] rounds are evicted.
///
/// Exactness: geometry is deduplicated, priced, filtered, and ranked by the
/// same code in the same order as a fresh [`find_candidates`] call, and a
/// cached pool is bit-identical to a freshly built one (the key covers the
/// entire column the pool was sorted from) — so cache hits are
/// byte-identical to recomputation; only wall-clock changes. Both
/// cross-round layers can be disabled with
/// [`CandidateCache::set_cross_round`]`(false)`, which pins the cache to
/// the per-round priced layer only — the pre-optimization baseline the
/// round benchmark compares against.
#[derive(Default)]
pub struct CandidateCache {
    priced: HashMap<(u32, u64), Vec<Candidate>>,
    class: HashMap<(ClassKey, u64), ClassEntry>,
    pools: HashMap<(GpuTypeId, u64), PoolEntry>,
    cross_round: bool,
    ctx: Option<CacheCtx>,
    round: u64,
    hits: usize,
    misses: usize,
    prefetched: usize,
    class_hits: usize,
    class_misses: usize,
    pool_hits: usize,
    pool_misses: usize,
    gen_seconds: f64,
}

impl CandidateCache {
    /// An empty cache with the cross-round layers enabled. Usable as-is for
    /// a single round; call [`CandidateCache::begin_round`] between rounds
    /// to keep it alive across them.
    pub fn new() -> Self {
        Self {
            cross_round: true,
            ..Self::default()
        }
    }

    /// Enable or disable the cross-round layers (class geometry and machine
    /// pools). Disabled, every miss re-enumerates from scratch and
    /// [`CandidateCache::begin_round`] drops any cross-round state — the
    /// exact pre-cache behaviour, kept selectable so benchmarks and
    /// equivalence tests can compare against it.
    pub fn set_cross_round(&mut self, enabled: bool) {
        self.cross_round = enabled;
    }

    /// Start a new scheduling round: clears the per-round priced layer,
    /// validates the geometry layer against the round's environment
    /// (dropping it on any availability/price-shape/feature change), and
    /// evicts geometry entries idle for [`CLASS_KEEP_ROUNDS`] rounds.
    pub fn begin_round(&mut self, env: &AllocEnv<'_>) {
        self.round += 1;
        self.priced.clear();
        let ctx = CacheCtx::of(env);
        if self.ctx.as_ref() != Some(&ctx) || !self.cross_round {
            self.class.clear();
            self.pools.clear();
            self.ctx = Some(ctx);
        }
        let round = self.round;
        self.class
            .retain(|_, e| e.last_used + CLASS_KEEP_ROUNDS >= round);
        self.pools
            .retain(|_, e| e.last_used + POOL_KEEP_ROUNDS >= round);
    }

    fn ensure_ctx(&mut self, env: &AllocEnv<'_>) {
        if self.ctx.is_none() {
            self.ctx = Some(CacheCtx::of(env));
        }
    }

    /// The candidate list for `state` against `usage` (computed on first
    /// use), best payoff first.
    pub fn candidates(
        &mut self,
        state: &JobState,
        env: &AllocEnv<'_>,
        usage: &Usage,
    ) -> &[Candidate] {
        let fp = usage.fingerprint();
        let key = (state.job.id.0, fp);
        if self.priced.contains_key(&key) {
            self.hits += 1;
        } else {
            self.misses += 1;
            let t0 = Instant::now();
            let cands = self.compute(state, env, usage, fp);
            self.gen_seconds += t0.elapsed().as_secs_f64();
            self.priced.insert(key, cands);
        }
        &self.priced[&key]
    }

    /// One full enumeration, going through the geometry and pool layers
    /// when enabled (and, for the class layer, sound).
    fn compute(
        &mut self,
        state: &JobState,
        env: &AllocEnv<'_>,
        usage: &Usage,
        fp: u64,
    ) -> Vec<Candidate> {
        self.ensure_ctx(env);
        if self.cross_round && self.ctx.as_ref().is_some_and(|c| c.class_ok) {
            if let Some(class_key) = ClassKey::of(state) {
                let key = (class_key, fp);
                if let Some(e) = self.class.get_mut(&key) {
                    e.last_used = self.round;
                    self.class_hits += 1;
                } else {
                    self.class_misses += 1;
                    let geoms = self.pooled_geometries(state, env, usage);
                    self.class.insert(
                        key.clone(),
                        ClassEntry {
                            geoms,
                            last_used: self.round,
                        },
                    );
                }
                return assemble(state, env, usage, &self.class[&key].geoms);
            }
        }
        if self.cross_round {
            let geoms = self.pooled_geometries(state, env, usage);
            return assemble(state, env, usage, &geoms);
        }
        let geoms = class_geometries(state, env, usage);
        assemble(state, env, usage, &geoms)
    }

    /// Class geometry through the pool layer: any pool whose
    /// `(type, column fingerprint)` is cached is reused as-is; missing ones
    /// are built and cached. Output is identical to [`class_geometries`] —
    /// a cached pool was sorted from a column byte-equal to the current one.
    fn pooled_geometries(
        &mut self,
        state: &JobState,
        env: &AllocEnv<'_>,
        usage: &Usage,
    ) -> Vec<Vec<PlacementSlice>> {
        let prefs: &[GpuTypeId] = state.job.profile.types_by_preference();
        if prefs.is_empty() {
            return Vec::new();
        }
        self.ensure_pools(env, usage, prefs);
        let pools: Vec<&PoolEntry> = prefs
            .iter()
            .map(|&r| &self.pools[&(r, usage.column_fingerprint(r))])
            .collect();
        geometries_from_pools(state, env, usage, prefs, &pools)
    }

    /// Make sure every `prefs` type has a pool cached for `usage`'s current
    /// column state (building missing ones), and mark them used this round.
    fn ensure_pools(&mut self, env: &AllocEnv<'_>, usage: &Usage, prefs: &[GpuTypeId]) {
        for &r in prefs {
            match self.pools.entry((r, usage.column_fingerprint(r))) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    e.into_mut().last_used = self.round;
                    self.pool_hits += 1;
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    self.pool_misses += 1;
                    let mut pool = build_pool(env, usage, r);
                    pool.last_used = self.round;
                    v.insert(pool);
                }
            }
        }
    }

    /// Pre-populate the priced layer for `states` against one read-only
    /// usage snapshot using `env.round_threads` worker threads.
    ///
    /// Deterministic by construction: workers compute the same pure
    /// function a serial miss would, results are inserted in index order,
    /// and the admission loop that later consumes them is untouched — so
    /// output is byte-identical at any thread count. Jobs already priced at
    /// this usage are skipped.
    pub fn prefetch(&mut self, states: &[&JobState], env: &AllocEnv<'_>, usage: &Usage) {
        let threads = env.round_threads;
        if threads <= 1 {
            return;
        }
        let t0 = Instant::now();
        let fp = usage.fingerprint();
        let todo: Vec<&JobState> = states
            .iter()
            .copied()
            .filter(|s| !self.priced.contains_key(&(s.job.id.0, fp)))
            .collect();
        if todo.len() < 2 {
            return;
        }
        self.ensure_ctx(env);
        let class_ok = self.ctx.as_ref().is_some_and(|c| c.class_ok);
        let cross_round = self.cross_round;

        // With the cross-round layers on, materialize every pool the batch
        // can touch up front: the worker threads then share them read-only
        // and produce geometry identical to the serial pooled path. With
        // them off, workers enumerate from scratch per job — the baseline
        // path, merely parallelized.
        if cross_round {
            for s in &todo {
                self.ensure_pools(env, usage, s.job.profile.types_by_preference());
            }
        }
        let pools = &self.pools;
        let geoms_of = |s: &JobState| -> Vec<Vec<PlacementSlice>> {
            if !cross_round {
                return class_geometries(s, env, usage);
            }
            let prefs: &[GpuTypeId] = s.job.profile.types_by_preference();
            if prefs.is_empty() {
                return Vec::new();
            }
            let refs: Vec<&PoolEntry> = prefs
                .iter()
                .map(|&r| &pools[&(r, usage.column_fingerprint(r))])
                .collect();
            geometries_from_pools(s, env, usage, prefs, &refs)
        };

        if cross_round && class_ok {
            // Touch pre-existing geometry entries (they are about to be read
            // from worker threads, which cannot bump `last_used`), then
            // materialize the missing classes — in parallel, inserted in
            // first-occurrence order.
            let mut fresh: Vec<(ClassKey, &JobState)> = Vec::new();
            for s in &todo {
                if let Some(k) = ClassKey::of(s) {
                    if let Some(e) = self.class.get_mut(&(k.clone(), fp)) {
                        e.last_used = self.round;
                        self.class_hits += 1;
                    } else if !fresh.iter().any(|(f, _)| *f == k) {
                        fresh.push((k, s));
                    }
                }
            }
            let geoms = run_chunked(threads, &fresh, |(_, rep)| geoms_of(rep));
            for ((k, _), g) in fresh.into_iter().zip(geoms) {
                self.class_misses += 1;
                self.class.insert(
                    (k, fp),
                    ClassEntry {
                        geoms: g,
                        last_used: self.round,
                    },
                );
            }
        }

        // Price every job in parallel against the (now read-only) geometry
        // layer, then insert in index order.
        let class = &self.class;
        let priced = run_chunked(threads, &todo, |s| {
            if cross_round && class_ok {
                if let Some(k) = ClassKey::of(s) {
                    if let Some(e) = class.get(&(k, fp)) {
                        return assemble(s, env, usage, &e.geoms);
                    }
                }
            }
            assemble(s, env, usage, &geoms_of(s))
        });
        for (s, cands) in todo.iter().zip(priced) {
            self.prefetched += 1;
            self.priced.insert((s.job.id.0, fp), cands);
        }
        self.gen_seconds += t0.elapsed().as_secs_f64();
    }

    /// The best positive-payoff candidate, as [`find_alloc`] returns it.
    pub fn best(
        &mut self,
        state: &JobState,
        env: &AllocEnv<'_>,
        usage: &Usage,
    ) -> Option<Candidate> {
        self.candidates(state, env, usage).first().cloned()
    }

    /// Queries answered from the priced memo (including prefetched entries).
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Queries that had to run the full enumeration serially.
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// Entries computed ahead of demand by [`CandidateCache::prefetch`].
    pub fn prefetched(&self) -> usize {
        self.prefetched
    }

    /// Enumerations answered from the cross-round geometry layer.
    pub fn class_hits(&self) -> usize {
        self.class_hits
    }

    /// Geometry sets enumerated from scratch.
    pub fn class_misses(&self) -> usize {
        self.class_misses
    }

    /// Machine-pool lookups served from the pool layer (the per-query
    /// machine sort skipped).
    pub fn pool_hits(&self) -> usize {
        self.pool_hits
    }

    /// Machine pools built (and cached) from a column scan + sort.
    pub fn pool_misses(&self) -> usize {
        self.pool_misses
    }

    /// Total wall-clock seconds spent generating candidates (serial misses
    /// plus prefetch batches) over the cache's lifetime.
    pub fn gen_seconds(&self) -> f64 {
        self.gen_seconds
    }
}

/// Run `f` over `items` on up to `threads` scoped worker threads (contiguous
/// chunks), returning outputs in input order. `f` must be pure — the merge
/// is by index, so scheduling cannot influence results.
fn run_chunked<T: Sync, R: Send + Default + Clone>(
    threads: usize,
    items: &[T],
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    if items.is_empty() {
        return Vec::new();
    }
    let chunk = items.len().div_ceil(threads.max(1));
    let mut out: Vec<R> = vec![R::default(); items.len()];
    let f = &f;
    std::thread::scope(|scope| {
        for (slots, chunk_items) in out.chunks_mut(chunk).zip(items.chunks(chunk)) {
            scope.spawn(move || {
                for (slot, item) in slots.iter_mut().zip(chunk_items) {
                    *slot = f(item);
                }
            });
        }
    });
    out
}

/// All distinct positive-payoff candidate placements for `state`, best
/// first. The DP subroutine branches over these so it can deliberately give
/// a job a slower (cheaper) type when that frees a fast type for a job that
/// benefits more from it.
pub fn find_candidates(state: &JobState, env: &AllocEnv<'_>, usage: &Usage) -> Vec<Candidate> {
    assemble(state, env, usage, &class_geometries(state, env, usage))
}

/// The machines that can host type-`r` tasks at one usage column state,
/// most-free-first (machine id breaking ties) — the single ordering every
/// per-type generator consumes. Building one costs the `O(M log M)` sort
/// the pre-pool code paid inside *each* of `spread_homogeneous` and
/// `mixed_spread` per query; [`CandidateCache`] keys pools by
/// `(type, `[`Usage::column_fingerprint`]`)` so the sort is paid once per
/// column *change* (an admission touches only the columns of the types it
/// uses) instead of once per query.
struct PoolEntry {
    /// Usable machines with free type-`r` capacity: `(free, machine)`.
    by_free: Vec<(u32, MachineId)>,
    last_used: u64,
}

/// Enumerate and sort the usable free machines for type `r`.
fn build_pool(env: &AllocEnv<'_>, usage: &Usage, r: GpuTypeId) -> PoolEntry {
    let mut by_free: Vec<(u32, MachineId)> = env
        .cluster
        .machine_ids()
        .filter(|&h| env.machine_usable(h))
        .filter_map(|h| {
            let f = usage.free(env.cluster, h, r);
            (f > 0).then_some((f, h))
        })
        .collect();
    by_free.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    PoolEntry {
        by_free,
        last_used: 0,
    }
}

/// The job-independent geometry slate for `state`'s class at `usage`, in
/// generation order: per preferred type a consolidated and a spread
/// placement, then the mixed-type variants. This is the expensive
/// machines × types enumeration the cross-round cache shares between jobs
/// of one [`ClassKey`]. Builds throwaway machine pools; the cache calls
/// [`geometries_from_pools`] directly with memoized ones.
fn class_geometries(
    state: &JobState,
    env: &AllocEnv<'_>,
    usage: &Usage,
) -> Vec<Vec<PlacementSlice>> {
    let prefs: &[GpuTypeId] = state.job.profile.types_by_preference();
    let owned: Vec<PoolEntry> = prefs.iter().map(|&r| build_pool(env, usage, r)).collect();
    let pools: Vec<&PoolEntry> = owned.iter().collect();
    geometries_from_pools(state, env, usage, prefs, &pools)
}

/// [`class_geometries`] against pre-built per-type machine pools (`pools`
/// aligned with `prefs`). Pure in the pools: equal pool contents ⇒ equal
/// geometry, which is what lets the cache share pools across jobs, queries,
/// and rounds.
fn geometries_from_pools(
    state: &JobState,
    env: &AllocEnv<'_>,
    usage: &Usage,
    prefs: &[GpuTypeId],
    pools: &[&PoolEntry],
) -> Vec<Vec<PlacementSlice>> {
    if prefs.is_empty() {
        return Vec::new();
    }
    let w = state.job.gang;
    let mut geoms: Vec<Vec<PlacementSlice>> = Vec::new();
    for (&r, pool) in prefs.iter().zip(pools) {
        geoms.extend(consolidated_homogeneous(env, usage, pool, r, w));
        geoms.extend(spread_homogeneous(pool, r, w));
    }
    if env.features.mixed_types {
        geoms.extend(mixed_spread(prefs, pools, w));
        geoms.extend(mixed_best_single_machine(state, env, usage, prefs, w));
    }
    geoms
}

/// Price, deduplicate, filter, and rank a geometry slate for one job: the
/// sticky candidate (if it still fits) followed by the class geometries,
/// keeping the first occurrence of each distinct placement with positive
/// payoff, best payoff first — the exact semantics of the pre-cache
/// enumeration loop, factored out so cached and fresh geometry price
/// identically.
fn assemble(
    state: &JobState,
    env: &AllocEnv<'_>,
    usage: &Usage,
    geoms: &[Vec<PlacementSlice>],
) -> Vec<Candidate> {
    let mut cands: Vec<Candidate> = Vec::new();
    let mut consider = |slices: Vec<PlacementSlice>| {
        if let Some(c) = evaluate(state, env, usage, slices) {
            if c.payoff > 0.0 && !cands.iter().any(|o| o.placement == c.placement) {
                cands.push(c);
            }
        }
    };

    // Sticky candidate: keep the current placement if it still fits (no
    // checkpoint stall, no movement).
    if env.features.sticky
        && !state.placement.is_empty()
        && fits(env.cluster, usage, &state.placement)
    {
        consider(state.placement.slices().to_vec());
    }
    for g in geoms {
        consider(g.clone());
    }

    cands.sort_by(|a, b| b.payoff.total_cmp(&a.payoff));
    cands
}

/// Price and score one candidate.
fn evaluate(
    state: &JobState,
    env: &AllocEnv<'_>,
    usage: &Usage,
    slices: Vec<PlacementSlice>,
) -> Option<Candidate> {
    let placement = JobPlacement::from_slices(slices);
    if placement.total_workers() != state.job.gang {
        return None;
    }
    let changed = placement != state.placement;
    let bottleneck = placement
        .bottleneck_rate_per_slice(|h, r| state.job.profile.rate(r) * env.machine_factor(h))?;
    if bottleneck <= 0.0 {
        return None;
    }
    let rate = bottleneck
        * state.job.gang as f64
        * env
            .comm
            .placement_factor_racked(&placement, env.cluster.racks());
    let stall = if changed { env.realloc_stall } else { 0.0 };
    let est = estimate_completion(state, rate, env.now, stall)?;
    let utility = env.utility.value(&state.job, est.jct, est.finish);
    let resource_cost = price_of(env, usage, &placement);
    let comm_cost = env.comm.comm_cost(
        placement.num_machines(),
        resource_cost,
        placement.total_workers(),
    );
    Some(Candidate {
        payoff: utility - resource_cost - comm_cost,
        placement,
        rate,
        utility,
        resource_cost,
        comm_cost,
        changed,
    })
}

/// `Σ_h Σ_r k_h^r(γ_h^r) · w_{jh}^r` at the current usage.
pub fn price_of(env: &AllocEnv<'_>, usage: &Usage, placement: &JobPlacement) -> f64 {
    placement
        .slices()
        .iter()
        .map(|s| {
            let cap = env.cluster.capacity(s.machine, s.gpu);
            let gamma = usage.get(s.machine, s.gpu);
            env.prices.price(s.gpu, gamma, cap) * s.count as f64
        })
        .sum()
}

/// Whether `placement` fits within the free capacity left by `usage`.
pub fn fits(cluster: &Cluster, usage: &Usage, placement: &JobPlacement) -> bool {
    placement
        .slices()
        .iter()
        .all(|s| usage.free(cluster, s.machine, s.gpu) >= s.count)
}

/// All `w` workers of type `r` on one machine; among feasible machines, the
/// cheapest (lowest current price — i.e. the least-loaded server).
///
/// Selected by exact comparison rather than computed prices, so the result
/// is reusable across rounds whose price *values* differ but whose
/// [`PriceShape`] agrees: zero-priced machines (`c_h^r = 0`, or a
/// [`PriceShape::Zero`] type) rank before any positive price; on a
/// [`PriceShape::Curve`] type the price is strictly increasing in the fill
/// fraction `γ/c`, compared here by cross-multiplication; on a
/// [`PriceShape::Constant`] type every machine prices identically. Strictly
/// cheaper replaces, ties keep the earlier machine — the float argmin's
/// behaviour exactly.
fn consolidated_homogeneous(
    env: &AllocEnv<'_>,
    usage: &Usage,
    pool: &PoolEntry,
    r: GpuTypeId,
    w: u32,
) -> Option<Vec<PlacementSlice>> {
    let shape = env.prices.shape(r);
    // Cost key `(rank, γ, c)`: rank 0 ⇔ price exactly 0.0; within rank 1,
    // `a < b ⇔ γ_a·c_b < γ_b·c_a` (constant shapes use γ = 0, c = 1 so all
    // compare equal). The pool holds every usable machine with free > 0 and
    // the gang size is ≥ 1, so scanning it visits exactly the machines the
    // full cluster scan would admit; ties break on machine id explicitly
    // because the pool is not in id order.
    let mut best: Option<(u8, u64, u64, MachineId)> = None;
    for &(free, h) in &pool.by_free {
        if free < w {
            continue;
        }
        let cap = env.cluster.capacity(h, r);
        let key: (u8, u64, u64) = if cap == 0 || shape == PriceShape::Zero {
            (0, 0, 1)
        } else if shape == PriceShape::Constant {
            (1, 0, 1)
        } else {
            (1, u64::from(usage.get(h, r).min(cap)), u64::from(cap))
        };
        let cheaper = match &best {
            None => true,
            Some((rank, num, den, bh)) => {
                key.0 < *rank
                    || (key.0 == *rank
                        && (key.1 * *den < *num * key.2
                            || (key.1 * *den == *num * key.2 && h < *bh)))
            }
        };
        if cheaper {
            best = Some((key.0, key.1, key.2, h));
        }
    }
    best.map(|(_, _, _, h)| {
        vec![PlacementSlice {
            machine: h,
            gpu: r,
            count: w,
        }]
    })
}

/// All `w` workers of type `r`, spread across the fewest machines
/// (most-free-first fill).
fn spread_homogeneous(pool: &PoolEntry, r: GpuTypeId, w: u32) -> Option<Vec<PlacementSlice>> {
    fill(pool.by_free.iter().map(|&(f, h)| (h, r, f)), w)
}

/// All `w` workers filled from the fastest types first, spreading over
/// machines as needed — the fully flexible task-level placement.
fn mixed_spread(prefs: &[GpuTypeId], pools: &[&PoolEntry], w: u32) -> Option<Vec<PlacementSlice>> {
    fill(
        prefs
            .iter()
            .zip(pools)
            .flat_map(|(&r, p)| p.by_free.iter().map(move |&(f, h)| (h, r, f))),
        w,
    )
}

/// All `w` workers on a single machine, mixing types (fastest first);
/// evaluated per machine, returning the feasible fill with the highest
/// bottleneck throughput (ties to lower machine id).
fn mixed_best_single_machine(
    state: &JobState,
    env: &AllocEnv<'_>,
    usage: &Usage,
    prefs: &[GpuTypeId],
    w: u32,
) -> Option<Vec<PlacementSlice>> {
    // Pass 1: score every machine without materializing its fill — the
    // fill is a pure function of `(machine, prefs, w)`, so only the winner's
    // needs to be built. (The previous version allocated a slice vector per
    // machine; at cluster scale that allocation churn dominated candidate
    // generation.)
    let mut best: Option<(f64, MachineId)> = None;
    for h in env.cluster.machine_ids() {
        if !env.machine_usable(h) {
            continue;
        }
        let mut remaining = w;
        let mut bottleneck = f64::INFINITY;
        for &r in prefs {
            if remaining == 0 {
                break;
            }
            let free = usage.free(env.cluster, h, r);
            let take = free.min(remaining);
            if take > 0 {
                bottleneck = bottleneck.min(state.job.profile.rate(r) * env.machine_factor(h));
                remaining -= take;
            }
        }
        if remaining == 0 && best.as_ref().is_none_or(|(b, _)| bottleneck > *b) {
            best = Some((bottleneck, h));
        }
    }
    // Pass 2: rebuild the winning machine's fill (deterministically the
    // same takes pass 1 scored).
    best.map(|(_, h)| {
        let mut remaining = w;
        let mut slices = Vec::new();
        for &r in prefs {
            if remaining == 0 {
                break;
            }
            let take = usage.free(env.cluster, h, r).min(remaining);
            if take > 0 {
                slices.push(PlacementSlice {
                    machine: h,
                    gpu: r,
                    count: take,
                });
                remaining -= take;
            }
        }
        slices
    })
}

/// Take from `(machine, type, available)` entries in order until `w` workers
/// are placed; `None` if the pool is too small.
fn fill(
    pool: impl Iterator<Item = (MachineId, GpuTypeId, u32)>,
    w: u32,
) -> Option<Vec<PlacementSlice>> {
    let mut remaining = w;
    let mut slices = Vec::new();
    for (machine, gpu, avail) in pool {
        if remaining == 0 {
            break;
        }
        let take = avail.min(remaining);
        if take > 0 {
            slices.push(PlacementSlice {
                machine,
                gpu,
                count: take,
            });
            remaining -= take;
        }
    }
    (remaining == 0).then_some(slices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::utility::EffectiveThroughput;
    use hadar_cluster::JobId;
    use hadar_workload::{DlTask, Job};

    fn setup(gang: u32) -> (Cluster, JobState) {
        let cluster = Cluster::motivation_toy(); // 2 V100 | 3 P100 | 1 K80
        let job = Job::for_model(JobId(0), DlTask::ResNet18, cluster.catalog(), 0.0, gang, 50);
        (cluster, JobState::new(job))
    }

    fn env<'a>(
        cluster: &'a Cluster,
        comm: &'a CommCostModel,
        prices: &'a PriceState,
        utility: &'a EffectiveThroughput,
    ) -> AllocEnv<'a> {
        AllocEnv {
            cluster,
            comm,
            prices,
            utility,
            now: 0.0,
            realloc_stall: 10.0,
            features: Features::default(),
            machine_factors: &[],
            round_threads: 1,
        }
    }

    fn prices_for(cluster: &Cluster, state: &JobState) -> PriceState {
        PriceState::compute(
            std::slice::from_ref(state),
            cluster,
            &EffectiveThroughput,
            0.0,
        )
    }

    #[test]
    fn small_gang_lands_consolidated_on_fastest_type() {
        let (cluster, state) = setup(2);
        let comm = CommCostModel::default();
        let prices = prices_for(&cluster, &state);
        let u = EffectiveThroughput;
        let e = env(&cluster, &comm, &prices, &u);
        let usage = Usage::empty(&cluster);
        let c = find_alloc(&state, &e, &usage).expect("positive payoff expected");
        // Both V100s on machine 0: consolidated, fastest.
        assert!(c.placement.is_consolidated());
        assert_eq!(c.placement.gpu_types(), vec![GpuTypeId(0)]);
        assert_eq!(c.placement.total_workers(), 2);
        assert!(c.payoff > 0.0);
        assert!(c.comm_cost == 0.0);
    }

    #[test]
    fn large_gang_mixes_types_when_needed() {
        // Gang of 6 needs every GPU in the toy cluster: must mix all types.
        let (cluster, state) = setup(6);
        let comm = CommCostModel::default();
        let prices = prices_for(&cluster, &state);
        let u = EffectiveThroughput;
        let e = env(&cluster, &comm, &prices, &u);
        let usage = Usage::empty(&cluster);
        let c = find_alloc(&state, &e, &usage).expect("only mixed placement fits");
        assert_eq!(c.placement.total_workers(), 6);
        assert_eq!(c.placement.gpu_types().len(), 3);
        // Rate = bottleneck (K80 = 20 it/s) × 6 × comm factor (3 machines).
        let expect = 20.0 * 6.0 * comm.throughput_factor(3);
        assert!((c.rate - expect).abs() < 1e-9, "rate={}", c.rate);
    }

    #[test]
    fn respects_existing_usage() {
        let (cluster, state) = setup(2);
        let comm = CommCostModel::default();
        let prices = prices_for(&cluster, &state);
        let u = EffectiveThroughput;
        let e = env(&cluster, &comm, &prices, &u);
        let mut usage = Usage::empty(&cluster);
        // Occupy both V100s: the job must fall back to P100s.
        usage.add(MachineId(0), GpuTypeId(0), 2);
        let c = find_alloc(&state, &e, &usage).expect("P100s are free");
        assert_eq!(c.placement.gpu_types(), vec![GpuTypeId(1)]);
    }

    #[test]
    fn none_when_nothing_fits() {
        let (cluster, state) = setup(2);
        let comm = CommCostModel::default();
        let prices = prices_for(&cluster, &state);
        let u = EffectiveThroughput;
        let e = env(&cluster, &comm, &prices, &u);
        let mut usage = Usage::empty(&cluster);
        for h in cluster.machine_ids() {
            for r in cluster.catalog().ids() {
                usage.add(h, r, cluster.capacity(h, r));
            }
        }
        assert_eq!(find_alloc(&state, &e, &usage), None);
    }

    #[test]
    fn sticky_placement_preferred_under_equal_rates() {
        let (cluster, mut state) = setup(2);
        let comm = CommCostModel::default();
        let prices = prices_for(&cluster, &state);
        let u = EffectiveThroughput;
        let e = env(&cluster, &comm, &prices, &u);
        let usage = Usage::empty(&cluster);
        // Job already sits on the V100s: keeping it avoids the 10 s stall,
        // so the sticky candidate must win and report `changed = false`.
        state.placement = JobPlacement::single(MachineId(0), GpuTypeId(0), 2);
        let c = find_alloc(&state, &e, &usage).unwrap();
        assert!(!c.changed);
        assert_eq!(c.placement, state.placement);
    }

    #[test]
    fn moving_pays_off_when_current_spot_is_slow() {
        let (cluster, mut state) = setup(1);
        let comm = CommCostModel::default();
        let prices = prices_for(&cluster, &state);
        let u = EffectiveThroughput;
        let e = env(&cluster, &comm, &prices, &u);
        let usage = Usage::empty(&cluster);
        // Currently on the K80 (20 it/s); V100 (120 it/s) is free. The gain
        // dwarfs the 10 s checkpoint stall for this 50-epoch job.
        state.placement = JobPlacement::single(MachineId(2), GpuTypeId(2), 1);
        let c = find_alloc(&state, &e, &usage).unwrap();
        assert!(c.changed);
        assert_eq!(c.placement.gpu_types(), vec![GpuTypeId(0)]);
    }

    #[test]
    fn straggler_awareness_migrates_off_slow_machine() {
        // Two 2-GPU V100 machines; the job currently runs on machine 0,
        // which is straggling at 30% speed. The stall-free sticky candidate
        // loses to moving onto the healthy machine.
        let mut b = hadar_cluster::ClusterBuilder::new();
        let v100 = b.gpu_type("V100");
        b.machine(&[(v100, 2)]);
        b.machine(&[(v100, 2)]);
        let cluster = b.build();
        let job = hadar_workload::Job::for_model(
            hadar_cluster::JobId(0),
            hadar_workload::DlTask::ResNet18,
            cluster.catalog(),
            0.0,
            2,
            100,
        );
        let mut state = JobState::new(job);
        state.placement = JobPlacement::single(MachineId(0), GpuTypeId(0), 2);
        let comm = CommCostModel::default();
        let prices = PriceState::compute(
            std::slice::from_ref(&state),
            &cluster,
            &EffectiveThroughput,
            0.0,
        );
        let factors = [0.3, 1.0];
        let e = AllocEnv {
            cluster: &cluster,
            comm: &comm,
            prices: &prices,
            utility: &EffectiveThroughput,
            now: 0.0,
            realloc_stall: 10.0,
            features: Features::default(),
            machine_factors: &factors,
            round_threads: 1,
        };
        let usage = Usage::empty(&cluster);
        let c = find_alloc(&state, &e, &usage).expect("healthy machine available");
        assert!(c.changed, "should migrate off the straggler");
        assert_eq!(c.placement.slices()[0].machine, MachineId(1));
        // And with the straggle gone, the sticky placement wins again.
        let e2 = AllocEnv {
            machine_factors: &[],
            ..e
        };
        let c2 = find_alloc(&state, &e2, &usage).unwrap();
        assert!(!c2.changed);
    }

    #[test]
    fn down_machine_is_never_selected() {
        // Same two-machine setup, but machine 0 is *down* (factor 0.0): the
        // sticky candidate dies and every generated candidate must live
        // entirely on machine 1. With both machines down, no candidate
        // survives at all.
        let mut b = hadar_cluster::ClusterBuilder::new();
        let v100 = b.gpu_type("V100");
        b.machine(&[(v100, 2)]);
        b.machine(&[(v100, 2)]);
        let cluster = b.build();
        let job = hadar_workload::Job::for_model(
            hadar_cluster::JobId(0),
            hadar_workload::DlTask::ResNet18,
            cluster.catalog(),
            0.0,
            2,
            100,
        );
        let mut state = JobState::new(job);
        state.placement = JobPlacement::single(MachineId(0), GpuTypeId(0), 2);
        let comm = CommCostModel::default();
        let prices = PriceState::compute(
            std::slice::from_ref(&state),
            &cluster,
            &EffectiveThroughput,
            0.0,
        );
        let factors = [0.0, 1.0];
        let e = AllocEnv {
            cluster: &cluster,
            comm: &comm,
            prices: &prices,
            utility: &EffectiveThroughput,
            now: 0.0,
            realloc_stall: 10.0,
            features: Features::default(),
            machine_factors: &factors,
            round_threads: 1,
        };
        let usage = Usage::empty(&cluster);
        let cands = find_candidates(&state, &e, &usage);
        assert!(!cands.is_empty());
        for c in &cands {
            assert!(
                c.placement
                    .slices()
                    .iter()
                    .all(|sl| sl.machine == MachineId(1)),
                "candidate touches the dead machine: {:?}",
                c.placement
            );
        }
        let c = find_alloc(&state, &e, &usage).expect("healthy machine available");
        assert!(c.changed, "must evacuate the dead machine");
        assert_eq!(c.placement.slices()[0].machine, MachineId(1));
        // Whole cluster down ⇒ nothing schedulable.
        let all_down = [0.0, 0.0];
        let e2 = AllocEnv {
            machine_factors: &all_down,
            ..e
        };
        assert!(find_alloc(&state, &e2, &usage).is_none());
    }

    #[test]
    fn price_of_sums_per_slice() {
        let (cluster, state) = setup(2);
        let comm = CommCostModel::default();
        let prices = prices_for(&cluster, &state);
        let u = EffectiveThroughput;
        let e = env(&cluster, &comm, &prices, &u);
        let usage = Usage::empty(&cluster);
        let p = JobPlacement::single(MachineId(0), GpuTypeId(0), 2);
        let got = price_of(&e, &usage, &p);
        let unit = prices.price(GpuTypeId(0), 0, 2);
        assert!((got - 2.0 * unit).abs() < 1e-12);
    }

    #[test]
    fn candidate_cache_memoizes_per_state() {
        let (cluster, state) = setup(2);
        let comm = CommCostModel::default();
        let prices = prices_for(&cluster, &state);
        let u = EffectiveThroughput;
        let e = env(&cluster, &comm, &prices, &u);
        let usage = Usage::empty(&cluster);
        let mut cache = CandidateCache::new();

        let direct = find_candidates(&state, &e, &usage);
        assert_eq!(cache.candidates(&state, &e, &usage), direct.as_slice());
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        // Same (job, usage) again: answered from the memo, same content.
        assert_eq!(cache.candidates(&state, &e, &usage), direct.as_slice());
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        // `best` agrees with `find_alloc`.
        assert_eq!(
            cache.best(&state, &e, &usage),
            find_alloc(&state, &e, &usage)
        );
        assert_eq!((cache.hits(), cache.misses()), (2, 1));

        // A different usage state is a distinct key.
        let mut used = usage.clone();
        used.add(MachineId(0), GpuTypeId(0), 2);
        assert_eq!(
            cache.candidates(&state, &e, &used),
            find_candidates(&state, &e, &used).as_slice()
        );
        assert_eq!((cache.hits(), cache.misses()), (2, 2));
    }

    #[test]
    fn cross_round_geometry_reuse_is_exact() {
        // Two jobs of the same model and gang share a ClassKey; after the
        // first enumeration the second job (and later rounds) must be served
        // from the geometry layer with byte-identical candidate lists.
        let cluster = Cluster::motivation_toy();
        let a = JobState::new(Job::for_model(
            JobId(0),
            DlTask::ResNet18,
            cluster.catalog(),
            0.0,
            2,
            50,
        ));
        let b = JobState::new(Job::for_model(
            JobId(1),
            DlTask::ResNet18,
            cluster.catalog(),
            0.0,
            2,
            80,
        ));
        let comm = CommCostModel::default();
        let prices = prices_for(&cluster, &a);
        let u = EffectiveThroughput;
        let e = env(&cluster, &comm, &prices, &u);
        let usage = Usage::empty(&cluster);
        let mut cache = CandidateCache::new();

        cache.begin_round(&e);
        assert_eq!(
            cache.candidates(&a, &e, &usage),
            find_candidates(&a, &e, &usage).as_slice()
        );
        assert_eq!(
            cache.candidates(&b, &e, &usage),
            find_candidates(&b, &e, &usage).as_slice()
        );
        assert_eq!((cache.class_hits(), cache.class_misses()), (1, 1));

        // Next round: the priced layer is gone, the geometry layer serves.
        cache.begin_round(&e);
        assert_eq!(
            cache.candidates(&a, &e, &usage),
            find_candidates(&a, &e, &usage).as_slice()
        );
        assert_eq!((cache.class_hits(), cache.class_misses()), (2, 1));
    }

    #[test]
    fn straggler_factors_disable_class_sharing_but_stay_exact() {
        // With a fractional machine factor the bottleneck comparison depends
        // on rate values, so class sharing must switch off — and a context
        // change between rounds must drop previously cached geometry.
        let (cluster, state) = setup(2);
        let other = JobState::new(Job::for_model(
            JobId(7),
            DlTask::ResNet18,
            cluster.catalog(),
            0.0,
            2,
            60,
        ));
        let comm = CommCostModel::default();
        let prices = prices_for(&cluster, &state);
        let u = EffectiveThroughput;
        let healthy = env(&cluster, &comm, &prices, &u);
        let factors = [0.3, 1.0, 1.0];
        let straggling = AllocEnv {
            machine_factors: &factors,
            ..env(&cluster, &comm, &prices, &u)
        };
        let usage = Usage::empty(&cluster);
        let mut cache = CandidateCache::new();

        cache.begin_round(&healthy);
        cache.candidates(&state, &healthy, &usage);
        assert_eq!(cache.class_misses(), 1);

        cache.begin_round(&straggling);
        assert_eq!(
            cache.candidates(&state, &straggling, &usage),
            find_candidates(&state, &straggling, &usage).as_slice()
        );
        assert_eq!(
            cache.candidates(&other, &straggling, &usage),
            find_candidates(&other, &straggling, &usage).as_slice()
        );
        // Same class, but no sharing happened under fractional factors.
        assert_eq!(cache.class_hits(), 0);
        assert_eq!(cache.class_misses(), 1);
    }

    #[test]
    fn idle_geometry_entries_are_evicted() {
        let (cluster, state) = setup(2);
        let comm = CommCostModel::default();
        let prices = prices_for(&cluster, &state);
        let u = EffectiveThroughput;
        let e = env(&cluster, &comm, &prices, &u);
        let usage = Usage::empty(&cluster);
        let mut cache = CandidateCache::new();

        cache.begin_round(&e);
        cache.candidates(&state, &e, &usage);
        assert_eq!(cache.class_misses(), 1);

        // Kept alive while recently used…
        cache.begin_round(&e);
        cache.candidates(&state, &e, &usage);
        assert_eq!((cache.class_hits(), cache.class_misses()), (1, 1));

        // …but evicted after CLASS_KEEP_ROUNDS idle rounds.
        for _ in 0..=CLASS_KEEP_ROUNDS {
            cache.begin_round(&e);
        }
        cache.candidates(&state, &e, &usage);
        assert_eq!((cache.class_hits(), cache.class_misses()), (1, 2));
    }

    #[test]
    fn prefetch_is_byte_identical_to_serial() {
        let cluster = Cluster::motivation_toy();
        let models = [
            DlTask::ResNet18,
            DlTask::ResNet50,
            DlTask::Lstm,
            DlTask::ResNet18,
            DlTask::Transformer,
            DlTask::ResNet18,
        ];
        let states: Vec<JobState> = models
            .iter()
            .enumerate()
            .map(|(i, &m)| {
                JobState::new(Job::for_model(
                    JobId(i as u32),
                    m,
                    cluster.catalog(),
                    0.0,
                    1 + (i as u32 % 3),
                    40 + 10 * i as u64,
                ))
            })
            .collect();
        let refs: Vec<&JobState> = states.iter().collect();
        let comm = CommCostModel::default();
        let prices = PriceState::compute(&states, &cluster, &EffectiveThroughput, 0.0);
        let u = EffectiveThroughput;
        let usage = Usage::empty(&cluster);

        for factors in [vec![], vec![0.3, 1.0, 1.0]] {
            let e = AllocEnv {
                cluster: &cluster,
                comm: &comm,
                prices: &prices,
                utility: &u,
                now: 0.0,
                realloc_stall: 10.0,
                features: Features::default(),
                machine_factors: &factors,
                round_threads: 4,
            };
            let mut cache = CandidateCache::new();
            cache.begin_round(&e);
            cache.prefetch(&refs, &e, &usage);
            assert_eq!(cache.prefetched(), states.len());
            assert_eq!(cache.misses(), 0);
            for s in &states {
                assert_eq!(
                    cache.candidates(s, &e, &usage),
                    find_candidates(s, &e, &usage).as_slice(),
                    "prefetched candidates diverge for job {} (factors {factors:?})",
                    s.job.id
                );
            }
            assert_eq!(cache.hits(), states.len());
        }
    }

    #[test]
    #[ignore = "manual perf probe"]
    fn perf_probe_component_breakdown() {
        use std::time::Instant;
        let cluster = Cluster::scaled(64);
        let models = [
            DlTask::ResNet18,
            DlTask::ResNet50,
            DlTask::Lstm,
            DlTask::Transformer,
        ];
        let states: Vec<JobState> = (0..600)
            .map(|i| {
                JobState::new(Job::for_model(
                    JobId(i as u32),
                    models[i % models.len()],
                    cluster.catalog(),
                    0.0,
                    [1, 2, 4, 8][i % 4],
                    40 + (i as u64 % 50),
                ))
            })
            .collect();
        let comm = CommCostModel::default();
        let prices = PriceState::compute(&states, &cluster, &EffectiveThroughput, 0.0);
        let u = EffectiveThroughput;
        let e = env(&cluster, &comm, &prices, &u);
        let mut usage = Usage::empty(&cluster);
        let (mut t_pool, mut t_cons, mut t_spread, mut t_mixed, mut t_single, mut t_asm) =
            (0.0f64, 0.0f64, 0.0f64, 0.0f64, 0.0f64, 0.0f64);
        let mut queries = 0usize;
        for s in &states {
            if usage.is_cluster_full(&cluster) {
                break;
            }
            queries += 1;
            let prefs = s.job.profile.types_by_preference();
            let w = s.job.gang;
            let t0 = Instant::now();
            let owned: Vec<PoolEntry> = prefs.iter().map(|&r| build_pool(&e, &usage, r)).collect();
            let pools: Vec<&PoolEntry> = owned.iter().collect();
            t_pool += t0.elapsed().as_secs_f64();
            let mut geoms = Vec::new();
            let t0 = Instant::now();
            for (&r, p) in prefs.iter().zip(&pools) {
                geoms.extend(consolidated_homogeneous(&e, &usage, p, r, w));
            }
            t_cons += t0.elapsed().as_secs_f64();
            let t0 = Instant::now();
            for (&r, p) in prefs.iter().zip(&pools) {
                geoms.extend(spread_homogeneous(p, r, w));
            }
            t_spread += t0.elapsed().as_secs_f64();
            let t0 = Instant::now();
            geoms.extend(mixed_spread(prefs, &pools, w));
            t_mixed += t0.elapsed().as_secs_f64();
            let t0 = Instant::now();
            geoms.extend(mixed_best_single_machine(s, &e, &usage, prefs, w));
            t_single += t0.elapsed().as_secs_f64();
            let t0 = Instant::now();
            let cands = assemble(s, &e, &usage, &geoms);
            t_asm += t0.elapsed().as_secs_f64();
            if let Some(c) = cands.first() {
                if c.payoff > 0.0 {
                    for sl in c.placement.slices() {
                        usage.add(sl.machine, sl.gpu, sl.count);
                    }
                }
            }
        }
        let us = |t: f64| t / queries as f64 * 1e6;
        eprintln!(
            "{queries} queries: pool {:.2}us cons {:.2}us spread {:.2}us mixed {:.2}us single {:.2}us assemble {:.2}us",
            us(t_pool), us(t_cons), us(t_spread), us(t_mixed), us(t_single), us(t_asm),
        );
    }

    #[test]
    fn unrunnable_job_gets_nothing() {
        let cluster = Cluster::motivation_toy();
        let profile = hadar_workload::ThroughputProfile::from_rates(vec![0.0, 0.0, 0.0]);
        let job = Job::new(JobId(0), DlTask::Lstm, 0.0, 1, 1, 10, profile);
        let state = JobState::new(job);
        let comm = CommCostModel::default();
        let prices = prices_for(&cluster, &state);
        let u = EffectiveThroughput;
        let e = env(&cluster, &comm, &prices, &u);
        assert_eq!(find_alloc(&state, &e, &Usage::empty(&cluster)), None);
    }
}

//! Job utility functions `U_j(·)` (§III-A).
//!
//! The utility of a job is "a general non-negative function that
//! characterizes the value of a job's execution" — the knob through which
//! the optimization framework expresses different scheduling objectives.
//! All shipped utilities are non-negative and non-increasing in completion
//! time, as the primal–dual analysis requires.

use hadar_cluster::Cluster;
use hadar_metrics::isolated_finish_time;
use hadar_workload::Job;

/// A job-utility function.
///
/// `value` receives the job, its (estimated) completion duration
/// `jct = f_j − a_j`, and the absolute finish time `f_j`, and returns a
/// non-negative score.
pub trait Utility: Send + Sync {
    /// Display name.
    fn name(&self) -> &str;

    /// `U_j(f_j − a_j)`.
    fn value(&self, job: &Job, jct: f64, finish: f64) -> f64;
}

/// The paper's default special case: *effective throughput* — the average
/// number of iterations completed per second over the job's lifetime,
/// `E_j·N_j / (f_j − a_j)` — **normalized** by the job's best per-worker
/// device rate `max_r X_j^r`.
///
/// Raw iterations/second are not comparable across models (a ResNet-18
/// iteration is ~40× cheaper than a ResNet-50 one), so summing raw rates
/// would systematically hand fast GPUs to small-iteration models. Dividing
/// by `max_r X_j^r` expresses each job's progress in units of "best-device
/// worker equivalents" (exactly how Gavel normalizes throughputs), making
/// utilities commensurable: a job scores its gang size when running fully
/// on its fastest type. For the unnormalized literal form of the paper's
/// definition, use [`RawEffectiveThroughput`].
#[derive(Debug, Clone, Copy, Default)]
pub struct EffectiveThroughput;

impl Utility for EffectiveThroughput {
    fn name(&self) -> &str {
        "effective-throughput"
    }
    fn value(&self, job: &Job, jct: f64, _finish: f64) -> f64 {
        let best = job.profile.max_rate();
        if jct <= 0.0 || best <= 0.0 {
            return 0.0;
        }
        job.total_iterations() / (jct * best)
    }
}

/// The literal unnormalized effective throughput `E_j·N_j / (f_j − a_j)`,
/// in raw iterations/second. Only meaningful when all jobs train comparable
/// models; shipped for fidelity and ablations.
#[derive(Debug, Clone, Copy, Default)]
pub struct RawEffectiveThroughput;

impl Utility for RawEffectiveThroughput {
    fn name(&self) -> &str {
        "raw-effective-throughput"
    }
    fn value(&self, job: &Job, jct: f64, _finish: f64) -> f64 {
        if jct <= 0.0 {
            return 0.0;
        }
        job.total_iterations() / jct
    }
}

/// Makespan objective (§III-A: `min max_j f_j`): utility decays with the
/// *absolute* finish time, so the scheduler prefers schedules that pull the
/// latest finishers earlier regardless of arrival times.
///
/// `scale` sets the utility magnitude (`U = scale · W_j / f_j`); it cancels
/// in all intra-round comparisons but keeps prices well-conditioned.
#[derive(Debug, Clone, Copy)]
pub struct MinMakespan {
    /// Numerator scale (default `1e6`).
    pub scale: f64,
}

impl Default for MinMakespan {
    fn default() -> Self {
        Self { scale: 1e6 }
    }
}

impl Utility for MinMakespan {
    fn name(&self) -> &str {
        "min-makespan"
    }
    fn value(&self, job: &Job, _jct: f64, finish: f64) -> f64 {
        if finish <= 0.0 {
            return 0.0;
        }
        self.scale * job.gang as f64 / finish
    }
}

/// Finish-time-fairness objective (§III-A:
/// `min max_j (f_j − a_j)/(f_j^isolated − a_j)`): inverse predicted slowdown
/// `1/ρ` weighted by the job's *tail-risk rate* `1/iso`,
/// `U = scale / (jct · iso)`.
///
/// The naive choice `U = 1/ρ = iso/jct` inverts the objective's priorities:
/// a job already behind its fair share has a large accrued `jct`, hence a
/// *low* utility, and keeps losing the allocation auction — the longer it
/// waits the lower it bids, a starvation spiral that empirically *worsens*
/// max-ρ versus the throughput objective on every trace seed. The missing
/// ingredient is that ρ grows at rate `1/iso` per second of further delay:
/// short-fair-share jobs are the ones whose slowdown explodes while they
/// queue. Dividing the inverse slowdown by `iso` makes each job's bid
/// proportional to exactly that risk rate, which restores the min-max-ρ
/// incentive while keeping the utility non-increasing in completion time as
/// the primal–dual analysis requires.
#[derive(Debug, Clone)]
pub struct FtfUtility {
    cluster: Cluster,
    n_jobs: usize,
    scale: f64,
}

impl FtfUtility {
    /// Numeric conditioning constant: a pure multiplier on every job's
    /// utility cancels out of all payoff/price comparisons (prices and the
    /// communication surcharge are both derived from the same utilities) but
    /// keeps typical values near `O(1)` instead of `O(1e-10)`.
    pub const SCALE: f64 = 1e9;

    /// Build for a cluster shared by `n_jobs` jobs (the Themis `1/n`
    /// reference share).
    pub fn new(cluster: Cluster, n_jobs: usize) -> Self {
        Self {
            cluster,
            n_jobs: n_jobs.max(1),
            scale: Self::SCALE,
        }
    }
}

impl Utility for FtfUtility {
    fn name(&self) -> &str {
        "finish-time-fairness"
    }
    fn value(&self, job: &Job, jct: f64, _finish: f64) -> f64 {
        if jct <= 0.0 {
            return 0.0;
        }
        let iso = isolated_finish_time(job, &self.cluster, self.n_jobs);
        if !iso.is_finite() || iso <= 0.0 {
            return 0.0;
        }
        // (1/ρ) · (1/iso) = iso/(jct·iso²): inverse slowdown, weighted by
        // how fast ρ degrades per second this job is kept waiting.
        self.scale / (jct * iso)
    }
}

/// Enum-dispatch wrapper so configurations stay `Copy`-friendly and the
/// scheduler avoids `dyn` in its hot loop. Custom utilities can still be
/// used via [`UtilityKind::Custom`].
#[derive(Default)]
pub enum UtilityKind {
    /// [`EffectiveThroughput`].
    #[default]
    EffectiveThroughput,
    /// [`MinMakespan`] with its scale.
    MinMakespan(MinMakespan),
    /// [`FtfUtility`].
    Ftf(FtfUtility),
    /// Any user-supplied utility.
    Custom(Box<dyn Utility>),
}

impl std::fmt::Debug for UtilityKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl Utility for UtilityKind {
    fn name(&self) -> &str {
        match self {
            UtilityKind::EffectiveThroughput => EffectiveThroughput.name(),
            UtilityKind::MinMakespan(u) => u.name(),
            UtilityKind::Ftf(u) => u.name(),
            UtilityKind::Custom(u) => u.name(),
        }
    }
    fn value(&self, job: &Job, jct: f64, finish: f64) -> f64 {
        match self {
            UtilityKind::EffectiveThroughput => EffectiveThroughput.value(job, jct, finish),
            UtilityKind::MinMakespan(u) => u.value(job, jct, finish),
            UtilityKind::Ftf(u) => u.value(job, jct, finish),
            UtilityKind::Custom(u) => u.value(job, jct, finish),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hadar_cluster::JobId;
    use hadar_workload::DlTask;

    fn job() -> Job {
        let c = Cluster::paper_simulation();
        Job::for_model(JobId(0), DlTask::ResNet18, c.catalog(), 0.0, 2, 100)
    }

    #[test]
    fn effective_throughput_is_normalized_work_over_time() {
        let j = job();
        let u = EffectiveThroughput.value(&j, 100.0, 100.0);
        let best = j.profile.max_rate();
        assert!((u - j.total_iterations() / (100.0 * best)).abs() < 1e-9);
        // Faster completion → higher utility.
        assert!(EffectiveThroughput.value(&j, 50.0, 50.0) > u);
        assert_eq!(EffectiveThroughput.value(&j, 0.0, 0.0), 0.0);
        // Running the whole life at the best rate scores the gang size.
        let t_best = j.min_runtime();
        assert!((EffectiveThroughput.value(&j, t_best, t_best) - j.gang as f64).abs() < 1e-9);
    }

    #[test]
    fn raw_effective_throughput_is_unnormalized() {
        let j = job();
        let raw = RawEffectiveThroughput.value(&j, 100.0, 100.0);
        assert!((raw - j.total_iterations() / 100.0).abs() < 1e-9);
        let norm = EffectiveThroughput.value(&j, 100.0, 100.0);
        assert!((raw / norm - j.profile.max_rate()).abs() < 1e-6);
    }

    #[test]
    fn makespan_utility_decays_with_finish_time() {
        let j = job();
        let u = MinMakespan::default();
        assert!(u.value(&j, 10.0, 100.0) > u.value(&j, 10.0, 200.0));
        assert_eq!(u.value(&j, 10.0, 0.0), 0.0);
    }

    #[test]
    fn ftf_utility_is_risk_weighted_inverse_slowdown() {
        let j = job();
        let c = Cluster::paper_simulation();
        let iso = isolated_finish_time(&j, &c, 4);
        let u = FtfUtility::new(c, 4);
        // U = scale/(jct·iso): at fair share (ρ = 1) the bid is scale/iso².
        let at_fair = u.value(&j, iso, iso);
        assert!((at_fair - FtfUtility::SCALE / (iso * iso)).abs() < 1e-9 * at_fair);
        // Finishing in half the fair time doubles the bid...
        assert!((u.value(&j, iso / 2.0, iso / 2.0) - 2.0 * at_fair).abs() < 1e-9 * at_fair);
        // ...and it is strictly decreasing in jct (primal–dual requirement).
        assert!(u.value(&j, iso * 2.0, iso * 2.0) < at_fair);
    }

    #[test]
    fn ftf_utility_prioritizes_high_risk_jobs() {
        // Two jobs at the *same* predicted slowdown ρ: the one with the
        // shorter fair-share time (whose ρ inflates fastest per second of
        // queueing) must bid strictly higher.
        let c = Cluster::paper_simulation();
        let small = Job::for_model(JobId(1), DlTask::ResNet18, c.catalog(), 0.0, 1, 10);
        let big = Job::for_model(JobId(2), DlTask::ResNet18, c.catalog(), 0.0, 1, 1000);
        let iso_small = isolated_finish_time(&small, &c, 4);
        let iso_big = isolated_finish_time(&big, &c, 4);
        assert!(iso_small < iso_big);
        let u = FtfUtility::new(c, 4);
        let rho = 1.5;
        assert!(
            u.value(&small, rho * iso_small, rho * iso_small)
                > u.value(&big, rho * iso_big, rho * iso_big)
        );
    }

    #[test]
    fn all_utilities_non_negative() {
        let j = job();
        let c = Cluster::paper_simulation();
        let kinds: Vec<UtilityKind> = vec![
            UtilityKind::EffectiveThroughput,
            UtilityKind::MinMakespan(MinMakespan::default()),
            UtilityKind::Ftf(FtfUtility::new(c, 8)),
        ];
        for k in &kinds {
            for jct in [0.0, 1.0, 1e3, 1e9] {
                assert!(k.value(&j, jct, jct + 5.0) >= 0.0, "{}", k.name());
            }
        }
    }

    #[test]
    fn custom_utility_dispatch() {
        struct Constant;
        impl Utility for Constant {
            fn name(&self) -> &str {
                "constant"
            }
            fn value(&self, _: &Job, _: f64, _: f64) -> f64 {
                7.0
            }
        }
        let k = UtilityKind::Custom(Box::new(Constant));
        assert_eq!(k.name(), "constant");
        assert_eq!(k.value(&job(), 1.0, 1.0), 7.0);
    }
}

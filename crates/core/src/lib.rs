#![warn(missing_docs)]

//! # hadar-core
//!
//! The Hadar scheduler (Sultana et al., IPDPS 2024): a *task-level*
//! heterogeneity-aware online scheduler for deep-learning clusters, built on
//! an online primal–dual optimization framework.
//!
//! ## How it works
//!
//! Each scheduling round (Algorithm 1):
//!
//! 1. [`price`] computes per-type utility bounds `U_max^r` / `U_min^r`
//!    (Eqs. 6–8) over the current queue and exposes the exponential resource
//!    price `k_h^r(γ) = U_min (U_max/U_min)^(γ/c)` (Eq. 5). The price starts
//!    low enough to admit any job on an idle server and rises to `U_max` as
//!    the server fills, pricing low-utility jobs out — the mechanism behind
//!    the `2α` competitive ratio (Theorem 2), exposed via
//!    [`price::CompetitiveBound`].
//! 2. [`find_alloc`] (Algorithm 2's `FIND_ALLOC`) enumerates candidate
//!    placements for one job — homogeneous or *mixed-type* (the task-level
//!    flexibility Gavel lacks), consolidated or spread across servers (with
//!    communication cost) — prices each against the current usage, and
//!    returns the best positive-payoff candidate
//!    `μ_j = U_j(f̂_j − a_j) − Σ k_h^r w_{jh}^r`.
//! 3. [`dp`] (Algorithm 2's `DP_allocation`) selects the subset of queued
//!    jobs maximizing total payoff, by memoized dynamic programming over
//!    (queue index, cluster-usage state) for small queues and by a
//!    single-pass greedy in utility-density order for large ones.
//! 4. [`scheduler::HadarScheduler`] glues it together behind the simulator's
//!    `Scheduler` trait, keeping placements sticky when moving a job would
//!    not pay for its checkpoint-restart cost.
//!
//! The framework is objective-generic: any [`utility::Utility`] can be
//! plugged in, expressing average-JCT, makespan, or finish-time-fairness
//! policies (§III-A "expressing other scheduling policies").

//!
//! ```
//! use hadar_core::{HadarConfig, HadarScheduler};
//! use hadar_cluster::Cluster;
//! use hadar_sim::{SimConfig, Simulation};
//! use hadar_workload::{generate_trace, ArrivalPattern, TraceConfig};
//! let cluster = Cluster::paper_simulation();
//! let jobs = generate_trace(
//!     &TraceConfig { num_jobs: 6, seed: 3, pattern: ArrivalPattern::Static },
//!     cluster.catalog(),
//! );
//! let mut hadar = HadarScheduler::new(HadarConfig::default());
//! let out = Simulation::new(cluster, jobs, SimConfig::default())
//!     .run(&mut hadar)
//!     .expect("valid policy and config");
//! assert_eq!(out.completed_jobs(), 6);
//! // The Theorem 2 bound of the last round's prices:
//! assert!(hadar.last_competitive_bound().unwrap().ratio >= 2.0);
//! ```

pub mod config;
pub mod dp;
pub mod estimate;
pub mod find_alloc;
pub mod price;
pub mod profiler;
pub mod scheduler;
pub mod theory;
pub mod utility;

pub use config::{AllocMode, HadarConfig, RoundParallelism};
pub use find_alloc::{CandidateCache, Features};
pub use price::{CompetitiveBound, PriceShape, PriceState};
pub use profiler::{RoundPhase, RoundProfiler, RoundTimings, ThroughputEstimator};
pub use scheduler::HadarScheduler;
pub use theory::{audit_round, RoundAudit};
pub use utility::{
    EffectiveThroughput, FtfUtility, MinMakespan, RawEffectiveThroughput, Utility, UtilityKind,
};

//! Empirical validation of the primal–dual analysis (§III-D).
//!
//! Theorem 2 proves Hadar `2α`-competitive with
//! `α = max_r max(1, ln U_max^r/U_min^r)` via three ingredients:
//!
//! 1. the *allocation-cost relationship* (Definition 1): when job `j` takes
//!    `Δγ` units at pre-allocation price `k^{j−1}`, the revenue
//!    `k^{j−1}·Δγ` covers `c/α` times the price increase it causes,
//! 2. Lemma 1/2: the relationship implies every primal increment is at
//!    least `1/α` of the dual increment, and
//! 3. the `η` scaling of Eq. 7, which bounds the initial dual value by
//!    `OPT/2`.
//!
//! [`audit_round`] re-runs one scheduling round while tracking the primal
//! objective (total admitted utility), the dual objective
//! (`Σ μ_j + Σ_{h,r} k_h^r(γ_final)·c_h^r`), and the worst-case
//! allocation-cost ratio, so tests (and the `theory_check` binary) can
//! verify that the guarantee holds on concrete instances. The discrete
//! step form of Definition 1 holds up to `(e^x − 1)/x` slack for step size
//! `x = α·Δγ/c`; the audit reports the measured worst ratio rather than
//! asserting exactness.

use hadar_cluster::Usage;
use hadar_sim::JobState;

use crate::dp::greedy_allocation;
use crate::find_alloc::AllocEnv;
use crate::price::PriceState;

/// The audited quantities of one scheduling round.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundAudit {
    /// Primal objective increment: Σ utility of admitted jobs.
    pub primal: f64,
    /// Dual objective: Σ payoffs `μ_j` + final price mass
    /// `Σ_{h,r} k_h^r(γ) · c_h^r`.
    pub dual: f64,
    /// `α` from the round's price bounds.
    pub alpha: f64,
    /// `primal · 2α / dual` — ≥ 1 means the `2α` guarantee held this round.
    pub guarantee_margin: f64,
    /// Worst observed allocation-cost ratio
    /// `k^{j−1}Δγ · α / (c·Δk)` over all admissions (≥ 1 means
    /// Definition 1 held exactly; slightly below 1 reflects the discrete
    /// step slack).
    pub worst_allocation_cost_ratio: f64,
    /// Jobs admitted.
    pub admitted: usize,
}

/// Audit one round: run the greedy dual subroutine over `queue` and account
/// primal/dual objectives and the allocation-cost relationship.
pub fn audit_round(queue: &[&JobState], env: &AllocEnv<'_>, prices: &PriceState) -> RoundAudit {
    let usage0 = Usage::empty(env.cluster);
    let selection = greedy_allocation(queue, env, &usage0);
    let alpha = prices.bound().alpha;

    let mut usage = usage0.clone();
    let mut primal = 0.0;
    let mut mu_sum = 0.0;
    let mut worst_ratio = f64::INFINITY;

    for (idx, cand) in &selection.decisions {
        let _ = idx;
        primal += cand.utility;
        mu_sum += cand.payoff.max(0.0);
        // Allocation-cost relationship per touched (h, r) slot.
        for s in cand.placement.slices() {
            let cap = env.cluster.capacity(s.machine, s.gpu);
            if cap == 0 {
                continue;
            }
            let gamma_before = usage.get(s.machine, s.gpu);
            let k_before = prices.price(s.gpu, gamma_before, cap);
            let k_after = prices.price(s.gpu, gamma_before + s.count, cap);
            let dk = k_after - k_before;
            if dk > 1e-15 {
                let lhs = k_before * s.count as f64;
                let rhs = f64::from(cap) / alpha * dk;
                worst_ratio = worst_ratio.min(lhs / rhs);
            }
            usage.add(s.machine, s.gpu, s.count);
        }
    }

    // Final price mass Σ k(γ_final)·c over the whole cluster.
    let mut price_mass = 0.0;
    for h in env.cluster.machine_ids() {
        for r in env.cluster.catalog().ids() {
            let cap = env.cluster.capacity(h, r);
            if cap > 0 {
                price_mass += prices.price(r, usage.get(h, r), cap) * f64::from(cap);
            }
        }
    }
    let dual = mu_sum + price_mass;
    let guarantee_margin = if dual > 0.0 {
        primal * 2.0 * alpha / dual
    } else {
        f64::INFINITY
    };
    RoundAudit {
        primal,
        dual,
        alpha,
        guarantee_margin,
        worst_allocation_cost_ratio: if worst_ratio.is_finite() {
            worst_ratio
        } else {
            1.0
        },
        admitted: selection.decisions.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::find_alloc::Features;
    use crate::utility::EffectiveThroughput;
    use hadar_cluster::{Cluster, CommCostModel, JobId};
    use hadar_workload::{DlTask, Job};

    fn audit(n: u32, seed_shift: u64) -> RoundAudit {
        let cluster = Cluster::paper_simulation();
        let states: Vec<JobState> = (0..n)
            .map(|i| {
                JobState::new(Job::for_model(
                    JobId(i),
                    DlTask::ALL[((i as u64 + seed_shift) % 5) as usize],
                    cluster.catalog(),
                    0.0,
                    1 + (i + seed_shift as u32) % 4,
                    20 + 15 * i as u64,
                ))
            })
            .collect();
        let prices = PriceState::compute(&states, &cluster, &EffectiveThroughput, 0.0);
        let comm = CommCostModel::default();
        let env = AllocEnv {
            cluster: &cluster,
            comm: &comm,
            prices: &prices,
            utility: &EffectiveThroughput,
            now: 0.0,
            realloc_stall: 10.0,
            features: Features::default(),
            machine_factors: &[],
            round_threads: 1,
        };
        let queue: Vec<&JobState> = states.iter().collect();
        audit_round(&queue, &env, &prices)
    }

    #[test]
    fn guarantee_holds_on_mixed_rounds() {
        for shift in 0..6 {
            let a = audit(12, shift);
            assert!(a.admitted > 0, "nothing admitted (shift {shift})");
            assert!(a.alpha >= 1.0);
            assert!(
                a.guarantee_margin >= 1.0,
                "2α guarantee violated: margin {} (shift {shift})",
                a.guarantee_margin
            );
        }
    }

    #[test]
    fn allocation_cost_ratio_within_discrete_slack() {
        // Definition 1 holds up to (e^x − 1)/x slack for step x = α·Δγ/c;
        // with gangs ≤ 4 on 4-GPU machines and the paper-scale α, the
        // measured ratio stays above x/(e^x − 1) for x = α.
        for shift in 0..6 {
            let a = audit(10, shift);
            let x = a.alpha;
            let floor = x / x.exp_m1();
            assert!(
                a.worst_allocation_cost_ratio >= floor * 0.99,
                "ratio {} below discrete floor {floor} (α={x})",
                a.worst_allocation_cost_ratio
            );
        }
    }

    #[test]
    fn empty_round_audit_is_trivial() {
        let cluster = Cluster::paper_simulation();
        let prices = PriceState::compute(&[], &cluster, &EffectiveThroughput, 0.0);
        let comm = CommCostModel::default();
        let env = AllocEnv {
            cluster: &cluster,
            comm: &comm,
            prices: &prices,
            utility: &EffectiveThroughput,
            now: 0.0,
            realloc_stall: 10.0,
            features: Features::default(),
            machine_factors: &[],
            round_threads: 1,
        };
        let a = audit_round(&[], &env, &prices);
        assert_eq!(a.admitted, 0);
        assert_eq!(a.primal, 0.0);
        assert_eq!(a.worst_allocation_cost_ratio, 1.0);
    }
}

//! Finish-time estimation for candidate placements.
//!
//! The payoff `φ_j(s) = U_j(f_{js} − a_j) − cost(s)` of a candidate schedule
//! needs the finish time `f_{js}` the job would reach under it. Hadar
//! estimates it optimistically-but-consistently: the job keeps the candidate
//! placement's rate until done, plus the checkpoint stall if the placement
//! differs from the current one.

use hadar_sim::JobState;

/// Estimated outcome of running `state` at aggregate `rate` (iterations/sec)
/// starting at `now`, with an up-front `stall` (checkpoint save/restore)
/// charged first.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompletionEstimate {
    /// Estimated completion duration `f̂_j − a_j`.
    pub jct: f64,
    /// Estimated absolute finish time `f̂_j`.
    pub finish: f64,
    /// Estimated seconds of work remaining at this rate (excluding stall).
    pub work_seconds: f64,
}

/// Estimate completion; `None` when the rate cannot make progress.
pub fn estimate_completion(
    state: &JobState,
    rate: f64,
    now: f64,
    stall: f64,
) -> Option<CompletionEstimate> {
    if rate <= 0.0 || !rate.is_finite() {
        return None;
    }
    debug_assert!(stall >= 0.0);
    let work_seconds = state.remaining_iters / rate;
    let finish = now + stall + work_seconds;
    Some(CompletionEstimate {
        jct: finish - state.job.arrival,
        finish,
        work_seconds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hadar_cluster::{Cluster, JobId};
    use hadar_workload::{DlTask, Job};

    fn state() -> JobState {
        let c = Cluster::paper_simulation();
        JobState::new(Job::for_model(
            JobId(0),
            DlTask::ResNet18,
            c.catalog(),
            100.0,
            2,
            10,
        ))
    }

    #[test]
    fn estimates_are_consistent() {
        let s = state();
        let e = estimate_completion(&s, 100.0, 500.0, 10.0).unwrap();
        assert!((e.work_seconds - s.remaining_iters / 100.0).abs() < 1e-9);
        assert!((e.finish - (500.0 + 10.0 + e.work_seconds)).abs() < 1e-9);
        assert!((e.jct - (e.finish - 100.0)).abs() < 1e-9);
    }

    #[test]
    fn faster_rate_finishes_earlier() {
        let s = state();
        let slow = estimate_completion(&s, 50.0, 0.0, 0.0).unwrap();
        let fast = estimate_completion(&s, 200.0, 0.0, 0.0).unwrap();
        assert!(fast.finish < slow.finish);
    }

    #[test]
    fn zero_rate_yields_none() {
        let s = state();
        assert_eq!(estimate_completion(&s, 0.0, 0.0, 0.0), None);
        assert_eq!(estimate_completion(&s, f64::NAN, 0.0, 0.0), None);
    }

    #[test]
    fn progress_shrinks_estimate() {
        let mut s = state();
        let before = estimate_completion(&s, 100.0, 0.0, 0.0).unwrap();
        s.remaining_iters /= 2.0;
        let after = estimate_completion(&s, 100.0, 0.0, 0.0).unwrap();
        assert!((after.work_seconds - before.work_seconds / 2.0).abs() < 1e-9);
    }
}

//! The online Hadar scheduler (Algorithm 1) behind the simulator's
//! [`Scheduler`] trait.

use hadar_cluster::{Allocation, JobId, Usage};
use hadar_sim::{DecisionPhases, JobState, Scheduler, SchedulerContext};
use hadar_workload::Job;

use crate::config::{AllocMode, HadarConfig};
use crate::dp::{dp_allocation_cached, greedy_allocation_cached, Selection};
use crate::find_alloc::{AllocEnv, CandidateCache};
use crate::price::{CompetitiveBound, PriceState};
use crate::profiler::{RoundPhase, RoundProfiler, ThroughputEstimator};

/// The Hadar scheduler.
///
/// Per round it (re)computes the dual prices from the queue (Eqs. 5–8), runs
/// the dual subroutine (DP or greedy, [`AllocMode`]) to pick the
/// payoff-maximizing job subset and task-level placements, and returns the
/// resulting allocation. Jobs it leaves out simply wait — their payoff was
/// non-positive at current prices, i.e. the cluster is better used by
/// others this round.
pub struct HadarScheduler {
    config: HadarConfig,
    estimator: Option<ThroughputEstimator>,
    last_bound: Option<CompetitiveBound>,
    /// Fingerprint of the job set the cached allocation was computed for
    /// (incremental mode, §IV-A-5).
    cached_set: Option<u64>,
    /// Whether every queued job was placed by the cached allocation.
    cached_all_placed: bool,
    /// The cross-round candidate cache: priced candidates per round plus
    /// placement geometries that survive across rounds (keyed by usage
    /// fingerprint + job class; [`CandidateCache::begin_round`] invalidates
    /// on any price-shape/availability/feature change).
    cache: CandidateCache,
    /// Set on every arrival/completion notification, cleared after a full
    /// re-optimization. Belt-and-braces companion to the job-set
    /// fingerprint: the incremental fast path must never fire between an
    /// event notification and the round that absorbs it.
    dirty: bool,
    /// Phase breakdown of the most recent decision (for the engine's
    /// round telemetry).
    last_phases: Option<DecisionPhases>,
    /// Wall-clock stopwatch over the round phases; also keeps lifetime
    /// per-phase totals across the scheduler's rounds.
    round_profiler: RoundProfiler,
}

impl HadarScheduler {
    /// Build from a configuration.
    pub fn new(config: HadarConfig) -> Self {
        let estimator = config.profiler.map(ThroughputEstimator::new);
        Self {
            config,
            estimator,
            last_bound: None,
            cached_set: None,
            cached_all_placed: false,
            cache: CandidateCache::new(),
            dirty: true,
            last_phases: None,
            round_profiler: RoundProfiler::new(),
        }
    }

    /// The Theorem 2 competitive bound computed from the most recent round's
    /// prices (`None` before the first round).
    pub fn last_competitive_bound(&self) -> Option<CompetitiveBound> {
        self.last_bound
    }

    /// The active configuration.
    pub fn config(&self) -> &HadarConfig {
        &self.config
    }

    /// The round-path profiler: lifetime per-phase wall-clock totals over
    /// every fully optimized round (quiescent reuse rounds are not timed —
    /// they do no phase work).
    pub fn round_profiler(&self) -> &RoundProfiler {
        &self.round_profiler
    }
}

fn run_subroutine(
    alloc_mode: AllocMode,
    queue: &[&JobState],
    env: &AllocEnv<'_>,
    usage: &Usage,
    cache: &mut CandidateCache,
) -> Selection {
    let use_dp = match alloc_mode {
        AllocMode::Dp => true,
        AllocMode::Greedy => false,
        AllocMode::Auto { dp_max_queue } => queue.len() <= dp_max_queue,
    };
    if use_dp {
        dp_allocation_cached(queue, env, usage, cache)
    } else {
        greedy_allocation_cached(queue, env, usage, cache)
    }
}

fn job_set_fingerprint(jobs: &[JobState]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for s in jobs {
        h ^= u64::from(s.job.id.0) + 1;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl Scheduler for HadarScheduler {
    fn name(&self) -> &str {
        "Hadar"
    }

    fn schedule(&mut self, ctx: &SchedulerContext<'_>) -> Allocation {
        // Incremental update policy (§IV-A-5): "rather than recomputing the
        // allocation in every scheduling round, the scheduler computes the
        // allocation with the new incoming job while the existing jobs are
        // still in the running state." When the job set is unchanged since
        // the last full optimization, every queued job already holds a
        // placement, and no machine is straggling, simply renew the current
        // placements.
        if self.config.incremental
            && !self.dirty
            && self.cached_all_placed
            && self.cached_set == Some(job_set_fingerprint(ctx.jobs))
            && ctx.machine_factors.iter().all(|&f| f >= 1.0)
            && ctx.jobs.iter().all(|s| s.is_running())
        {
            let mut alloc = Allocation::empty();
            for s in ctx.jobs {
                alloc.set(s.job.id, s.placement.clone());
            }
            self.last_phases = Some(DecisionPhases {
                reused: true,
                ..DecisionPhases::default()
            });
            ctx.telemetry.incr("hadar.incremental_reuse", 1.0);
            return alloc;
        }
        // Profiling phase: substitute noisy estimates for under-observed
        // jobs, then mark this round as observed.
        let profiled_states: Option<Vec<JobState>> = self.estimator.as_mut().map(|est| {
            let states = ctx
                .jobs
                .iter()
                .map(|s| {
                    let mut s2 = s.clone();
                    s2.job.profile = est.profile_for(&s.job);
                    s2
                })
                .collect();
            for s in ctx.jobs {
                est.observe(s.job.id);
            }
            states
        });
        let states: &[JobState] = profiled_states.as_deref().unwrap_or(ctx.jobs);

        let prices = self.round_profiler.time(RoundPhase::Price, || {
            PriceState::compute(states, ctx.cluster, &self.config.utility, ctx.time)
        });
        self.last_bound = Some(prices.bound());
        if ctx.telemetry.is_enabled() {
            let bound = prices.bound();
            ctx.telemetry.gauge("hadar.price_eta", prices.eta);
            ctx.telemetry.gauge("hadar.alpha", bound.alpha);
            ctx.telemetry.gauge("hadar.competitive_ratio", bound.ratio);
            // Price-vector spread: the per-type utility bounds that drive
            // Eq. 5 (max over types of U_max, min over types of the
            // positive U_min — the inputs to α).
            let mut hi = 0.0f64;
            let mut lo = f64::INFINITY;
            for r in ctx.cluster.catalog().ids() {
                hi = hi.max(prices.u_max(r));
                let l = prices.u_min(r);
                if l > 0.0 {
                    lo = lo.min(l);
                }
            }
            ctx.telemetry.gauge("hadar.u_max", hi);
            ctx.telemetry
                .gauge("hadar.u_min", if lo.is_finite() { lo } else { 0.0 });
        }
        let env = AllocEnv {
            cluster: ctx.cluster,
            comm: ctx.comm,
            prices: &prices,
            utility: &self.config.utility,
            now: ctx.time,
            realloc_stall: self.config.expected_realloc_penalty,
            features: self.config.features,
            machine_factors: ctx.machine_factors,
            round_threads: self.config.round_parallelism.resolve(),
        };
        let usage = Usage::empty(ctx.cluster);
        let queue: Vec<&JobState> = states.iter().collect();
        // With the cross-round cache off (benchmark/ablation mode),
        // begin_round drops the geometry and pool layers and every miss
        // re-enumerates from scratch — the pre-cache baseline.
        self.cache.set_cross_round(self.config.cross_round_cache);
        self.cache.begin_round(&env);
        let gen0 = self.cache.gen_seconds();
        let selection = self.round_profiler.time(RoundPhase::Select, || {
            run_subroutine(
                self.config.alloc_mode,
                &queue,
                &env,
                &usage,
                &mut self.cache,
            )
        });
        // The cache timed candidate generation internally while the
        // subroutine ran; carve it out of the selection phase.
        let candidates_seconds = self.cache.gen_seconds() - gen0;
        self.round_profiler.reattribute(
            RoundPhase::Select,
            RoundPhase::Candidates,
            candidates_seconds,
        );
        let timings = self.round_profiler.finish_round();
        if selection.budget_exhausted {
            ctx.telemetry.incr("hadar.dp_budget_hits", 1.0);
        }
        ctx.telemetry
            .gauge("hadar.candidate_gen_s", candidates_seconds);
        self.last_phases = Some(DecisionPhases {
            price_seconds: timings.price_seconds,
            candidates_seconds: timings.candidates_seconds,
            select_seconds: timings.select_seconds,
            dp_budget_hit: selection.budget_exhausted,
            reused: false,
        });

        let mut alloc = Allocation::empty();
        for (idx, cand) in selection.decisions {
            alloc.set(queue[idx].job.id, cand.placement);
        }
        self.cached_set = Some(job_set_fingerprint(ctx.jobs));
        self.cached_all_placed = ctx
            .jobs
            .iter()
            .all(|s| alloc.get(s.job.id).is_some_and(|p| !p.is_empty()));
        self.dirty = false;
        alloc
    }

    fn on_arrival(&mut self, _job: &Job) {
        self.dirty = true;
    }

    fn on_completion(&mut self, job: JobId) {
        self.dirty = true;
        if let Some(est) = self.estimator.as_mut() {
            est.forget(job);
        }
    }

    fn last_decision_phases(&self) -> Option<DecisionPhases> {
        self.last_phases
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::ProfilerConfig;
    use crate::utility::{MinMakespan, UtilityKind};
    use hadar_cluster::Cluster;
    use hadar_sim::{PreemptionPenalty, SimConfig, Simulation};
    use hadar_workload::{generate_trace, ArrivalPattern, DlTask, Job, TraceConfig};

    fn trace(n: usize, seed: u64) -> (Cluster, Vec<Job>) {
        let cluster = Cluster::paper_simulation();
        let jobs = generate_trace(
            &TraceConfig {
                num_jobs: n,
                seed,
                pattern: ArrivalPattern::Static,
            },
            cluster.catalog(),
        );
        (cluster, jobs)
    }

    #[test]
    fn completes_small_static_trace() {
        let (cluster, jobs) = trace(12, 1);
        let out = Simulation::new(cluster, jobs, SimConfig::default())
            .run(HadarScheduler::new(HadarConfig::default()))
            .unwrap();
        assert_eq!(out.completed_jobs(), 12);
        assert!(!out.timed_out);
        assert!(out.mean_jct() > 0.0);
        // The run is deterministic: exactly one round (the first with a
        // queue at the Auto DP threshold of 9 jobs) pushes the DP past its
        // 20k-node budget onto the greedy floor.
        assert_eq!(out.dp_budget_exhausted_rounds(), 1);
        // Every round must carry a phase report from the Hadar scheduler,
        // and the quiescent middle of the run must hit the fast path.
        assert!(out.rounds.iter().all(|r| r.phases.is_some()));
        assert!(out.reused_rounds() > 0);
    }

    #[test]
    fn forced_dp_on_wide_queue_exhausts_node_budget() {
        // AllocMode::Dp on a 24-job queue: 2^24 subsets dwarf the 20k-node
        // budget, so the DP must report exhaustion (and fall back to its
        // greedy floor) in at least the opening rounds.
        let (cluster, jobs) = trace(24, 11);
        let cfg = HadarConfig {
            alloc_mode: AllocMode::Dp,
            ..HadarConfig::default()
        };
        let out = Simulation::new(cluster, jobs, SimConfig::default())
            .run(HadarScheduler::new(cfg))
            .unwrap();
        assert_eq!(out.completed_jobs(), 24);
        assert!(
            out.dp_budget_exhausted_rounds() > 0,
            "24-job DP rounds should hit DP_NODE_BUDGET"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let (cluster, jobs) = trace(10, 2);
        let run = || {
            Simulation::new(cluster.clone(), jobs.clone(), SimConfig::default())
                .run(HadarScheduler::new(HadarConfig::default()))
                .unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.jcts(), b.jcts());
        assert_eq!(a.makespan(), b.makespan());
    }

    #[test]
    fn dp_and_greedy_modes_both_finish() {
        let (cluster, jobs) = trace(8, 3);
        for mode in [AllocMode::Dp, AllocMode::Greedy] {
            let cfg = HadarConfig {
                alloc_mode: mode,
                ..HadarConfig::default()
            };
            let out = Simulation::new(cluster.clone(), jobs.clone(), SimConfig::default())
                .run(HadarScheduler::new(cfg))
                .unwrap();
            assert_eq!(out.completed_jobs(), 8, "mode {mode:?}");
        }
    }

    #[test]
    fn competitive_bound_exposed_after_scheduling() {
        let (cluster, jobs) = trace(5, 4);
        let mut sched = HadarScheduler::new(HadarConfig::default());
        assert!(sched.last_competitive_bound().is_none());
        let out = Simulation::new(cluster, jobs, SimConfig::default())
            .run(&mut sched)
            .unwrap();
        assert_eq!(out.completed_jobs(), 5);
        let bound = sched.last_competitive_bound().expect("ran at least once");
        assert!(bound.alpha >= 1.0);
        assert!((bound.ratio - 2.0 * bound.alpha).abs() < 1e-12);
        // The round profiler saw every fully optimized round and its phase
        // totals agree with the per-round records the engine collected.
        let profiled = sched.round_profiler().rounds();
        let optimized = out
            .rounds
            .iter()
            .filter(|r| r.phases.is_some_and(|p| !p.reused))
            .count();
        assert_eq!(profiled, optimized);
        let (p, c, s) = out.phase_totals();
        let t = sched.round_profiler().totals();
        assert!((t.price_seconds - p).abs() < 1e-9);
        assert!((t.candidates_seconds - c).abs() < 1e-9);
        assert!((t.select_seconds - s).abs() < 1e-9);
        assert!(t.total_seconds() > 0.0);
    }

    #[test]
    fn incremental_mode_renews_placements_between_events() {
        // Two long jobs that both fit: after the first round nothing
        // changes until a completion, so each job reallocates exactly once.
        let cluster = Cluster::paper_simulation();
        let jobs = vec![
            Job::for_model(JobId(0), DlTask::ResNet50, cluster.catalog(), 0.0, 4, 30),
            Job::for_model(JobId(1), DlTask::Lstm, cluster.catalog(), 0.0, 4, 400),
        ];
        let out = Simulation::new(cluster, jobs, SimConfig::default())
            .run(HadarScheduler::new(HadarConfig::default()))
            .unwrap();
        assert_eq!(out.completed_jobs(), 2);
        for r in &out.records {
            assert!(
                r.reallocations <= 2,
                "job {} moved {} times despite a quiet cluster",
                r.job.id,
                r.reallocations
            );
        }
    }

    #[test]
    fn incremental_mode_does_not_change_quality_materially() {
        let (cluster, jobs) = trace(20, 9);
        let run = |incremental: bool| {
            Simulation::new(cluster.clone(), jobs.clone(), SimConfig::default())
                .run(HadarScheduler::new(HadarConfig {
                    incremental,
                    ..HadarConfig::default()
                }))
                .unwrap()
        };
        let (on, off) = (run(true), run(false));
        assert_eq!(on.completed_jobs(), 20);
        assert_eq!(off.completed_jobs(), 20);
        let ratio = on.mean_jct() / off.mean_jct();
        assert!(
            (0.8..1.25).contains(&ratio),
            "incremental mode changed mean JCT by {ratio:.2}x"
        );
    }

    #[test]
    fn makespan_utility_runs() {
        let (cluster, jobs) = trace(8, 5);
        let cfg = HadarConfig::with_utility(UtilityKind::MinMakespan(MinMakespan::default()));
        let out = Simulation::new(cluster, jobs, SimConfig::default())
            .run(HadarScheduler::new(cfg))
            .unwrap();
        assert_eq!(out.completed_jobs(), 8);
    }

    #[test]
    fn profiler_enabled_still_completes() {
        let (cluster, jobs) = trace(8, 6);
        let cfg = HadarConfig {
            profiler: Some(ProfilerConfig::default()),
            ..HadarConfig::default()
        };
        let out = Simulation::new(cluster, jobs, SimConfig::default())
            .run(HadarScheduler::new(cfg))
            .unwrap();
        assert_eq!(out.completed_jobs(), 8);
    }

    #[test]
    fn prefers_fast_gpus_for_heterogeneity_sensitive_jobs() {
        // One ResNet-50 (10× V100:K80) and one LSTM (3×), one GPU each, only
        // one V100 available: the V100 must go to the ResNet-50.
        let mut b = hadar_cluster::ClusterBuilder::new();
        let v100 = b.gpu_type("V100");
        let k80 = b.gpu_type("K80");
        b.machine(&[(v100, 1)]);
        b.machine(&[(k80, 1)]);
        let cluster = b.build();
        let jobs = vec![
            Job::for_model(JobId(0), DlTask::ResNet50, cluster.catalog(), 0.0, 1, 2),
            Job::for_model(JobId(1), DlTask::Lstm, cluster.catalog(), 0.0, 1, 20),
        ];
        let cfg = SimConfig {
            penalty: PreemptionPenalty::None,
            ..SimConfig::default()
        };
        let out = Simulation::new(cluster, jobs, cfg)
            .run(HadarScheduler::new(HadarConfig::default()))
            .unwrap();
        assert_eq!(out.completed_jobs(), 2);
        // The ResNet-50 run on the V100 completes at its V100-speed time
        // (within round quantization):
        let r50_jct = out.records[0].jct().unwrap();
        let v100_time = out.records[0].job.min_runtime();
        assert!(
            r50_jct < v100_time * 2.0,
            "ResNet-50 seems to have run on the K80: jct={r50_jct}, v100={v100_time}"
        );
    }
}

//! The dual resource-price function (Eqs. 5–8) and the competitive bound
//! (Theorem 2).
//!
//! `k_h^r(γ)` is the unit price of a type-`r` GPU on server `h` when `γ` of
//! its `c_h^r` units are taken. It starts at `U_min^r` (low enough that any
//! job is admitted onto an idle server) and rises exponentially to
//! `U_max^r` (high enough that no job's per-unit utility can afford a full
//! server), which filters low-utility jobs as contention grows and yields
//! the `2α` competitive ratio with `α = max_r max(1, ln(U_max^r/U_min^r))`.

use hadar_cluster::{Cluster, GpuTypeId};
use hadar_sim::JobState;

use crate::utility::Utility;

/// Per-round pricing state: the utility bounds of Eqs. 6–7 computed over the
/// current queue, plus the horizon and scale factor they depend on.
#[derive(Debug, Clone, PartialEq)]
pub struct PriceState {
    u_min: Vec<f64>,
    u_max: Vec<f64>,
    /// The scaling factor η of Eq. 7 (chosen so `D_0 ≤ ½·OPT`, see proof of
    /// Theorem 2).
    pub eta: f64,
    /// The horizon `T` used for the minimum-utility bound.
    pub horizon: f64,
}

/// The functional *shape* of `k_h^r(γ)` for one GPU type this round.
///
/// The cross-round candidate cache uses this to prove machine-selection
/// decisions independent of the price *values* (which change every round):
/// on a [`PriceShape::Curve`] type the price is strictly increasing in the
/// fill fraction `γ/c`, so the cheapest feasible machine is the one with the
/// smallest fraction regardless of what `U_min`/`U_max` are; on the other
/// two shapes every machine of the type prices identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PriceShape {
    /// `U_max^r ≤ 0`: the price is 0 at any fill.
    Zero,
    /// `U_min^r ≤ 0` or `U_max^r ≤ U_min^r`: the price is the constant
    /// `U_max^r` at any fill.
    Constant,
    /// `0 < U_min^r < U_max^r`: the exponential curve of Eq. 5, strictly
    /// increasing in `γ/c`.
    Curve,
}

/// The Theorem 2 guarantee derived from a [`PriceState`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompetitiveBound {
    /// `α = max_r max(1, ln(U_max^r / U_min^r))`.
    pub alpha: f64,
    /// The competitive ratio `2α`.
    pub ratio: f64,
}

impl PriceState {
    /// Compute the bounds over the queued jobs at time `now`.
    ///
    /// * `U_max^r = max_j U_j(t_j^min − a_j) / W_j` (Eq. 6) — the largest
    ///   per-unit-resource utility any queued job could extract,
    /// * `U_min^r = (1/4η) · min_j U_j(T − a_j) / (t_j^max · W_j)` (Eq. 7) —
    ///   a lower bound small enough to admit every job onto idle servers,
    /// * `η = max_j Σ_{h,r} c_h^r / (t_j^max · W_j)` (clamped ≥ 1), which is
    ///   exactly the precondition `Σ c / η ≤ t_j^max W_j` used in the proof,
    /// * `T` (the horizon) is estimated as `now` plus twice the queue's
    ///   total remaining GPU-time divided by the cluster size — a
    ///   congestion-adjusted completion horizon.
    ///
    /// `t_j^min/max` (Eq. 8) use each job's *remaining* iterations so bounds
    /// track progress. Jobs that cannot run on any catalog type are skipped.
    pub fn compute<U: Utility + ?Sized>(
        jobs: &[JobState],
        cluster: &Cluster,
        utility: &U,
        now: f64,
    ) -> Self {
        let num_types = cluster.num_types();
        let total_capacity: f64 = cluster.total_gpus() as f64;

        let runnable: Vec<&JobState> = jobs
            .iter()
            .filter(|s| s.job.worst_rate() > 0.0 && s.remaining_iters > 0.0)
            .collect();

        if runnable.is_empty() || total_capacity == 0.0 {
            return Self {
                u_min: vec![0.0; num_types],
                u_max: vec![0.0; num_types],
                eta: 1.0,
                horizon: now,
            };
        }

        // Congestion-adjusted horizon.
        let remaining_gpu_time: f64 = runnable
            .iter()
            .map(|s| s.job.gang as f64 * s.remaining_iters / s.job.best_rate())
            .sum();
        let max_tmin = runnable
            .iter()
            .map(|s| s.remaining_iters / s.job.best_rate())
            .fold(0.0, f64::max);
        let horizon = now + (2.0 * remaining_gpu_time / total_capacity).max(max_tmin) + 1.0;

        // η = max_j Σc / (t_j^max W_j), clamped ≥ 1.
        let mut eta = 1.0f64;
        for s in &runnable {
            let t_max = s.remaining_iters / s.job.worst_rate();
            if t_max > 0.0 {
                eta = eta.max(total_capacity / (t_max * s.job.gang as f64));
            }
        }

        // Per-type maxima (Eq. 6): the best per-unit utility any job could
        // extract *from that type* — i.e. evaluated at the runtime the job
        // would see running entirely on type r. Faster types therefore
        // saturate at higher prices, pushing heterogeneity-insensitive jobs
        // toward slower (cheaper) accelerators as contention grows.
        let mut u_max = vec![0.0f64; num_types];
        let mut u_min_all = f64::INFINITY;
        for s in &runnable {
            let w = s.job.gang as f64;
            let t_max = s.remaining_iters / s.job.worst_rate();
            let elapsed = (now - s.job.arrival).max(0.0);
            for (r, slot) in u_max.iter_mut().enumerate() {
                let x = s.job.profile.rate(hadar_cluster::GpuTypeId(r as u16));
                if x <= 0.0 {
                    continue;
                }
                let t_r = s.remaining_iters / (w * x);
                let val = utility.value(&s.job, elapsed + t_r, now + t_r) / w;
                *slot = slot.max(val);
            }
            // Worst case (Eq. 7 numerator): finish at the horizon.
            let worst = utility.value(&s.job, horizon - s.job.arrival, horizon) / (t_max * w);
            if worst.is_finite() {
                u_min_all = u_min_all.min(worst);
            }
        }
        let u_min_all = if u_min_all.is_finite() {
            (u_min_all / (4.0 * eta)).max(f64::MIN_POSITIVE)
        } else {
            f64::MIN_POSITIVE
        };
        // Keep U_min strictly below every type's U_max so the exponential
        // price is well-defined even on degenerate single-job queues.
        let global_max = u_max.iter().copied().fold(0.0, f64::max);
        let u_min_all = u_min_all.min(global_max / 2.0).max(0.0);

        Self {
            u_min: vec![u_min_all; num_types],
            u_max,
            eta,
            horizon,
        }
    }

    /// `U_max^r`.
    pub fn u_max(&self, r: GpuTypeId) -> f64 {
        self.u_max.get(r.index()).copied().unwrap_or(0.0)
    }

    /// `U_min^r`.
    pub fn u_min(&self, r: GpuTypeId) -> f64 {
        self.u_min.get(r.index()).copied().unwrap_or(0.0)
    }

    /// The price `k_h^r(γ)` of Eq. 5 for a server slot holding `gamma` of
    /// `capacity` type-`r` GPUs.
    ///
    /// Boundary behaviour (tested): `γ = 0 ⇒ U_min^r` and
    /// `γ = c ⇒ U_max^r`.
    pub fn price(&self, r: GpuTypeId, gamma: u32, capacity: u32) -> f64 {
        let (lo, hi) = (self.u_min(r), self.u_max(r));
        if capacity == 0 || hi <= 0.0 {
            return 0.0;
        }
        if lo <= 0.0 || hi <= lo {
            return hi;
        }
        let frac = f64::from(gamma.min(capacity)) / f64::from(capacity);
        lo * (hi / lo).powf(frac)
    }

    /// The [`PriceShape`] of type `r` this round (mirrors the branch
    /// structure of [`PriceState::price`] exactly; the `capacity == 0` branch
    /// is per-machine and handled by the caller).
    pub fn shape(&self, r: GpuTypeId) -> PriceShape {
        let (lo, hi) = (self.u_min(r), self.u_max(r));
        if hi <= 0.0 {
            PriceShape::Zero
        } else if lo <= 0.0 || hi <= lo {
            PriceShape::Constant
        } else {
            PriceShape::Curve
        }
    }

    /// The Theorem 2 bound for these prices.
    pub fn bound(&self) -> CompetitiveBound {
        let mut alpha = 1.0f64;
        for (lo, hi) in self.u_min.iter().zip(&self.u_max) {
            if *lo > 0.0 && *hi > *lo {
                alpha = alpha.max((hi / lo).ln());
            }
        }
        CompetitiveBound {
            alpha,
            ratio: 2.0 * alpha,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::utility::EffectiveThroughput;
    use hadar_cluster::JobId;
    use hadar_workload::{DlTask, Job};

    fn states(n: u32) -> (Cluster, Vec<JobState>) {
        let cluster = Cluster::paper_simulation();
        let jobs = (0..n)
            .map(|i| {
                JobState::new(Job::for_model(
                    JobId(i),
                    DlTask::ALL[i as usize % 5],
                    cluster.catalog(),
                    0.0,
                    1 + i % 4,
                    50 + 10 * u64::from(i),
                ))
            })
            .collect();
        (cluster, jobs)
    }

    #[test]
    fn price_boundaries_match_eq5() {
        let (cluster, jobs) = states(6);
        let p = PriceState::compute(&jobs, &cluster, &EffectiveThroughput, 0.0);
        let r = GpuTypeId(0);
        assert!((p.price(r, 0, 4) - p.u_min(r)).abs() < 1e-12 * p.u_min(r).max(1.0));
        assert!((p.price(r, 4, 4) - p.u_max(r)).abs() < 1e-9 * p.u_max(r).max(1.0));
    }

    #[test]
    fn price_is_monotone_in_gamma() {
        let (cluster, jobs) = states(6);
        let p = PriceState::compute(&jobs, &cluster, &EffectiveThroughput, 0.0);
        let r = GpuTypeId(1);
        let prices: Vec<f64> = (0..=4).map(|g| p.price(r, g, 4)).collect();
        assert!(
            prices.windows(2).all(|w| w[0] < w[1]),
            "prices must rise: {prices:?}"
        );
    }

    #[test]
    fn bounds_are_ordered() {
        let (cluster, jobs) = states(10);
        let p = PriceState::compute(&jobs, &cluster, &EffectiveThroughput, 0.0);
        for r in cluster.catalog().ids() {
            assert!(p.u_min(r) > 0.0);
            assert!(p.u_max(r) > p.u_min(r));
        }
        assert!(p.eta >= 1.0);
        assert!(p.horizon > 0.0);
    }

    #[test]
    fn empty_queue_prices_zero() {
        let cluster = Cluster::paper_simulation();
        let p = PriceState::compute(&[], &cluster, &EffectiveThroughput, 100.0);
        assert_eq!(p.price(GpuTypeId(0), 0, 4), 0.0);
        assert_eq!(p.bound().alpha, 1.0);
    }

    #[test]
    fn competitive_bound_is_2_alpha() {
        let (cluster, jobs) = states(8);
        let p = PriceState::compute(&jobs, &cluster, &EffectiveThroughput, 0.0);
        let b = p.bound();
        assert!(b.alpha >= 1.0);
        assert!((b.ratio - 2.0 * b.alpha).abs() < 1e-12);
    }

    #[test]
    fn horizon_moves_with_now() {
        let (cluster, jobs) = states(4);
        let p0 = PriceState::compute(&jobs, &cluster, &EffectiveThroughput, 0.0);
        let p1 = PriceState::compute(&jobs, &cluster, &EffectiveThroughput, 5_000.0);
        assert!(p1.horizon > p0.horizon);
    }

    #[test]
    fn shape_classifies_price_branches() {
        let (cluster, jobs) = states(6);
        let p = PriceState::compute(&jobs, &cluster, &EffectiveThroughput, 0.0);
        // A populated queue yields proper 0 < U_min < U_max bounds.
        assert_eq!(p.shape(GpuTypeId(0)), PriceShape::Curve);
        // Unknown type id → 0 bounds → zero price at any fill.
        assert_eq!(p.shape(GpuTypeId(42)), PriceShape::Zero);
        // Empty queue ⇒ all bounds zero.
        let empty = PriceState::compute(&[], &cluster, &EffectiveThroughput, 0.0);
        assert_eq!(empty.shape(GpuTypeId(0)), PriceShape::Zero);
        // Degenerate bounds (U_max ≤ U_min > 0) ⇒ constant price U_max.
        let degenerate = PriceState {
            u_min: vec![2.0],
            u_max: vec![2.0],
            eta: 1.0,
            horizon: 0.0,
        };
        assert_eq!(degenerate.shape(GpuTypeId(0)), PriceShape::Constant);
        assert_eq!(degenerate.price(GpuTypeId(0), 0, 4), 2.0);
        assert_eq!(degenerate.price(GpuTypeId(0), 4, 4), 2.0);
    }

    #[test]
    fn zero_capacity_type_prices_zero() {
        let (cluster, jobs) = states(4);
        let p = PriceState::compute(&jobs, &cluster, &EffectiveThroughput, 0.0);
        assert_eq!(p.price(GpuTypeId(0), 0, 0), 0.0);
        // Unknown type id → 0 bounds.
        assert_eq!(p.price(GpuTypeId(42), 1, 4), 0.0);
    }
}

#[cfg(test)]
mod randomized_tests {
    use super::*;
    use crate::utility::EffectiveThroughput;
    use hadar_cluster::JobId;
    use hadar_rng::{Rng, StdRng};
    use hadar_workload::{DlTask, Job};

    /// For arbitrary queues: U_min ≤ U_max per type, prices are
    /// monotone in γ, bounded by [U_min, U_max], and α ≥ 1.
    #[test]
    fn price_invariants() {
        let mut rng = StdRng::seed_from_u64(0xE5);
        for case in 0..48 {
            let cluster = Cluster::paper_simulation();
            let now = rng.gen_range_f64(0.0..1e5);
            let n = rng.gen_range_usize(1..12);
            let states: Vec<hadar_sim::JobState> = (0..n)
                .map(|i| {
                    let m = rng.gen_range_usize(0..5);
                    let gang = rng.gen_range_usize(1..9) as u32;
                    let epochs = rng.gen_range_usize(1..201) as u64;
                    let age = rng.gen_range_f64(0.0..1e5);
                    hadar_sim::JobState::new(Job::for_model(
                        JobId(i as u32),
                        DlTask::ALL[m],
                        cluster.catalog(),
                        (now - age).max(0.0),
                        gang,
                        epochs,
                    ))
                })
                .collect();
            let p = PriceState::compute(&states, &cluster, &EffectiveThroughput, now);
            assert!(p.eta >= 1.0, "case {case}");
            assert!(p.horizon >= now, "case {case}");
            let b = p.bound();
            assert!(b.alpha >= 1.0 && b.alpha.is_finite(), "case {case}");
            for r in cluster.catalog().ids() {
                let (lo, hi) = (p.u_min(r), p.u_max(r));
                assert!(lo >= 0.0 && hi >= lo, "case {case}: type {r}: {lo} > {hi}");
                let cap = 4u32;
                let mut prev = -1.0f64;
                for g in 0..=cap {
                    let k = p.price(r, g, cap);
                    assert!(k >= prev - 1e-12, "case {case}: price not monotone");
                    assert!(k >= 0.0 && k <= hi * (1.0 + 1e-9), "case {case}");
                    prev = k;
                }
                assert!(
                    (p.price(r, cap, cap) - hi).abs() <= 1e-9 * hi.max(1.0),
                    "case {case}"
                );
            }
        }
    }
}

//! `DP_allocation` (Algorithm 2, lines 1–21) and its greedy companion.
//!
//! Given the round's queue, select the subset of jobs to schedule and their
//! placements so that the total payoff `Σ μ_j` is maximized:
//!
//! * [`dp_allocation`] — the paper's recursive dynamic program over
//!   `(queue index, server state)`, memoized on the usage fingerprint so
//!   identical subproblems are solved once (the paper's "we always save the
//!   result … to avoid recomputing the same subproblem"). Exact but
//!   exponential in the worst case — intended for small queues.
//! * [`greedy_allocation`] — a single pass over jobs in descending
//!   utility-density order, admitting every positive-payoff placement and
//!   updating usage (and therefore prices) as it goes. `O(|Q| · H · R)`.
//!
//! Tests verify that the DP never returns less total payoff than the greedy
//! and that it matches exhaustive search on small instances.

use std::collections::HashMap;

use hadar_cluster::Usage;
use hadar_sim::JobState;

use crate::find_alloc::{AllocEnv, Candidate, CandidateCache, MIN_PARALLEL_QUEUE};

/// The chosen schedule for one round: per selected job (by index into the
/// queue order given to the algorithm), its placement candidate.
#[derive(Debug, Clone, Default)]
pub struct Selection {
    /// `(queue index, candidate)` pairs, ascending by index.
    pub decisions: Vec<(usize, Candidate)>,
    /// Total payoff `Σ μ_j` of the selection.
    pub total_payoff: f64,
    /// Whether the DP hit [`DP_NODE_BUDGET`] and abandoned part of its
    /// search (falling back to the greedy floor for the unexplored space).
    /// Surfaced so silently degraded rounds are visible in outcome stats;
    /// always `false` for pure greedy selections.
    pub budget_exhausted: bool,
}

/// Per-job branching width of the DP: the skip branch plus up to this many
/// alternative placements from `find_candidates`.
const DP_BRANCH_WIDTH: usize = 3;

/// Node budget after which the DP abandons exploration (degenerate state
/// spaces on large clusters); the greedy result is the floor either way.
const DP_NODE_BUDGET: usize = 20_000;

/// Best payoff and the `(queue index, candidate)` picks achieving it, for a
/// memoized `(queue index, usage fingerprint)` subproblem.
type DpEntry = (f64, Vec<(usize, Candidate)>);

/// Subset selection by memoized DP over (queue index, usage state),
/// branching over each job's top placements — not only its single best —
/// so the DP can trade a fast GPU away from a job that barely benefits.
/// The greedy solution is always computed as a floor; the better of the two
/// is returned, so `dp_allocation` never underperforms `greedy_allocation`.
pub fn dp_allocation(queue: &[&JobState], env: &AllocEnv<'_>, usage: &Usage) -> Selection {
    dp_allocation_cached(queue, env, usage, &mut CandidateCache::new())
}

/// [`dp_allocation`] against a caller-provided candidate cache, so the
/// scheduler can carry cached geometry across rounds. One cache serves both
/// the DP exploration and the greedy floor: the greedy admission path
/// revisits usage states the DP already expanded, so its `find_alloc`
/// queries are mostly cache hits.
pub fn dp_allocation_cached(
    queue: &[&JobState],
    env: &AllocEnv<'_>,
    usage: &Usage,
    cache: &mut CandidateCache,
) -> Selection {
    // Every job's root-level candidate list is needed regardless of what
    // the DP explores, so on large forced-DP queues it is worth prefetching
    // them in parallel before the serial recursion starts.
    if env.round_threads > 1 && queue.len() >= MIN_PARALLEL_QUEUE {
        cache.prefetch(queue, env, usage);
    }
    let mut memo: HashMap<(usize, u64), DpEntry> = HashMap::new();
    let mut nodes = 0usize;
    let (total_payoff, mut decisions) = dp_rec(0, queue, env, usage, cache, &mut memo, &mut nodes);
    let budget_exhausted = nodes > DP_NODE_BUDGET;
    decisions.sort_by_key(|(i, _)| *i);
    let dp = Selection {
        decisions,
        total_payoff,
        budget_exhausted,
    };
    let mut greedy = greedy_with_cache(queue, env, usage, cache);
    if greedy.total_payoff > dp.total_payoff {
        greedy.budget_exhausted = budget_exhausted;
        greedy
    } else {
        dp
    }
}

fn dp_rec(
    idx: usize,
    queue: &[&JobState],
    env: &AllocEnv<'_>,
    usage: &Usage,
    cache: &mut CandidateCache,
    memo: &mut HashMap<(usize, u64), DpEntry>,
    nodes: &mut usize,
) -> DpEntry {
    if idx >= queue.len() || usage.is_cluster_full(env.cluster) {
        return (0.0, Vec::new());
    }
    let key = (idx, usage.fingerprint());
    if let Some(hit) = memo.get(&key) {
        return hit.clone();
    }
    *nodes += 1;
    if *nodes > DP_NODE_BUDGET {
        return (0.0, Vec::new());
    }

    // Branch 1: skip this job.
    let mut best = dp_rec(idx + 1, queue, env, usage, cache, memo, nodes);

    // Branches 2..: schedule it at one of its top placements. The clone is
    // needed because the recursion below re-borrows the cache mutably.
    let cands: Vec<Candidate> = cache
        .candidates(queue[idx], env, usage)
        .iter()
        .take(DP_BRANCH_WIDTH)
        .cloned()
        .collect();
    for cand in cands {
        // Probe the memo with the child's predicted fingerprint first: on a
        // hit this skips cloning the whole usage matrix.
        let child_key = (idx + 1, usage.fingerprint_after(cand.placement.slices()));
        let (sub_payoff, mut sub_dec) = if let Some(hit) = memo.get(&child_key) {
            hit.clone()
        } else {
            let mut taken = usage.clone();
            for s in cand.placement.slices() {
                taken.add(s.machine, s.gpu, s.count);
            }
            dp_rec(idx + 1, queue, env, &taken, cache, memo, nodes)
        };
        let payoff = cand.payoff + sub_payoff;
        if payoff > best.0 {
            sub_dec.push((idx, cand));
            best = (payoff, sub_dec);
        }
    }

    memo.insert(key, best.clone());
    best
}

/// Greedy selection: jobs in descending *utility rate* — best-case utility
/// per requested GPU **per second of remaining work** (`U / (W_j ·
/// t_j^min)`), the marginal payoff of a GPU-second spent on the job. Under
/// the normalized effective-throughput utility this reduces to
/// shortest-remaining-processing-time ordering, which minimizes average JCT;
/// ordering by utility *level* instead would starve short jobs whose waiting
/// time has already deflated their achievable utility. One `find_alloc` per
/// job, prices updated after every admission.
pub fn greedy_allocation(queue: &[&JobState], env: &AllocEnv<'_>, usage: &Usage) -> Selection {
    greedy_with_cache(queue, env, usage, &mut CandidateCache::new())
}

/// [`greedy_allocation`] against a caller-provided candidate cache, so the
/// DP can share the candidates it already enumerated with its greedy floor
/// and the scheduler can carry cached geometry across rounds.
pub fn greedy_allocation_cached(
    queue: &[&JobState],
    env: &AllocEnv<'_>,
    usage: &Usage,
    cache: &mut CandidateCache,
) -> Selection {
    greedy_with_cache(queue, env, usage, cache)
}

fn greedy_with_cache(
    queue: &[&JobState],
    env: &AllocEnv<'_>,
    usage: &Usage,
    cache: &mut CandidateCache,
) -> Selection {
    let mut order: Vec<usize> = (0..queue.len()).collect();
    let keys: Vec<(f64, f64)> = queue
        .iter()
        .map(|s| {
            let best = s.job.best_rate();
            if best <= 0.0 || s.remaining_iters <= 0.0 {
                return (f64::NEG_INFINITY, f64::INFINITY);
            }
            let t_min = s.remaining_iters / best;
            let elapsed = (env.now - s.job.arrival).max(0.0);
            let density = env.utility.value(&s.job, elapsed + t_min, env.now + t_min)
                / (s.job.gang as f64 * t_min);
            (density, t_min)
        })
        .collect();
    order.sort_by(|&a, &b| {
        keys[b]
            .0
            .total_cmp(&keys[a].0)
            .then(keys[a].1.total_cmp(&keys[b].1))
            .then(a.cmp(&b))
    });
    let density: Vec<f64> = keys.into_iter().map(|(d, _)| d).collect();

    let mut usage = usage.clone();
    let mut selection = Selection::default();
    // Parallel prefetch: ahead of the serial admission loop, batches of
    // upcoming jobs are priced against the *current* usage snapshot on
    // worker threads. An admission changes usage (and thus every later
    // query's key), so the window restarts small after one and doubles
    // while the loop is only rejecting — the common regime on a saturated
    // cluster, where the whole remaining tail is one batch.
    let threads = if queue.len() >= MIN_PARALLEL_QUEUE {
        env.round_threads
    } else {
        1
    };
    let mut prefetched_to = 0usize;
    let mut window = threads * 4;
    for (pos, &i) in order.iter().enumerate() {
        if density[i] == f64::NEG_INFINITY {
            continue;
        }
        if usage.is_cluster_full(env.cluster) {
            break;
        }
        if threads > 1 && pos >= prefetched_to {
            let end = (pos + window).min(order.len());
            let batch: Vec<&JobState> = order[pos..end]
                .iter()
                .filter(|&&j| density[j] != f64::NEG_INFINITY)
                .map(|&j| queue[j])
                .collect();
            cache.prefetch(&batch, env, &usage);
            prefetched_to = end;
            window = (window * 2).min(1024);
        }
        if let Some(cand) = cache.best(queue[i], env, &usage) {
            for s in cand.placement.slices() {
                usage.add(s.machine, s.gpu, s.count);
            }
            selection.total_payoff += cand.payoff;
            selection.decisions.push((i, cand));
            prefetched_to = pos + 1;
            window = threads * 4;
        }
    }
    selection.decisions.sort_by_key(|(i, _)| *i);
    selection
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::price::PriceState;
    use crate::utility::EffectiveThroughput;
    use hadar_cluster::{Cluster, CommCostModel, JobId};
    use hadar_workload::{DlTask, Job};

    fn mk_states(specs: &[(DlTask, u32, u64)]) -> (Cluster, Vec<JobState>) {
        let cluster = Cluster::motivation_toy();
        let states = specs
            .iter()
            .enumerate()
            .map(|(i, &(model, gang, epochs))| {
                JobState::new(Job::for_model(
                    JobId(i as u32),
                    model,
                    cluster.catalog(),
                    0.0,
                    gang,
                    epochs,
                ))
            })
            .collect();
        (cluster, states)
    }

    fn run_both(cluster: &Cluster, states: &[JobState]) -> (Selection, Selection) {
        let prices = PriceState::compute(states, cluster, &EffectiveThroughput, 0.0);
        let comm = CommCostModel::default();
        let env = AllocEnv {
            cluster,
            comm: &comm,
            prices: &prices,
            utility: &EffectiveThroughput,
            now: 0.0,
            realloc_stall: 10.0,
            features: Default::default(),
            machine_factors: &[],
            round_threads: 1,
        };
        let usage = Usage::empty(cluster);
        let queue: Vec<&JobState> = states.iter().collect();
        (
            dp_allocation(&queue, &env, &usage),
            greedy_allocation(&queue, &env, &usage),
        )
    }

    fn feasible(cluster: &Cluster, sel: &Selection, states: &[JobState]) {
        let mut usage = Usage::empty(cluster);
        for (i, c) in &sel.decisions {
            assert_eq!(c.placement.total_workers(), states[*i].job.gang);
            for s in c.placement.slices() {
                usage.add(s.machine, s.gpu, s.count);
            }
        }
        for h in cluster.machine_ids() {
            for r in cluster.catalog().ids() {
                assert!(usage.get(h, r) <= cluster.capacity(h, r));
            }
        }
    }

    #[test]
    fn dp_and_greedy_feasible_and_dp_at_least_as_good() {
        let (cluster, states) = mk_states(&[
            (DlTask::ResNet18, 2, 40),
            (DlTask::Lstm, 2, 5),
            (DlTask::CycleGan, 3, 3),
            (DlTask::Transformer, 1, 8),
        ]);
        let (dp, greedy) = run_both(&cluster, &states);
        feasible(&cluster, &dp, &states);
        feasible(&cluster, &greedy, &states);
        assert!(
            dp.total_payoff >= greedy.total_payoff - 1e-9,
            "dp {} < greedy {}",
            dp.total_payoff,
            greedy.total_payoff
        );
        assert!(!dp.decisions.is_empty());
    }

    #[test]
    fn dp_matches_exhaustive_on_tiny_instance() {
        // Two jobs contending for the 2 V100s: at most one can take both.
        let (cluster, states) = mk_states(&[(DlTask::ResNet18, 2, 40), (DlTask::ResNet18, 2, 40)]);
        let (dp, _) = run_both(&cluster, &states);
        feasible(&cluster, &dp, &states);
        // Both jobs can actually be placed: one on V100s, one on P100s.
        assert_eq!(dp.decisions.len(), 2);
    }

    #[test]
    fn empty_queue_yields_empty_selection() {
        let (cluster, _) = mk_states(&[]);
        let states: Vec<JobState> = Vec::new();
        let (dp, greedy) = run_both(&cluster, &states);
        assert!(dp.decisions.is_empty());
        assert!(greedy.decisions.is_empty());
        assert_eq!(dp.total_payoff, 0.0);
    }

    #[test]
    fn greedy_prefers_high_density_jobs_under_contention() {
        // Five 2-GPU jobs on a 6-GPU cluster: only ~3 fit. The greedy must
        // admit the higher-utility-density ones (ResNet-18 here: its short
        // best-case runtime gives the largest effective throughput).
        let (cluster, states) = mk_states(&[
            (DlTask::CycleGan, 2, 6),
            (DlTask::ResNet18, 2, 40),
            (DlTask::CycleGan, 2, 6),
            (DlTask::ResNet18, 2, 40),
            (DlTask::CycleGan, 2, 6),
        ]);
        let (_, greedy) = run_both(&cluster, &states);
        feasible(&cluster, &greedy, &states);
        let picked: Vec<usize> = greedy.decisions.iter().map(|(i, _)| *i).collect();
        assert!(picked.contains(&1) && picked.contains(&3), "{picked:?}");
    }

    #[test]
    fn small_instances_do_not_exhaust_dp_budget() {
        let (cluster, states) = mk_states(&[(DlTask::ResNet18, 2, 40), (DlTask::Lstm, 2, 5)]);
        let (dp, greedy) = run_both(&cluster, &states);
        assert!(!dp.budget_exhausted);
        assert!(!greedy.budget_exhausted);
    }

    /// Regression (NaN-unsafe comparators): a utility returning NaN used to
    /// panic the round path inside the candidate/density sorts. With
    /// `total_cmp` the sorts are total, and NaN payoffs fail the `> 0`
    /// admission filter, so the adversarial job is simply never scheduled.
    #[test]
    fn nan_utility_does_not_panic_round_path() {
        struct NanUtility;
        impl crate::utility::Utility for NanUtility {
            fn name(&self) -> &str {
                "nan"
            }
            fn value(&self, job: &Job, jct: f64, _finish: f64) -> f64 {
                if job.id.0 == 1 {
                    f64::NAN
                } else {
                    EffectiveThroughput.value(job, jct, _finish)
                }
            }
        }
        let (cluster, states) = mk_states(&[
            (DlTask::ResNet18, 2, 40),
            (DlTask::Lstm, 2, 5),
            (DlTask::CycleGan, 1, 6),
        ]);
        let prices = PriceState::compute(&states, &cluster, &NanUtility, 0.0);
        let comm = CommCostModel::default();
        let env = AllocEnv {
            cluster: &cluster,
            comm: &comm,
            prices: &prices,
            utility: &NanUtility,
            now: 0.0,
            realloc_stall: 10.0,
            features: Default::default(),
            machine_factors: &[],
            round_threads: 1,
        };
        let usage = Usage::empty(&cluster);
        let queue: Vec<&JobState> = states.iter().collect();
        for sel in [
            dp_allocation(&queue, &env, &usage),
            greedy_allocation(&queue, &env, &usage),
        ] {
            assert!(
                sel.decisions.iter().all(|(i, _)| *i != 1),
                "the NaN-payoff job must never be admitted"
            );
            assert!(sel.total_payoff.is_finite());
        }
    }

    #[test]
    fn decisions_are_sorted_by_queue_index() {
        let (cluster, states) = mk_states(&[
            (DlTask::ResNet18, 1, 10),
            (DlTask::ResNet18, 1, 10),
            (DlTask::ResNet18, 1, 10),
        ]);
        let (dp, greedy) = run_both(&cluster, &states);
        for sel in [&dp, &greedy] {
            assert!(sel.decisions.windows(2).all(|w| w[0].0 < w[1].0));
        }
    }
}

#[cfg(test)]
mod randomized_tests {
    use super::*;
    use crate::price::PriceState;
    use crate::utility::EffectiveThroughput;
    use hadar_cluster::{Cluster, CommCostModel, JobId};
    use hadar_rng::{Rng, StdRng};
    use hadar_workload::{DlTask, Job};

    /// DP and greedy selections on random queues are always feasible
    /// (capacity + gang), carry non-negative payoffs, and the DP never
    /// scores below the greedy.
    #[test]
    fn selections_feasible_and_dp_dominates() {
        let mut rng = StdRng::seed_from_u64(0xF6);
        for case in 0..24 {
            let cluster = Cluster::motivation_toy();
            let n = rng.gen_range_usize(1..9);
            let states: Vec<JobState> = (0..n)
                .map(|i| {
                    let m = rng.gen_range_usize(0..5);
                    let gang = rng.gen_range_usize(1..5) as u32;
                    let epochs = rng.gen_range_usize(1..61) as u64;
                    JobState::new(Job::for_model(
                        JobId(i as u32),
                        DlTask::ALL[m],
                        cluster.catalog(),
                        0.0,
                        gang,
                        epochs,
                    ))
                })
                .collect();
            let prices = PriceState::compute(&states, &cluster, &EffectiveThroughput, 0.0);
            let comm = CommCostModel::default();
            let env = AllocEnv {
                cluster: &cluster,
                comm: &comm,
                prices: &prices,
                utility: &EffectiveThroughput,
                now: 0.0,
                realloc_stall: 10.0,
                features: Default::default(),
                machine_factors: &[],
                round_threads: 1,
            };
            let usage = Usage::empty(&cluster);
            let queue: Vec<&JobState> = states.iter().collect();
            let dp = dp_allocation(&queue, &env, &usage);
            let greedy = greedy_allocation(&queue, &env, &usage);
            assert!(dp.total_payoff >= greedy.total_payoff - 1e-9, "case {case}");
            for sel in [&dp, &greedy] {
                let mut u = Usage::empty(&cluster);
                let mut seen = std::collections::HashSet::new();
                for (i, c) in &sel.decisions {
                    assert!(seen.insert(*i), "case {case}: job selected twice");
                    assert!(c.payoff > 0.0, "case {case}");
                    assert_eq!(c.placement.total_workers(), states[*i].job.gang);
                    for s in c.placement.slices() {
                        u.add(s.machine, s.gpu, s.count);
                    }
                }
                for h in cluster.machine_ids() {
                    for r in cluster.catalog().ids() {
                        assert!(u.get(h, r) <= cluster.capacity(h, r), "case {case}");
                    }
                }
            }
        }
    }
}

//! Throughput estimation (the "throughput estimator" of Fig. 2) and the
//! round-path profiler.
//!
//! Hadar "obtains performance measurements for each runnable job on each
//! available accelerator type either from user input or by profiling during
//! the first few rounds of execution". In the simulator the oracle profile
//! is known, so the estimator models the profiling phase: during a job's
//! first `rounds` scheduling rounds, decisions see the true rates perturbed
//! by deterministic multiplicative noise; afterwards the measured (exact)
//! profile is used. This lets ablations quantify how sensitive Hadar is to
//! estimation error.
//!
//! [`RoundProfiler`] is unrelated to throughput: it is the wall-clock
//! stopwatch the scheduler runs its own round phases under (price update,
//! candidate generation, selection), feeding the per-round
//! `DecisionPhases` records the simulator surfaces in `SimOutcome` and the
//! `round_bench` binary aggregates.

use std::collections::HashMap;
use std::time::Instant;

use hadar_cluster::JobId;
use hadar_workload::{Job, ThroughputProfile};

/// One scheduling round's intra-round phases, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundPhase {
    /// Dual price recomputation (Eq. 5) over the live queue.
    Price,
    /// Candidate enumeration — serial misses plus parallel prefetch batches.
    Candidates,
    /// The Algorithm-2 subroutine (DP or greedy floor) minus the candidate
    /// generation it triggered.
    Select,
}

/// Seconds attributed to each [`RoundPhase`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RoundTimings {
    /// Seconds in [`RoundPhase::Price`].
    pub price_seconds: f64,
    /// Seconds in [`RoundPhase::Candidates`].
    pub candidates_seconds: f64,
    /// Seconds in [`RoundPhase::Select`].
    pub select_seconds: f64,
}

impl RoundTimings {
    fn slot(&mut self, phase: RoundPhase) -> &mut f64 {
        match phase {
            RoundPhase::Price => &mut self.price_seconds,
            RoundPhase::Candidates => &mut self.candidates_seconds,
            RoundPhase::Select => &mut self.select_seconds,
        }
    }

    /// Total seconds across all phases.
    pub fn total_seconds(&self) -> f64 {
        self.price_seconds + self.candidates_seconds + self.select_seconds
    }
}

/// Wall-clock profiler for the scheduler's round path: accumulates seconds
/// per [`RoundPhase`] within the current round and folds finished rounds
/// into lifetime totals. Purely observational — it never influences
/// decisions, so timings can vary run-to-run while outputs stay identical.
#[derive(Debug, Clone, Default)]
pub struct RoundProfiler {
    current: RoundTimings,
    totals: RoundTimings,
    rounds: usize,
}

impl RoundProfiler {
    /// A fresh profiler with zeroed totals.
    pub fn new() -> Self {
        Self::default()
    }

    /// Run `f`, attributing its wall-clock to `phase` in the current round.
    pub fn time<T>(&mut self, phase: RoundPhase, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        *self.current.slot(phase) += t0.elapsed().as_secs_f64();
        out
    }

    /// Move `seconds` of already-recorded time from one phase to another.
    /// The candidate cache measures generation time internally while the
    /// selection subroutine runs; this carves it out of
    /// [`RoundPhase::Select`] into [`RoundPhase::Candidates`] without
    /// double-counting. Clamped so no phase goes negative.
    pub fn reattribute(&mut self, from: RoundPhase, to: RoundPhase, seconds: f64) {
        let moved = seconds.max(0.0).min(*self.current.slot(from));
        *self.current.slot(from) -= moved;
        *self.current.slot(to) += moved;
    }

    /// Close the current round: returns its timings and folds them into the
    /// lifetime totals.
    pub fn finish_round(&mut self) -> RoundTimings {
        let round = self.current;
        self.totals.price_seconds += round.price_seconds;
        self.totals.candidates_seconds += round.candidates_seconds;
        self.totals.select_seconds += round.select_seconds;
        self.rounds += 1;
        self.current = RoundTimings::default();
        round
    }

    /// Lifetime per-phase totals over all finished rounds.
    pub fn totals(&self) -> RoundTimings {
        self.totals
    }

    /// Finished rounds folded into [`RoundProfiler::totals`].
    pub fn rounds(&self) -> usize {
        self.rounds
    }
}

/// Profiling-phase parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfilerConfig {
    /// Rounds a job is observed before its profile is considered measured.
    pub rounds: u32,
    /// Maximum relative error during the profiling phase (e.g. 0.2 = ±20 %).
    pub noise: f64,
    /// Seed decorrelating noise across experiments.
    pub seed: u64,
}

impl Default for ProfilerConfig {
    fn default() -> Self {
        Self {
            rounds: 3,
            noise: 0.2,
            seed: 0,
        }
    }
}

/// Tracks per-job observation counts and serves (possibly noisy) profiles.
#[derive(Debug, Clone, Default)]
pub struct ThroughputEstimator {
    config: ProfilerConfig,
    seen: HashMap<JobId, u32>,
}

impl ThroughputEstimator {
    /// Build with `config`.
    pub fn new(config: ProfilerConfig) -> Self {
        Self {
            config,
            seen: HashMap::new(),
        }
    }

    /// Record that `job` was visible in a scheduling round (call once per
    /// round per queued job).
    pub fn observe(&mut self, job: JobId) {
        *self.seen.entry(job).or_insert(0) += 1;
    }

    /// Forget a finished job.
    pub fn forget(&mut self, job: JobId) {
        self.seen.remove(&job);
    }

    /// How many rounds `job` has been observed.
    pub fn observations(&self, job: JobId) -> u32 {
        self.seen.get(&job).copied().unwrap_or(0)
    }

    /// The profile the scheduler should use for `job` right now: noisy while
    /// under-observed, exact once profiled.
    pub fn profile_for(&self, job: &Job) -> ThroughputProfile {
        if self.observations(job.id) >= self.config.rounds || self.config.noise <= 0.0 {
            return job.profile.clone();
        }
        let rates: Vec<f64> = job
            .profile
            .raw()
            .iter()
            .enumerate()
            .map(|(r, &x)| {
                if x <= 0.0 {
                    return x;
                }
                let u = hash01(self.config.seed, job.id.0 as u64, r as u64);
                // Multiplicative error in [1−noise, 1+noise].
                x * (1.0 + self.config.noise * (2.0 * u - 1.0))
            })
            .collect();
        ThroughputProfile::from_rates(rates)
    }
}

/// SplitMix64-style deterministic hash to `[0, 1)`.
fn hash01(seed: u64, a: u64, b: u64) -> f64 {
    let mut z = seed
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(a.wrapping_mul(0xBF58476D1CE4E5B9))
        .wrapping_add(b.wrapping_mul(0x94D049BB133111EB));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use hadar_cluster::Cluster;
    use hadar_workload::DlTask;

    fn job() -> Job {
        let c = Cluster::paper_simulation();
        Job::for_model(JobId(3), DlTask::Lstm, c.catalog(), 0.0, 2, 10)
    }

    #[test]
    fn noisy_until_profiled() {
        let j = job();
        let mut est = ThroughputEstimator::new(ProfilerConfig {
            rounds: 2,
            noise: 0.2,
            seed: 7,
        });
        let noisy = est.profile_for(&j);
        assert_ne!(noisy, j.profile, "noise must perturb the profile");
        // Error bounded by ±20 %.
        for (a, b) in noisy.raw().iter().zip(j.profile.raw()) {
            assert!((a / b - 1.0).abs() <= 0.2 + 1e-12);
        }
        est.observe(j.id);
        assert_ne!(est.profile_for(&j), j.profile);
        est.observe(j.id);
        assert_eq!(est.profile_for(&j), j.profile, "profiled after 2 rounds");
    }

    #[test]
    fn noise_is_deterministic() {
        let j = job();
        let est1 = ThroughputEstimator::new(ProfilerConfig::default());
        let est2 = ThroughputEstimator::new(ProfilerConfig::default());
        assert_eq!(est1.profile_for(&j), est2.profile_for(&j));
        let est3 = ThroughputEstimator::new(ProfilerConfig {
            seed: 99,
            ..ProfilerConfig::default()
        });
        assert_ne!(est1.profile_for(&j), est3.profile_for(&j));
    }

    #[test]
    fn zero_noise_is_exact() {
        let j = job();
        let est = ThroughputEstimator::new(ProfilerConfig {
            rounds: 5,
            noise: 0.0,
            seed: 0,
        });
        assert_eq!(est.profile_for(&j), j.profile);
    }

    #[test]
    fn forget_resets_observations() {
        let j = job();
        let mut est = ThroughputEstimator::new(ProfilerConfig::default());
        est.observe(j.id);
        est.observe(j.id);
        assert_eq!(est.observations(j.id), 2);
        est.forget(j.id);
        assert_eq!(est.observations(j.id), 0);
    }

    #[test]
    fn hash01_in_unit_interval() {
        for a in 0..50 {
            let v = hash01(1, a, a * 3);
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn round_profiler_times_and_folds_rounds() {
        let mut p = RoundProfiler::new();
        let out = p.time(RoundPhase::Price, || 41 + 1);
        assert_eq!(out, 42);
        p.time(RoundPhase::Select, || std::hint::black_box(()));
        let round = p.finish_round();
        assert!(round.price_seconds >= 0.0 && round.select_seconds >= 0.0);
        assert_eq!(round.candidates_seconds, 0.0);
        assert_eq!(p.rounds(), 1);
        assert_eq!(p.totals(), round);
        // A second round accumulates into the lifetime totals.
        p.time(RoundPhase::Candidates, || std::hint::black_box(()));
        let r2 = p.finish_round();
        assert_eq!(p.rounds(), 2);
        assert!(
            (p.totals().total_seconds() - (round.total_seconds() + r2.total_seconds())).abs()
                < 1e-12
        );
    }

    #[test]
    fn reattribute_moves_time_and_clamps() {
        let mut p = RoundProfiler::new();
        p.time(RoundPhase::Select, || {
            std::thread::sleep(std::time::Duration::from_millis(2))
        });
        let before = p.finish_round();
        assert!(before.select_seconds > 0.0);

        // Fresh round: record select time, then carve half into candidates.
        p.time(RoundPhase::Select, || {
            std::thread::sleep(std::time::Duration::from_millis(2))
        });
        let select = {
            // Peek via a clone of the fold.
            let mut q = p.clone();
            q.finish_round().select_seconds
        };
        p.reattribute(RoundPhase::Select, RoundPhase::Candidates, select / 2.0);
        let round = p.finish_round();
        assert!((round.candidates_seconds - select / 2.0).abs() < 1e-12);
        assert!((round.select_seconds - select / 2.0).abs() < 1e-12);

        // Over-moving clamps at the available time; negatives are ignored.
        p.time(RoundPhase::Price, || std::hint::black_box(()));
        p.reattribute(RoundPhase::Price, RoundPhase::Select, f64::MAX);
        p.reattribute(RoundPhase::Select, RoundPhase::Price, -1.0);
        let r = p.finish_round();
        assert_eq!(r.price_seconds, 0.0);
        assert!(r.select_seconds >= 0.0);
    }
}

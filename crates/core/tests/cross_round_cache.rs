//! The cross-round candidate cache is exact: with the class-geometry layer
//! kept alive across rounds, every simulation must make bit-identical
//! decisions to the cache-off reference — including under machine failures
//! (evictions shrink the usable-GPU mask), stragglers, preemption
//! penalties, and the noisy profiling estimator, all of which mutate the
//! inputs the cache is keyed on. A stale entry served after any of these
//! perturbations would show up here as a diverging trail.

use hadar_cluster::Cluster;
use hadar_core::profiler::ProfilerConfig;
use hadar_core::{HadarConfig, HadarScheduler, RoundParallelism};
use hadar_sim::{
    FailureModel, PreemptionPenalty, SimConfig, SimOutcome, Simulation, StragglerModel,
};
use hadar_workload::{generate_trace, ArrivalPattern, TraceConfig};

fn run(seed: u64, pattern: ArrivalPattern, sim: SimConfig, cache: bool) -> SimOutcome {
    let cluster = Cluster::paper_simulation();
    let jobs = generate_trace(
        &TraceConfig {
            num_jobs: 12,
            seed,
            pattern,
        },
        cluster.catalog(),
    );
    let config = HadarConfig {
        cross_round_cache: cache,
        // Pin one worker so this test isolates the cache (thread invariance
        // has its own test in crates/bench).
        round_parallelism: RoundParallelism::Fixed(1),
        profiler: Some(ProfilerConfig {
            seed,
            ..ProfilerConfig::default()
        }),
        ..HadarConfig::default()
    };
    Simulation::new(cluster, jobs, sim)
        .run(HadarScheduler::new(config))
        .expect("valid scenario")
}

/// Everything decision-shaped in a run, bit-exact.
fn trail(out: &SimOutcome) -> Vec<(Option<u64>, Option<u64>, u32, u32)> {
    out.records
        .iter()
        .map(|r| {
            (
                r.first_scheduled.map(f64::to_bits),
                r.finish.map(f64::to_bits),
                r.rounds_run,
                r.reallocations,
            )
        })
        .collect()
}

#[test]
fn cache_never_changes_decisions_across_seeds_and_fault_models() {
    for seed in 0..3u64 {
        // Failures force evictions mid-run; stragglers and the modeled
        // penalty perturb throughputs and prices round over round. Poisson
        // arrivals on odd seeds exercise the dirty-set path on admission.
        let pattern = if seed % 2 == 0 {
            ArrivalPattern::Static
        } else {
            ArrivalPattern::Poisson {
                jobs_per_hour: 12.0,
            }
        };
        let sim = SimConfig {
            penalty: PreemptionPenalty::Fixed(15.0),
            straggler: Some(StragglerModel {
                seed: seed + 1,
                ..StragglerModel::default()
            }),
            failure: Some(FailureModel {
                mtbf_rounds: 30.0,
                mttr_rounds: 4.0,
                seed: seed + 2,
            }),
            // Bounded work per seed; a capped (timed-out) run still compares
            // every per-round decision made up to the cap.
            max_rounds: 300,
            ..SimConfig::default()
        };
        let with = run(seed, pattern, sim, true);
        let without = run(seed, pattern, sim, false);
        assert_eq!(
            trail(&with),
            trail(&without),
            "seed {seed}: cross-round cache changed the decision trail"
        );
        assert_eq!(with.timed_out, without.timed_out, "seed {seed}");
        assert_eq!(
            with.reused_rounds(),
            without.reused_rounds(),
            "seed {seed}: fast-path reuse count diverged"
        );
    }
}

#[test]
fn cache_is_exact_after_eviction_storms() {
    // An aggressive failure process (MTBF 6 rounds, paper cluster) keeps
    // evicting jobs and flipping the availability mask: the cache must
    // invalidate on every such change rather than serve pre-failure
    // geometries for machines that no longer exist.
    let sim = SimConfig {
        failure: Some(FailureModel {
            mtbf_rounds: 6.0,
            mttr_rounds: 3.0,
            seed: 9,
        }),
        max_rounds: 250,
        ..SimConfig::default()
    };
    let with = run(7, ArrivalPattern::Static, sim, true);
    let without = run(7, ArrivalPattern::Static, sim, false);
    assert!(
        with.machine_failures() > 0,
        "scenario must actually inject failures"
    );
    assert_eq!(trail(&with), trail(&without));
}

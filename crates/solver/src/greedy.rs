//! Density-greedy approximation of the total-throughput transportation LP.
//!
//! Formerly the large-queue fallback for the Gavel scheduler; since the
//! sparse revised simplex ([`crate::revised`]) with cross-round
//! warm-starting made the exact LP cheap at every Fig. 7 scale, the greedy
//! is kept only as an accuracy and latency yardstick. The total-throughput
//! objective has transportation structure, for which allocating time-shares
//! in descending value-per-GPU order is a strong approximation: each step
//! is locally optimal and both constraint families are simple budgets.
//! Tests compare it against the exact simplex optimum on random instances.

use crate::gavel::{GavelLpError, GavelLpInput};

/// Greedy approximation to [`crate::max_total_throughput_allocation`].
///
/// Returns a feasible `Y` (never violates the job-time or capacity
/// budgets), or a [`GavelLpError`] on malformed input.
pub fn greedy_total_throughput(input: &GavelLpInput) -> Result<Vec<Vec<f64>>, GavelLpError> {
    let (num_jobs, num_types) = input.validate()?;
    let mut y = vec![vec![0.0f64; num_types]; num_jobs];
    if num_jobs == 0 {
        return Ok(y);
    }

    // Candidate (j, r) pairs sorted by throughput-per-GPU density, i.e.
    // value of one unit of Y weighted by how much capacity it consumes.
    let mut order: Vec<(usize, usize, f64)> = Vec::with_capacity(num_jobs * num_types);
    for (j, row) in input.throughput.iter().enumerate() {
        for (r, &x) in row.iter().enumerate() {
            if x > 0.0 {
                // Value of Y_jr = x * W_j; capacity consumed = W_j per unit.
                // Density = value / capacity = x. Jobs with higher raw
                // per-worker throughput on a type use it first.
                order.push((j, r, x));
            }
        }
    }
    order.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("finite throughput"));

    let mut job_budget = vec![1.0f64; num_jobs];
    let mut cap_left: Vec<f64> = input.capacity.iter().map(|&c| c as f64).collect();

    for (j, r, _) in order {
        let w = input.gang[j] as f64;
        if w <= 0.0 {
            continue;
        }
        let take = job_budget[j].min(cap_left[r] / w);
        if take > 1e-12 {
            y[j][r] += take;
            job_budget[j] -= take;
            cap_left[r] -= take * w;
        }
    }
    Ok(y)
}

/// Objective value `Σ_jr Y_jr · X_jr · W_j` of an allocation matrix.
pub fn total_throughput_objective(input: &GavelLpInput, y: &[Vec<f64>]) -> f64 {
    y.iter()
        .enumerate()
        .map(|(j, row)| {
            row.iter()
                .enumerate()
                .map(|(r, &v)| v * input.throughput[j][r] * input.gang[j] as f64)
                .sum::<f64>()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gavel::{feasibility_violation, max_total_throughput_allocation};

    #[test]
    fn greedy_is_feasible() {
        let input = GavelLpInput {
            throughput: vec![vec![10.0, 2.0], vec![6.0, 5.0], vec![1.0, 1.0]],
            gang: vec![2, 1, 4],
            capacity: vec![2, 2],
        };
        let y = greedy_total_throughput(&input).unwrap();
        assert!(feasibility_violation(&input, &y) < 1e-9, "y={y:?}");
    }

    #[test]
    fn greedy_matches_exact_on_uncontended_instance() {
        // Plenty of capacity: everyone gets full share of their best type.
        let input = GavelLpInput {
            throughput: vec![vec![10.0, 2.0], vec![3.0, 7.0]],
            gang: vec![1, 1],
            capacity: vec![10, 10],
        };
        let g = greedy_total_throughput(&input).unwrap();
        let exact = max_total_throughput_allocation(&input).unwrap();
        let og = total_throughput_objective(&input, &g);
        let oe = total_throughput_objective(&input, &exact);
        assert!((og - oe).abs() < 1e-6, "greedy {og} vs exact {oe}");
    }

    #[test]
    fn greedy_near_exact_on_random_instances() {
        // Deterministic pseudo-random instances; greedy should be within a
        // modest factor of the LP optimum (it is near-exact in practice).
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for trial in 0..20 {
            let j = 3 + trial % 8;
            let r = 2 + trial % 3;
            let throughput: Vec<Vec<f64>> = (0..j)
                .map(|_| (0..r).map(|_| 1.0 + 20.0 * next()).collect())
                .collect();
            let gang: Vec<u32> = (0..j).map(|_| 1 + (next() * 4.0) as u32).collect();
            let capacity: Vec<u32> = (0..r).map(|_| 1 + (next() * 6.0) as u32).collect();
            let input = GavelLpInput {
                throughput,
                gang,
                capacity,
            };
            let g = greedy_total_throughput(&input).unwrap();
            assert!(feasibility_violation(&input, &g) < 1e-7);
            let exact = max_total_throughput_allocation(&input).unwrap();
            let og = total_throughput_objective(&input, &g);
            let oe = total_throughput_objective(&input, &exact);
            assert!(
                og >= 0.75 * oe - 1e-9,
                "trial {trial}: greedy {og} far below exact {oe}"
            );
        }
    }

    #[test]
    fn empty_instance() {
        let input = GavelLpInput {
            throughput: vec![],
            gang: vec![],
            capacity: vec![3],
        };
        assert!(greedy_total_throughput(&input).unwrap().is_empty());
    }
}

//! Dense two-phase primal simplex.
//!
//! Solves `max c·x  s.t.  A x {≤,=,≥} b,  x ≥ 0` on a dense tableau.
//! Phase 1 minimizes the sum of artificial variables to find a feasible
//! basis; phase 2 optimizes the real objective. Entering variables are
//! chosen by Dantzig's rule (most negative reduced cost) with a switch to
//! Bland's rule after an iteration budget to guarantee termination under
//! degeneracy.
//!
//! Problem sizes in this workspace are moderate (a few thousand variables
//! for the largest Fig. 7 point), for which a dense tableau is simple,
//! cache-friendly, and fast enough.

/// Comparison direction of one constraint row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `a·x ≤ b`
    Le,
    /// `a·x = b`
    Eq,
    /// `a·x ≥ b`
    Ge,
}

/// One constraint: sparse coefficient list, relation, right-hand side.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// `(variable index, coefficient)` pairs; indices must be `< num_vars`.
    pub coeffs: Vec<(usize, f64)>,
    /// Relation between `a·x` and `rhs`.
    pub relation: Relation,
    /// Right-hand side.
    pub rhs: f64,
}

/// A linear program `max c·x` over non-negative variables.
#[derive(Debug, Clone)]
pub struct LpProblem {
    num_vars: usize,
    objective: Vec<f64>,
    constraints: Vec<Constraint>,
}

/// Solver outcome.
#[derive(Debug, Clone, PartialEq)]
pub enum LpOutcome {
    /// An optimal vertex was found.
    Optimal(LpSolution),
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded above on the feasible region.
    Unbounded,
}

/// An optimal solution.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Optimal variable values (length `num_vars`).
    pub x: Vec<f64>,
    /// Optimal objective value `c·x`.
    pub objective: f64,
}

impl LpOutcome {
    /// The solution if optimal, else `None`.
    pub fn optimal(self) -> Option<LpSolution> {
        match self {
            LpOutcome::Optimal(s) => Some(s),
            _ => None,
        }
    }
}

const EPS: f64 = 1e-9;

impl LpProblem {
    /// A maximization problem over `num_vars` non-negative variables with a
    /// zero objective.
    pub fn maximize(num_vars: usize) -> Self {
        Self {
            num_vars,
            objective: vec![0.0; num_vars],
            constraints: Vec::new(),
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of constraints added so far.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Set the objective coefficient of variable `i`.
    pub fn set_objective(&mut self, i: usize, c: f64) -> &mut Self {
        assert!(i < self.num_vars, "objective index out of range");
        assert!(c.is_finite());
        self.objective[i] = c;
        self
    }

    /// Add a constraint.
    ///
    /// # Panics
    /// Panics on out-of-range variable indices or non-finite numbers.
    pub fn add_constraint(
        &mut self,
        coeffs: Vec<(usize, f64)>,
        relation: Relation,
        rhs: f64,
    ) -> &mut Self {
        assert!(rhs.is_finite());
        for &(i, a) in &coeffs {
            assert!(i < self.num_vars, "constraint index {i} out of range");
            assert!(a.is_finite());
        }
        self.constraints.push(Constraint {
            coeffs,
            relation,
            rhs,
        });
        self
    }

    /// Solve with two-phase simplex.
    pub fn solve(&self) -> LpOutcome {
        Tableau::build(self).solve().0
    }

    /// Solve with the dense two-phase simplex and also export the optimal
    /// basis in the standard-form column ids of [`crate::revised::Basis`],
    /// so a dense cold solve can seed the revised solver's warm-start path
    /// on later rounds. The basis is `None` unless the outcome is optimal.
    pub fn solve_dense_with_basis(&self) -> (LpOutcome, Option<crate::revised::Basis>) {
        let (out, cols) = Tableau::build(self).solve();
        let basis = match (&out, cols) {
            (LpOutcome::Optimal(_), Some(cols)) => Some(crate::revised::Basis::from_columns(
                cols,
                self.num_vars,
                self.constraints.len(),
            )),
            _ => None,
        };
        (out, basis)
    }

    /// The constraint rows (shared with the revised solver).
    pub(crate) fn constraint_rows(&self) -> &[Constraint] {
        &self.constraints
    }

    /// The objective coefficients (shared with the revised solver).
    pub(crate) fn objective_coeffs(&self) -> &[f64] {
        &self.objective
    }
}

/// Internal dense tableau.
///
/// Layout: `rows` of length `width = total_cols + 1`; the last entry of each
/// row is the RHS. `basis[i]` is the column basic in row `i`.
struct Tableau {
    rows: Vec<Vec<f64>>,
    /// Objective row in `z − c·x = 0` form: entry `j` holds `−c_j` initially.
    obj: Vec<f64>,
    basis: Vec<usize>,
    num_structural: usize,
    total_cols: usize,
    artificial_start: usize,
    original_objective: Vec<f64>,
    /// Constraint row of each slack/surplus column, in column-allocation
    /// order (`slack_rows[s − slack_start]` = the row that owns column `s`).
    /// Needed to translate the final basis into [`crate::revised::Basis`]
    /// ids, which index slacks by *row*, not by allocation order.
    slack_rows: Vec<usize>,
}

impl Tableau {
    fn build(p: &LpProblem) -> Self {
        let m = p.constraints.len();
        // Count slack/surplus and artificial columns.
        let mut num_slack = 0;
        let mut num_artificial = 0;
        for c in &p.constraints {
            // Normalize so RHS ≥ 0 by flipping rows with negative RHS.
            let rel = if c.rhs < 0.0 {
                flip(c.relation)
            } else {
                c.relation
            };
            match rel {
                Relation::Le => num_slack += 1,
                Relation::Ge => {
                    num_slack += 1;
                    num_artificial += 1;
                }
                Relation::Eq => num_artificial += 1,
            }
        }
        let num_structural = p.num_vars;
        let slack_start = num_structural;
        let artificial_start = slack_start + num_slack;
        let total_cols = artificial_start + num_artificial;
        let width = total_cols + 1;

        let mut rows = vec![vec![0.0; width]; m];
        let mut basis = vec![usize::MAX; m];
        let mut slack_rows = Vec::with_capacity(num_slack);
        let mut next_slack = slack_start;
        let mut next_art = artificial_start;

        for (i, c) in p.constraints.iter().enumerate() {
            let sign = if c.rhs < 0.0 { -1.0 } else { 1.0 };
            let rel = if c.rhs < 0.0 {
                flip(c.relation)
            } else {
                c.relation
            };
            for &(j, a) in &c.coeffs {
                rows[i][j] += sign * a; // accumulate duplicate indices
            }
            rows[i][total_cols] = sign * c.rhs;
            match rel {
                Relation::Le => {
                    rows[i][next_slack] = 1.0;
                    basis[i] = next_slack;
                    slack_rows.push(i);
                    next_slack += 1;
                }
                Relation::Ge => {
                    rows[i][next_slack] = -1.0;
                    slack_rows.push(i);
                    next_slack += 1;
                    rows[i][next_art] = 1.0;
                    basis[i] = next_art;
                    next_art += 1;
                }
                Relation::Eq => {
                    rows[i][next_art] = 1.0;
                    basis[i] = next_art;
                    next_art += 1;
                }
            }
        }

        Self {
            rows,
            obj: vec![0.0; width],
            basis,
            num_structural,
            total_cols,
            artificial_start,
            original_objective: p.objective.clone(),
            slack_rows,
        }
    }

    /// Solve; on an optimal outcome also return the final basic columns
    /// translated to [`crate::revised::Basis`] standard-form ids
    /// (structural `j` → `j`, slack of row `i` → `num_structural + i`;
    /// basic artificials of redundant rows are dropped — `solve_warm`
    /// completes missing rows on its own).
    fn solve(mut self) -> (LpOutcome, Option<Vec<usize>>) {
        // Phase 1 (only if artificials exist): maximize −Σ artificials.
        if self.artificial_start < self.total_cols {
            self.obj = vec![0.0; self.total_cols + 1];
            for j in self.artificial_start..self.total_cols {
                self.obj[j] = 1.0; // z-row of "max −Σ a": −c_j = +1 for arts
            }
            // Make the objective row consistent with the starting basis
            // (artificial columns are basic, so price them out).
            for i in 0..self.rows.len() {
                if self.basis[i] >= self.artificial_start {
                    let row = self.rows[i].clone();
                    for (o, r) in self.obj.iter_mut().zip(row.iter()) {
                        *o -= r;
                    }
                }
            }
            match self.run(/*allow_artificial_entering=*/ false) {
                RunResult::Optimal => {}
                RunResult::Unbounded => unreachable!("phase 1 is bounded below"),
            }
            let phase1 = -self.obj[self.total_cols];
            if phase1.abs() > 1e-7 {
                return (LpOutcome::Infeasible, None);
            }
            // Drive any remaining artificials out of the basis.
            self.evict_basic_artificials();
        }

        // Phase 2: real objective.
        self.obj = vec![0.0; self.total_cols + 1];
        for j in 0..self.num_structural {
            self.obj[j] = -self.original_objective[j];
        }
        // Price out basic structural columns.
        for i in 0..self.rows.len() {
            let b = self.basis[i];
            let coef = self.obj[b];
            if coef.abs() > EPS {
                let row = self.rows[i].clone();
                for (o, r) in self.obj.iter_mut().zip(row.iter()) {
                    *o -= coef * r;
                }
            }
        }
        match self.run(false) {
            RunResult::Unbounded => (LpOutcome::Unbounded, None),
            RunResult::Optimal => {
                let mut x = vec![0.0; self.num_structural];
                for (i, &b) in self.basis.iter().enumerate() {
                    if b < self.num_structural {
                        x[b] = self.rows[i][self.total_cols].max(0.0);
                    }
                }
                let objective = x
                    .iter()
                    .zip(&self.original_objective)
                    .map(|(xi, ci)| xi * ci)
                    .sum();
                let cols: Vec<usize> = self
                    .basis
                    .iter()
                    .filter_map(|&b| {
                        if b < self.num_structural {
                            Some(b)
                        } else if b < self.artificial_start {
                            let row = self.slack_rows[b - self.num_structural];
                            Some(self.num_structural + row)
                        } else {
                            None
                        }
                    })
                    .collect();
                (LpOutcome::Optimal(LpSolution { x, objective }), Some(cols))
            }
        }
    }

    /// Replace basic artificial variables with structural/slack columns
    /// where possible; rows with no eligible pivot are redundant and their
    /// artificial stays basic at value 0 (harmless).
    fn evict_basic_artificials(&mut self) {
        for i in 0..self.rows.len() {
            if self.basis[i] < self.artificial_start {
                continue;
            }
            if let Some(j) = (0..self.artificial_start).find(|&j| self.rows[i][j].abs() > 1e-7) {
                self.pivot(i, j);
            }
        }
    }

    /// Run simplex iterations with the current objective row.
    fn run(&mut self, allow_artificial_entering: bool) -> RunResult {
        let enter_limit = if allow_artificial_entering {
            self.total_cols
        } else {
            self.artificial_start
        };
        let m = self.rows.len();
        let bland_after = 20 * (m + self.total_cols) + 1000;
        let mut iter = 0usize;
        loop {
            iter += 1;
            let use_bland = iter > bland_after;
            // Entering column: most negative reduced cost (Dantzig) or the
            // first negative (Bland).
            let mut enter = None;
            let mut best = -EPS;
            for j in 0..enter_limit {
                let c = self.obj[j];
                if c < best {
                    enter = Some(j);
                    if use_bland {
                        break;
                    }
                    best = c;
                }
            }
            let Some(enter) = enter else {
                return RunResult::Optimal;
            };
            // Ratio test: leaving row with minimal rhs/col over positive col
            // entries; Bland tie-break on basis index.
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for i in 0..m {
                let a = self.rows[i][enter];
                if a > EPS {
                    let ratio = self.rows[i][self.total_cols] / a;
                    let better = ratio < best_ratio - EPS
                        || (ratio < best_ratio + EPS
                            && leave.is_some_and(|l| self.basis[i] < self.basis[l]));
                    if better {
                        best_ratio = ratio;
                        leave = Some(i);
                    }
                }
            }
            let Some(leave) = leave else {
                return RunResult::Unbounded;
            };
            self.pivot(leave, enter);
        }
    }

    fn pivot(&mut self, row: usize, col: usize) {
        let piv = self.rows[row][col];
        debug_assert!(piv.abs() > 1e-12, "pivot on ~zero element");
        let inv = 1.0 / piv;
        for v in self.rows[row].iter_mut() {
            *v *= inv;
        }
        // Snapshot the (now normalized) pivot row to eliminate it elsewhere.
        let prow = self.rows[row].clone();
        for (i, r) in self.rows.iter_mut().enumerate() {
            if i == row {
                continue;
            }
            let f = r[col];
            if f.abs() > EPS {
                for (v, p) in r.iter_mut().zip(prow.iter()) {
                    *v -= f * p;
                }
                r[col] = 0.0; // kill residual rounding noise
            }
        }
        let f = self.obj[col];
        if f.abs() > EPS {
            for (v, p) in self.obj.iter_mut().zip(prow.iter()) {
                *v -= f * p;
            }
            self.obj[col] = 0.0;
        }
        self.basis[row] = col;
    }
}

enum RunResult {
    Optimal,
    Unbounded,
}

fn flip(r: Relation) -> Relation {
    match r {
        Relation::Le => Relation::Ge,
        Relation::Ge => Relation::Le,
        Relation::Eq => Relation::Eq,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve(p: &LpProblem) -> LpSolution {
        match p.solve() {
            LpOutcome::Optimal(s) => s,
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn textbook_2var() {
        // max 3x + 5y; x ≤ 4; 2y ≤ 12; 3x + 2y ≤ 18 → x=2, y=6, z=36.
        let mut p = LpProblem::maximize(2);
        p.set_objective(0, 3.0).set_objective(1, 5.0);
        p.add_constraint(vec![(0, 1.0)], Relation::Le, 4.0);
        p.add_constraint(vec![(1, 2.0)], Relation::Le, 12.0);
        p.add_constraint(vec![(0, 3.0), (1, 2.0)], Relation::Le, 18.0);
        let s = solve(&p);
        assert!((s.objective - 36.0).abs() < 1e-7);
        assert!((s.x[0] - 2.0).abs() < 1e-7);
        assert!((s.x[1] - 6.0).abs() < 1e-7);
    }

    #[test]
    fn equality_constraint() {
        // max x + y; x + y = 5; x ≤ 3 → z = 5.
        let mut p = LpProblem::maximize(2);
        p.set_objective(0, 1.0).set_objective(1, 1.0);
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], Relation::Eq, 5.0);
        p.add_constraint(vec![(0, 1.0)], Relation::Le, 3.0);
        let s = solve(&p);
        assert!((s.objective - 5.0).abs() < 1e-7);
        assert!((s.x[0] + s.x[1] - 5.0).abs() < 1e-7);
    }

    #[test]
    fn ge_constraint_needs_phase1() {
        // max −x (i.e. min x); x ≥ 7 → x = 7.
        let mut p = LpProblem::maximize(1);
        p.set_objective(0, -1.0);
        p.add_constraint(vec![(0, 1.0)], Relation::Ge, 7.0);
        let s = solve(&p);
        assert!((s.x[0] - 7.0).abs() < 1e-7);
        assert!((s.objective + 7.0).abs() < 1e-7);
    }

    #[test]
    fn infeasible_detected() {
        // x ≤ 1 and x ≥ 2.
        let mut p = LpProblem::maximize(1);
        p.set_objective(0, 1.0);
        p.add_constraint(vec![(0, 1.0)], Relation::Le, 1.0);
        p.add_constraint(vec![(0, 1.0)], Relation::Ge, 2.0);
        assert_eq!(p.solve(), LpOutcome::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut p = LpProblem::maximize(2);
        p.set_objective(0, 1.0);
        p.add_constraint(vec![(1, 1.0)], Relation::Le, 1.0);
        assert_eq!(p.solve(), LpOutcome::Unbounded);
    }

    #[test]
    fn negative_rhs_is_normalized() {
        // −x ≤ −3 ⇔ x ≥ 3; max −x → x = 3.
        let mut p = LpProblem::maximize(1);
        p.set_objective(0, -1.0);
        p.add_constraint(vec![(0, -1.0)], Relation::Le, -3.0);
        let s = solve(&p);
        assert!((s.x[0] - 3.0).abs() < 1e-7);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Classic degenerate corner: multiple constraints active at origin.
        let mut p = LpProblem::maximize(3);
        p.set_objective(0, 0.75)
            .set_objective(1, -150.0)
            .set_objective(2, 0.02);
        p.add_constraint(vec![(0, 0.25), (1, -60.0), (2, -0.04)], Relation::Le, 0.0);
        p.add_constraint(vec![(0, 0.5), (1, -90.0), (2, -0.02)], Relation::Le, 0.0);
        p.add_constraint(vec![(2, 1.0)], Relation::Le, 1.0);
        let s = solve(&p);
        // Known optimum of (a variant of) Beale's example family: finite.
        assert!(s.objective.is_finite());
        assert!(s.objective >= -1e-9);
    }

    #[test]
    fn beale_degenerate_example_terminates() {
        // Beale's classic cycling LP: max ¾x₁ − 150x₂ + 1/50·x₃ − 6x₄ s.t.
        // ¼x₁ − 60x₂ − 1/25·x₃ + 9x₄ ≤ 0, ½x₁ − 90x₂ − 1/50·x₃ + 3x₄ ≤ 0,
        // x₃ ≤ 1. Pure Dantzig pricing cycles forever at the degenerate
        // origin; the Bland fallback must terminate at z = 1/20,
        // x = (1/25, 0, 1, 0).
        let mut p = LpProblem::maximize(4);
        p.set_objective(0, 0.75)
            .set_objective(1, -150.0)
            .set_objective(2, 0.02)
            .set_objective(3, -6.0);
        p.add_constraint(
            vec![(0, 0.25), (1, -60.0), (2, -0.04), (3, 9.0)],
            Relation::Le,
            0.0,
        );
        p.add_constraint(
            vec![(0, 0.5), (1, -90.0), (2, -0.02), (3, 3.0)],
            Relation::Le,
            0.0,
        );
        p.add_constraint(vec![(2, 1.0)], Relation::Le, 1.0);
        let s = solve(&p);
        assert!(
            (s.objective - 0.05).abs() < 1e-7,
            "objective {}",
            s.objective
        );
        assert!((s.x[0] - 0.04).abs() < 1e-6);
        assert!((s.x[2] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn duplicate_indices_accumulate() {
        // (x + x) ≤ 4 ⇒ x ≤ 2.
        let mut p = LpProblem::maximize(1);
        p.set_objective(0, 1.0);
        p.add_constraint(vec![(0, 1.0), (0, 1.0)], Relation::Le, 4.0);
        let s = solve(&p);
        assert!((s.x[0] - 2.0).abs() < 1e-7);
    }

    #[test]
    fn transportation_small() {
        // 2 jobs × 2 types; v = [[3, 1], [2, 2]]; W = [1, 1]; caps = [1, 1];
        // Σ_r Y_jr ≤ 1. Optimum: J0→type0, J1→type1, z = 5.
        let mut p = LpProblem::maximize(4); // Y00 Y01 Y10 Y11
        for (i, v) in [3.0, 1.0, 2.0, 2.0].into_iter().enumerate() {
            p.set_objective(i, v);
        }
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], Relation::Le, 1.0);
        p.add_constraint(vec![(2, 1.0), (3, 1.0)], Relation::Le, 1.0);
        p.add_constraint(vec![(0, 1.0), (2, 1.0)], Relation::Le, 1.0);
        p.add_constraint(vec![(1, 1.0), (3, 1.0)], Relation::Le, 1.0);
        let s = solve(&p);
        assert!((s.objective - 5.0).abs() < 1e-7);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_index() {
        let mut p = LpProblem::maximize(1);
        p.add_constraint(vec![(3, 1.0)], Relation::Le, 1.0);
    }
}

#[cfg(test)]
mod randomized_tests {
    use super::*;
    use hadar_rng::{Rng, StdRng};

    /// Box-constrained LPs have the closed-form optimum Σ max(c_i, 0)·u_i;
    /// the simplex must find it exactly.
    #[test]
    fn box_lp_matches_closed_form() {
        let mut rng = StdRng::seed_from_u64(0xC3);
        for case in 0..64 {
            let n = rng.gen_range_usize(1..8);
            let spec: Vec<(f64, f64)> = (0..n)
                .map(|_| (rng.gen_range_f64(-5.0..5.0), rng.gen_range_f64(0.1..10.0)))
                .collect();
            let mut p = LpProblem::maximize(n);
            for (i, &(c, u)) in spec.iter().enumerate() {
                p.set_objective(i, c);
                p.add_constraint(vec![(i, 1.0)], Relation::Le, u);
            }
            let s = match p.solve() {
                LpOutcome::Optimal(s) => s,
                other => panic!("case {case}: not optimal: {other:?}"),
            };
            let expect: f64 = spec.iter().map(|&(c, u)| c.max(0.0) * u).sum();
            assert!(
                (s.objective - expect).abs() < 1e-6 * (1.0 + expect.abs()),
                "case {case}: got {} expected {expect}",
                s.objective
            );
            // Solution is feasible for the box.
            for (i, &(_, u)) in spec.iter().enumerate() {
                assert!(s.x[i] >= -1e-9 && s.x[i] <= u + 1e-9, "case {case}");
            }
        }
    }

    /// Random ≤-constrained LPs with non-negative RHS are always feasible
    /// (x = 0); any returned optimum must satisfy every constraint and
    /// dominate the origin's objective value of 0 when some c > 0.
    #[test]
    fn random_le_lp_solution_is_feasible() {
        let mut rng = StdRng::seed_from_u64(0xD4);
        for case in 0..64 {
            let num_rows = rng.gen_range_usize(1..6);
            let rows: Vec<(Vec<f64>, f64)> = (0..num_rows)
                .map(|_| {
                    (
                        (0..3).map(|_| rng.gen_range_f64(0.0..4.0)).collect(),
                        rng.gen_range_f64(0.5..20.0),
                    )
                })
                .collect();
            let c: Vec<f64> = (0..3).map(|_| rng.gen_range_f64(0.0..3.0)).collect();
            let mut p = LpProblem::maximize(3);
            for (i, &ci) in c.iter().enumerate() {
                p.set_objective(i, ci);
            }
            let mut bounded = false;
            for (coeffs, rhs) in &rows {
                // A row with all-positive coefficients bounds the region.
                if coeffs.iter().all(|&a| a > 0.1) {
                    bounded = true;
                }
                let sparse: Vec<(usize, f64)> =
                    coeffs.iter().enumerate().map(|(i, &a)| (i, a)).collect();
                p.add_constraint(sparse, Relation::Le, *rhs);
            }
            // Ensure boundedness so the solve must return Optimal.
            if !bounded {
                p.add_constraint(vec![(0, 1.0), (1, 1.0), (2, 1.0)], Relation::Le, 50.0);
            }
            let s = match p.solve() {
                LpOutcome::Optimal(s) => s,
                other => panic!("case {case}: not optimal: {other:?}"),
            };
            assert!(s.objective >= -1e-9, "case {case}");
            for (coeffs, rhs) in &rows {
                let lhs: f64 = coeffs.iter().zip(&s.x).map(|(a, x)| a * x).sum();
                assert!(
                    lhs <= rhs + 1e-6,
                    "case {case}: constraint violated: {lhs} > {rhs}"
                );
            }
            for x in &s.x {
                assert!(*x >= -1e-9, "case {case}");
            }
        }
    }
}

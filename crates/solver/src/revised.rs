//! Sparse revised simplex with basis reuse (warm-starting).
//!
//! The dense tableau in [`crate::simplex`] is O((m+n)²) in memory and per
//! pivot, which is exactly what hurts at the Fig. 7 scalability scales
//! (1024–2048 jobs ⇒ thousands of rows and columns). The Gavel policy LPs
//! are extremely sparse — each structural column has at most three nonzeros
//! (a job-budget row, a capacity row, and for the max-min LP a normalized
//! throughput row) — so this module implements the *revised* simplex:
//!
//! * the constraint matrix is kept as sparse columns and never modified;
//! * the basis inverse is represented in product form (an eta file). A
//!   *reinversion* rebuilds it from scratch by Gaussian elimination over the
//!   basic columns in sparsity order (singletons first), which is an LU
//!   factorization in product form; each subsequent pivot appends one eta
//!   vector, and the file is rebuilt every [`REFACTOR_EVERY`] pivots to
//!   bound fill-in and rounding drift;
//! * pricing is Dantzig (steepest reduced cost) with a switch to Bland's
//!   rule after an iteration budget, mirroring the dense solver's
//!   anti-cycling strategy.
//!
//! **Warm-starting.** [`LpProblem::solve_warm`] accepts a [`Basis`] — the
//! set of structural/slack columns that were basic at a previous optimum —
//! and starts from it instead of the all-slack basis. A stale basis (after
//! the problem was perturbed) is first *completed* (missing rows get their
//! slack or an artificial), then *repaired* if primal-infeasible using the
//! classic single-artificial-column technique: one extra column `a₀ = −Σ
//! a_B[i]` over the deficient rows enters the basis in a single pivot,
//! restoring feasibility, and a short phase 1 drives it back to zero. For
//! the Gavel LPs an arrival/completion therefore costs a handful of pivots
//! instead of a full two-phase resolve. Any numerical trouble falls back to
//! a cold revised solve, and a (never observed) stall falls back to the
//! dense solver, so the result classification always matches
//! [`LpProblem::solve`].

use crate::simplex::{LpOutcome, LpProblem, LpSolution, Relation};

const EPS: f64 = 1e-9;
/// Largest standard-form dimension (`num_vars + num_constraints`) at which a
/// *cold* solve prefers the dense tableau over the revised simplex. Measured
/// on the Gavel LPs of BENCH_solver.json: the revised cold path is ~0.27× the
/// dense solver at 32 jobs (131 dims) and ~0.77× at 128 jobs (515 dims) —
/// the eta-file bookkeeping dominates while the tableau still fits in cache —
/// with the crossover landing a little above the 512-job point (2051 dims).
/// Warm-started solves always take the revised path: basis reuse beats both
/// cold solvers at every size.
const COLD_DENSE_MAX_DIM: usize = 2048;
/// Pivots between eta-file rebuilds.
const REFACTOR_EVERY: usize = 96;
/// Smallest acceptable pivot magnitude inside a factorization.
const PIV_TOL: f64 = 1e-8;
/// Residual infeasibility below which phase 1 declares success.
const FEAS_TOL: f64 = 1e-7;

/// An LP basis: the set of structural and slack columns that were basic at
/// an optimum, exported by [`LpProblem::solve_revised_with_basis`] /
/// [`LpProblem::solve_warm`] and accepted back by the latter.
///
/// Column ids use the solver's standard form: `0..num_vars` are the
/// problem's structural variables and [`Basis::slack_col`]`(num_vars, i)`
/// is the slack/surplus of constraint row `i`. The set is a *hint*:
/// `solve_warm` drops ids that no longer exist, completes missing rows, and
/// repairs infeasibility, so callers may freely remap a basis onto a
/// perturbed problem (see `gavel::GavelBasisCache`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Basis {
    cols: Vec<usize>,
    num_vars: usize,
    num_rows: usize,
}

impl Basis {
    /// Build a basis hint from raw standard-form column ids for a problem
    /// with `num_vars` structural variables and `num_rows` constraints.
    /// Ids are deduplicated; out-of-range ids are dropped at solve time.
    pub fn from_columns(mut cols: Vec<usize>, num_vars: usize, num_rows: usize) -> Self {
        cols.sort_unstable();
        cols.dedup();
        Self {
            cols,
            num_vars,
            num_rows,
        }
    }

    /// The basic column ids (sorted, deduplicated).
    pub fn columns(&self) -> &[usize] {
        &self.cols
    }

    /// Structural-variable count of the problem this basis came from.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Constraint-row count of the problem this basis came from.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Standard-form column id of the slack/surplus of constraint `row` in
    /// a problem with `num_vars` structural variables.
    pub fn slack_col(num_vars: usize, row: usize) -> usize {
        num_vars + row
    }
}

impl LpProblem {
    /// Solve with the sparse revised simplex (cold start). Same outcome
    /// classification and optimal objective as [`LpProblem::solve`].
    pub fn solve_revised(&self) -> LpOutcome {
        self.solve_revised_with_basis().0
    }

    /// Solve with the sparse revised simplex and also return the optimal
    /// basis for warm-starting a future, possibly perturbed, solve. The
    /// basis is `None` unless the outcome is optimal.
    pub fn solve_revised_with_basis(&self) -> (LpOutcome, Option<Basis>) {
        let mut s = Rev::build(self);
        match s.solve_from(None) {
            Some(out) => out,
            // A stall can only arise from tolerance pathologies; the dense
            // solver is the terminating fallback of last resort.
            None => (self.solve(), None),
        }
    }

    /// Whether a cold (no warm basis) solve of this problem should use the
    /// dense tableau instead of the revised simplex: true for problems of at
    /// most [`COLD_DENSE_MAX_DIM`] standard-form dimensions, where the dense
    /// solver's cache-friendly pivots beat the eta-file overhead.
    pub fn cold_solve_prefers_dense(&self) -> bool {
        self.num_vars() + self.num_constraints() <= COLD_DENSE_MAX_DIM
    }

    /// Size-adaptive cold solve: dense tableau below the
    /// [`COLD_DENSE_MAX_DIM`] crossover, sparse revised simplex above it.
    /// Either way the optimal basis comes back in revised-solver ids, ready
    /// to seed [`LpProblem::solve_warm`] on the next round.
    pub fn solve_cold_with_basis(&self) -> (LpOutcome, Option<Basis>) {
        if self.cold_solve_prefers_dense() {
            self.solve_dense_with_basis()
        } else {
            self.solve_revised_with_basis()
        }
    }

    /// Solve warm-started from `warm`, the (possibly stale) optimal basis
    /// of a previous round. Falls back to a cold revised solve when the
    /// hint is unusable. Returns the outcome plus the new optimal basis.
    pub fn solve_warm(&self, warm: &Basis) -> (LpOutcome, Option<Basis>) {
        let mut s = Rev::build(self);
        if warm.num_rows == s.m && warm.num_vars == s.n {
            if let Some(out) = s.solve_from(Some(&warm.cols)) {
                return out;
            }
        }
        self.solve_revised_with_basis()
    }
}

/// One elementary (eta) transformation: pivoting column `w` at row `p`
/// maps `w ↦ e_p`. `off` holds the off-pivot nonzeros of `w`, `piv = w_p`.
struct Eta {
    p: usize,
    piv: f64,
    off: Vec<(usize, f64)>,
}

/// Product-form representation of the basis inverse.
#[derive(Default)]
struct EtaFile {
    etas: Vec<Eta>,
}

impl EtaFile {
    /// `v ← E_k ⋯ E_1 v` (forward transformation, `B⁻¹ v`).
    fn ftran(&self, v: &mut [f64]) {
        for e in &self.etas {
            let t = v[e.p] / e.piv;
            if t == 0.0 {
                continue;
            }
            v[e.p] = t;
            for &(i, w) in &e.off {
                v[i] -= w * t;
            }
        }
    }

    /// `y ← (E_k ⋯ E_1)ᵀ y` applied right-to-left (backward transformation,
    /// `B⁻ᵀ y`).
    fn btran(&self, y: &mut [f64]) {
        for e in self.etas.iter().rev() {
            let mut dot = 0.0;
            for &(i, w) in &e.off {
                dot += w * y[i];
            }
            y[e.p] = (y[e.p] - dot) / e.piv;
        }
    }

    fn push(&mut self, p: usize, w: &[f64]) {
        let off: Vec<(usize, f64)> = w
            .iter()
            .enumerate()
            .filter(|&(i, &x)| i != p && x.abs() > 1e-13)
            .map(|(i, &x)| (i, x))
            .collect();
        self.etas.push(Eta { p, piv: w[p], off });
    }
}

/// The revised-simplex working state for one `LpProblem`.
struct Rev {
    m: usize,
    /// Structural columns.
    n: usize,
    /// Sparse structural columns (row, coeff), rows normalized to rhs ≥ 0.
    cols: Vec<Vec<(usize, f64)>>,
    /// Slack coefficient per row: +1 (≤), −1 (≥), 0 (=, no slack).
    slack_sign: Vec<f64>,
    /// Normalized right-hand side (all ≥ 0 after row flips).
    b: Vec<f64>,
    /// Phase-2 objective over structural columns.
    obj: Vec<f64>,
    /// Basic column id per row.
    basis: Vec<usize>,
    /// Membership flag per column id (structural + slack + artificial + repair).
    in_basis: Vec<bool>,
    /// Basic variable values per row (`B⁻¹ b`).
    xb: Vec<f64>,
    file: EtaFile,
    pivots_since_refactor: usize,
    /// The single-artificial repair column (dense), if one was created.
    repair: Option<Vec<f64>>,
}

#[derive(Clone, Copy, PartialEq)]
enum Phase {
    One,
    Two,
}

enum Run {
    Optimal,
    Unbounded,
    /// Iteration cap hit — numerically stuck; caller falls back.
    Stalled,
}

impl Rev {
    /// Column-id layout: `0..n` structural, `n..n+m` slack of row `i`,
    /// `n+m..n+2m` artificial of row `i`, `n+2m` the repair column.
    fn slack_id(&self, row: usize) -> usize {
        self.n + row
    }
    fn art_id(&self, row: usize) -> usize {
        self.n + self.m + row
    }
    fn repair_id(&self) -> usize {
        self.n + 2 * self.m
    }

    fn build(p: &LpProblem) -> Self {
        let m = p.num_constraints();
        let n = p.num_vars();
        let mut cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        let mut slack_sign = vec![0.0; m];
        let mut b = vec![0.0; m];
        for (i, c) in p.constraint_rows().iter().enumerate() {
            let sign = if c.rhs < 0.0 { -1.0 } else { 1.0 };
            let rel = if c.rhs < 0.0 {
                flip(c.relation)
            } else {
                c.relation
            };
            b[i] = sign * c.rhs;
            slack_sign[i] = match rel {
                Relation::Le => 1.0,
                Relation::Ge => -1.0,
                Relation::Eq => 0.0,
            };
            for &(j, a) in &c.coeffs {
                cols[j].push((i, sign * a));
            }
        }
        // Merge duplicate row entries within each column and drop zeros.
        for col in &mut cols {
            col.sort_unstable_by_key(|&(i, _)| i);
            let mut merged: Vec<(usize, f64)> = Vec::with_capacity(col.len());
            for &(i, a) in col.iter() {
                match merged.last_mut() {
                    Some(last) if last.0 == i => last.1 += a,
                    _ => merged.push((i, a)),
                }
            }
            merged.retain(|&(_, a)| a != 0.0);
            *col = merged;
        }
        Self {
            m,
            n,
            cols,
            slack_sign,
            b,
            obj: p.objective_coeffs().to_vec(),
            basis: Vec::new(),
            in_basis: vec![false; n + 2 * m + 1],
            xb: vec![0.0; m],
            file: EtaFile::default(),
            pivots_since_refactor: 0,
            repair: None,
        }
    }

    /// Nonzeros of standard-form column `id` in original (untransformed)
    /// row space, written into the dense scratch `out` (assumed zeroed);
    /// returns the touched rows for re-zeroing.
    fn scatter_col(&self, id: usize, out: &mut [f64]) -> Vec<usize> {
        if id < self.n {
            for &(i, a) in &self.cols[id] {
                out[i] = a;
            }
            self.cols[id].iter().map(|&(i, _)| i).collect()
        } else if id < self.n + self.m {
            let row = id - self.n;
            out[row] = self.slack_sign[row];
            vec![row]
        } else if id < self.n + 2 * self.m {
            let row = id - self.n - self.m;
            out[row] = 1.0;
            vec![row]
        } else {
            let r = self.repair.as_ref().expect("repair column materialized");
            let mut touched = Vec::new();
            for (i, &a) in r.iter().enumerate() {
                if a != 0.0 {
                    out[i] = a;
                    touched.push(i);
                }
            }
            touched
        }
    }

    fn col_nnz(&self, id: usize) -> usize {
        if id < self.n {
            self.cols[id].len()
        } else if id <= self.n + 2 * self.m {
            if id == self.repair_id() {
                self.m
            } else {
                1
            }
        } else {
            usize::MAX
        }
    }

    /// Does column `id` exist in this problem? (Slack ids of `=` rows do
    /// not.)
    fn col_exists(&self, id: usize) -> bool {
        if id < self.n {
            true
        } else if id < self.n + self.m {
            self.slack_sign[id - self.n] != 0.0
        } else {
            false // artificial/repair ids are never accepted as hints
        }
    }

    /// Rebuild the eta file by Gaussian elimination over `want` (a basis
    /// hint), completing unpivoted rows with their slack, then artificials.
    /// Returns `false` on a numerical dead end (never observed; callers
    /// fall back).
    fn refactor(&mut self, want: &[usize]) -> bool {
        self.file = EtaFile::default();
        self.pivots_since_refactor = 0;
        for f in self.in_basis.iter_mut() {
            *f = false;
        }
        self.basis = vec![usize::MAX; self.m];
        let mut row_done = vec![false; self.m];
        let mut rows_left = self.m;

        // Sparsity-ordered elimination: fewest original nonzeros first
        // keeps fill-in minimal (slack singletons generate trivial etas).
        let mut order: Vec<usize> = want
            .iter()
            .copied()
            .filter(|&c| !self.in_basis[c])
            .collect();
        order.sort_by_key(|&c| (self.col_nnz(c), c));

        let mut w = vec![0.0; self.m];
        let pivot_one =
            |this: &mut Self, id: usize, w: &mut Vec<f64>, row_done: &mut Vec<bool>| -> bool {
                let touched = this.scatter_col(id, w);
                this.file.ftran(w);
                let mut best = PIV_TOL;
                let mut p = usize::MAX;
                for (i, &wi) in w.iter().enumerate() {
                    if !row_done[i] && wi.abs() > best {
                        best = wi.abs();
                        p = i;
                    }
                }
                let ok = p != usize::MAX;
                if ok {
                    this.file.push(p, w);
                    this.basis[p] = id;
                    this.in_basis[id] = true;
                    row_done[p] = true;
                }
                // Re-zero the dense scratch (ftran may have spread fill).
                for v in w.iter_mut() {
                    *v = 0.0;
                }
                let _ = touched;
                ok
            };

        for id in order {
            if self.in_basis[id] {
                continue;
            }
            if pivot_one(self, id, &mut w, &mut row_done) {
                rows_left -= 1;
            }
        }
        if rows_left > 0 {
            // Complete with slacks of the undone rows, then artificials.
            let undone: Vec<usize> = (0..self.m).filter(|&i| !row_done[i]).collect();
            for &i in &undone {
                let s = self.slack_id(i);
                if self.col_exists(s)
                    && !self.in_basis[s]
                    && pivot_one(self, s, &mut w, &mut row_done)
                {
                    rows_left -= 1;
                }
            }
            for i in 0..self.m {
                if rows_left == 0 {
                    break;
                }
                let a = self.art_id(i);
                if !self.in_basis[a] && pivot_one(self, a, &mut w, &mut row_done) {
                    rows_left -= 1;
                }
            }
        }
        rows_left == 0
    }

    /// `B⁻¹ b` under the current factorization.
    fn recompute_xb(&mut self) {
        let mut v = self.b.clone();
        self.file.ftran(&mut v);
        self.xb = v;
    }

    /// Is column id an artificial or the repair column?
    fn is_artificial(&self, id: usize) -> bool {
        id >= self.n + self.m
    }

    /// Phase-dependent cost of column `id`.
    fn cost(&self, id: usize, phase: Phase) -> f64 {
        match phase {
            Phase::One => {
                if self.is_artificial(id) {
                    -1.0
                } else {
                    0.0
                }
            }
            Phase::Two => {
                if id < self.n {
                    self.obj[id]
                } else {
                    0.0
                }
            }
        }
    }

    /// Simplex iterations with the given phase objective: Dantzig pricing,
    /// Bland fallback after a budget, artificial-eviction-priority ratio
    /// test, periodic refactorization.
    fn run(&mut self, phase: Phase) -> Run {
        let bland_after = 20 * (self.m + self.n) + 1000;
        let hard_cap = 8 * bland_after + 10_000;
        let mut w = vec![0.0; self.m];
        let mut y = vec![0.0; self.m];
        for iter in 1..=hard_cap {
            let use_bland = iter > bland_after;
            // y = B⁻ᵀ c_B.
            for (yi, &bcol) in y.iter_mut().zip(&self.basis) {
                *yi = self.cost(bcol, phase);
            }
            self.file.btran(&mut y);
            // Price nonbasic structural + slack columns; artificials never
            // re-enter (matching the dense solver).
            let mut enter = usize::MAX;
            let mut best = EPS;
            'price: for id in 0..self.n + self.m {
                if self.in_basis[id] || !self.col_exists(id) {
                    continue;
                }
                let mut dot = 0.0;
                if id < self.n {
                    for &(i, a) in &self.cols[id] {
                        dot += a * y[i];
                    }
                } else {
                    dot = self.slack_sign[id - self.n] * y[id - self.n];
                }
                let d = self.cost(id, phase) - dot;
                if d > best {
                    enter = id;
                    if use_bland {
                        break 'price;
                    }
                    best = d;
                }
            }
            if enter == usize::MAX {
                return Run::Optimal;
            }
            // w = B⁻¹ a_enter.
            for v in w.iter_mut() {
                *v = 0.0;
            }
            self.scatter_col(enter, &mut w);
            self.file.ftran(&mut w);
            // Ratio test. Basic artificials sitting at ~0 leave first (a
            // zero-length pivot on any |w_i| > tol): they can never
            // re-enter, so this terminates, and it prevents an artificial
            // from drifting positive mid-phase-2.
            let mut leave = usize::MAX;
            let mut best_ratio = f64::INFINITY;
            let mut evict = usize::MAX;
            for (i, &wi) in w.iter().enumerate().take(self.m) {
                if self.is_artificial(self.basis[i])
                    && self.xb[i] <= FEAS_TOL
                    && wi.abs() > FEAS_TOL
                {
                    if evict == usize::MAX || self.basis[i] < self.basis[evict] {
                        evict = i;
                    }
                    continue;
                }
                if wi > EPS {
                    let ratio = self.xb[i].max(0.0) / wi;
                    let better = ratio < best_ratio - EPS
                        || (ratio < best_ratio + EPS
                            && leave != usize::MAX
                            && self.basis[i] < self.basis[leave]);
                    if leave == usize::MAX || better {
                        best_ratio = ratio;
                        leave = i;
                    }
                }
            }
            let (leave, theta) = if evict != usize::MAX {
                (evict, 0.0)
            } else if leave != usize::MAX {
                (leave, best_ratio)
            } else {
                return Run::Unbounded;
            };
            if w[leave].abs() < PIV_TOL {
                // Numerically unusable pivot: rebuild the factorization and
                // retry the whole iteration from fresh data.
                let want = self.basis.clone();
                if !self.refactor(&want) {
                    return Run::Stalled;
                }
                self.recompute_xb();
                continue;
            }
            // Update basic values and append the eta.
            for (i, &wi) in w.iter().enumerate().take(self.m) {
                if i != leave {
                    self.xb[i] -= theta * wi;
                    if self.xb[i] < 0.0 && self.xb[i] > -FEAS_TOL {
                        self.xb[i] = 0.0;
                    }
                }
            }
            self.xb[leave] = theta;
            self.in_basis[self.basis[leave]] = false;
            self.in_basis[enter] = true;
            self.basis[leave] = enter;
            self.file.push(leave, &w);
            self.pivots_since_refactor += 1;
            if self.pivots_since_refactor >= REFACTOR_EVERY {
                let want = self.basis.clone();
                if !self.refactor(&want) {
                    return Run::Stalled;
                }
                self.recompute_xb();
            }
        }
        Run::Stalled
    }

    /// Full solve from an optional basis hint (`None` = cold all-slack
    /// start). Returns `None` on a stall so the caller can fall back.
    fn solve_from(&mut self, hint: Option<&[usize]>) -> Option<(LpOutcome, Option<Basis>)> {
        let start: Vec<usize> = match hint {
            Some(cols) => cols
                .iter()
                .copied()
                .filter(|&c| self.col_exists(c))
                .collect(),
            None => (0..self.m)
                .map(|i| {
                    if self.slack_sign[i] > 0.0 {
                        self.slack_id(i)
                    } else {
                        self.art_id(i)
                    }
                })
                .collect(),
        };
        if !self.refactor(&start) {
            return None; // numerically stuck; caller falls back
        }
        self.recompute_xb();

        // Primal-infeasible start (stale warm basis): one repair pivot with
        // the single-artificial column a₀ = −Σ_{deficient rows} a_B[i]
        // restores xb ≥ 0, then phase 1 drives the repair column to zero.
        if self.xb.iter().any(|&v| v < -FEAS_TOL) {
            let deficient: Vec<usize> = (0..self.m).filter(|&i| self.xb[i] < -FEAS_TOL).collect();
            let mut a0 = vec![0.0; self.m];
            let mut scratch = vec![0.0; self.m];
            for &i in &deficient {
                let touched = self.scatter_col(self.basis[i], &mut scratch);
                for &t in &touched {
                    a0[t] -= scratch[t];
                    scratch[t] = 0.0;
                }
            }
            self.repair = Some(a0);
            let rid = self.repair_id();
            let mut w = vec![0.0; self.m];
            self.scatter_col(rid, &mut w);
            self.file.ftran(&mut w);
            // Pivot at the most negative row; θ = xb[p]/w[p] > 0.
            let mut p = usize::MAX;
            for &i in &deficient {
                if p == usize::MAX || self.xb[i] < self.xb[p] {
                    p = i;
                }
            }
            if w[p].abs() < PIV_TOL {
                return None; // repair column degenerate under roundoff
            }
            let theta = self.xb[p] / w[p];
            for (i, &wi) in w.iter().enumerate().take(self.m) {
                if i != p {
                    self.xb[i] -= theta * wi;
                }
            }
            self.xb[p] = theta;
            self.in_basis[self.basis[p]] = false;
            self.in_basis[rid] = true;
            self.basis[p] = rid;
            self.file.push(p, &w);
            if self.xb.iter().any(|&v| v < -FEAS_TOL) {
                return None; // roundoff defeated the repair; fall back
            }
        }

        // Phase 1 only if an artificial/repair column is basic at a
        // meaningful value.
        let needs_phase1 =
            (0..self.m).any(|i| self.is_artificial(self.basis[i]) && self.xb[i] > FEAS_TOL);
        if needs_phase1 {
            match self.run(Phase::One) {
                Run::Optimal => {}
                Run::Unbounded => return Some((LpOutcome::Infeasible, None)),
                Run::Stalled => return None,
            }
            let infeas: f64 = (0..self.m)
                .filter(|&i| self.is_artificial(self.basis[i]))
                .map(|i| self.xb[i].max(0.0))
                .sum();
            if infeas > FEAS_TOL {
                return Some((LpOutcome::Infeasible, None));
            }
        }

        match self.run(Phase::Two) {
            Run::Optimal => {
                let mut x = vec![0.0; self.n];
                for (i, &bcol) in self.basis.iter().enumerate() {
                    if bcol < self.n {
                        x[bcol] = self.xb[i].max(0.0);
                    }
                }
                let objective = x.iter().zip(&self.obj).map(|(xi, ci)| xi * ci).sum();
                let basis_cols: Vec<usize> = self
                    .basis
                    .iter()
                    .copied()
                    .filter(|&c| c < self.n + self.m)
                    .collect();
                let basis = Basis::from_columns(basis_cols, self.n, self.m);
                Some((LpOutcome::Optimal(LpSolution { x, objective }), Some(basis)))
            }
            Run::Unbounded => Some((LpOutcome::Unbounded, None)),
            Run::Stalled => None,
        }
    }
}

fn flip(r: Relation) -> Relation {
    match r {
        Relation::Le => Relation::Ge,
        Relation::Ge => Relation::Le,
        Relation::Eq => Relation::Eq,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve(p: &LpProblem) -> LpSolution {
        match p.solve_revised() {
            LpOutcome::Optimal(s) => s,
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn textbook_2var() {
        let mut p = LpProblem::maximize(2);
        p.set_objective(0, 3.0).set_objective(1, 5.0);
        p.add_constraint(vec![(0, 1.0)], Relation::Le, 4.0);
        p.add_constraint(vec![(1, 2.0)], Relation::Le, 12.0);
        p.add_constraint(vec![(0, 3.0), (1, 2.0)], Relation::Le, 18.0);
        let s = solve(&p);
        assert!((s.objective - 36.0).abs() < 1e-7);
        assert!((s.x[0] - 2.0).abs() < 1e-7);
        assert!((s.x[1] - 6.0).abs() < 1e-7);
    }

    #[test]
    fn equality_and_ge_need_phase1() {
        let mut p = LpProblem::maximize(2);
        p.set_objective(0, 1.0).set_objective(1, 1.0);
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], Relation::Eq, 5.0);
        p.add_constraint(vec![(0, 1.0)], Relation::Le, 3.0);
        let s = solve(&p);
        assert!((s.objective - 5.0).abs() < 1e-7);

        let mut q = LpProblem::maximize(1);
        q.set_objective(0, -1.0);
        q.add_constraint(vec![(0, 1.0)], Relation::Ge, 7.0);
        let s = solve(&q);
        assert!((s.x[0] - 7.0).abs() < 1e-7);
    }

    #[test]
    fn infeasible_and_unbounded_detected() {
        let mut p = LpProblem::maximize(1);
        p.set_objective(0, 1.0);
        p.add_constraint(vec![(0, 1.0)], Relation::Le, 1.0);
        p.add_constraint(vec![(0, 1.0)], Relation::Ge, 2.0);
        assert_eq!(p.solve_revised(), LpOutcome::Infeasible);

        let mut q = LpProblem::maximize(2);
        q.set_objective(0, 1.0);
        q.add_constraint(vec![(1, 1.0)], Relation::Le, 1.0);
        assert_eq!(q.solve_revised(), LpOutcome::Unbounded);
    }

    #[test]
    fn negative_rhs_normalized() {
        let mut p = LpProblem::maximize(1);
        p.set_objective(0, -1.0);
        p.add_constraint(vec![(0, -1.0)], Relation::Le, -3.0);
        let s = solve(&p);
        assert!((s.x[0] - 3.0).abs() < 1e-7);
    }

    #[test]
    fn warm_start_same_problem_is_exact() {
        let mut p = LpProblem::maximize(2);
        p.set_objective(0, 3.0).set_objective(1, 5.0);
        p.add_constraint(vec![(0, 1.0)], Relation::Le, 4.0);
        p.add_constraint(vec![(1, 2.0)], Relation::Le, 12.0);
        p.add_constraint(vec![(0, 3.0), (1, 2.0)], Relation::Le, 18.0);
        let (out, basis) = p.solve_revised_with_basis();
        let basis = basis.expect("optimal basis");
        let obj = out.optimal().unwrap().objective;
        let (out2, basis2) = p.solve_warm(&basis);
        assert!((out2.optimal().unwrap().objective - obj).abs() < 1e-9);
        assert!(basis2.is_some());
    }

    #[test]
    fn warm_start_after_rhs_perturbation() {
        // Tighten a constraint so the old basis is primal-infeasible; the
        // repair pivot + short phase 1 must still reach the true optimum.
        let build = |cap: f64| {
            let mut p = LpProblem::maximize(2);
            p.set_objective(0, 3.0).set_objective(1, 5.0);
            p.add_constraint(vec![(0, 1.0)], Relation::Le, 4.0);
            p.add_constraint(vec![(1, 2.0)], Relation::Le, 12.0);
            p.add_constraint(vec![(0, 3.0), (1, 2.0)], Relation::Le, cap);
            p
        };
        let (_, basis) = build(18.0).solve_revised_with_basis();
        let basis = basis.unwrap();
        let perturbed = build(6.0);
        let cold = perturbed.solve_revised().optimal().unwrap().objective;
        let (warm_out, _) = perturbed.solve_warm(&basis);
        let warm = warm_out.optimal().unwrap().objective;
        assert!(
            (warm - cold).abs() < 1e-7,
            "warm {warm} vs cold {cold} after perturbation"
        );
    }

    #[test]
    fn warm_start_with_garbage_hint_falls_back() {
        let mut p = LpProblem::maximize(2);
        p.set_objective(0, 1.0).set_objective(1, 1.0);
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], Relation::Le, 2.0);
        // Hint with out-of-range and duplicate ids from a "bigger" problem.
        let garbage = Basis::from_columns(vec![0, 0, 1, 7, 99], 2, 1);
        let (out, basis) = p.solve_warm(&garbage);
        assert!((out.optimal().unwrap().objective - 2.0).abs() < 1e-7);
        assert!(basis.is_some());
    }

    #[test]
    fn beale_degenerate_example_terminates() {
        // Beale's classic cycling LP: max ¾x₁ − 150x₂ + 1/50·x₃ − 6x₄;
        // ¼x₁ − 60x₂ − 1/25·x₃ + 9x₄ ≤ 0; ½x₁ − 90x₂ − 1/50·x₃ + 3x₄ ≤ 0;
        // x₃ ≤ 1. Dantzig pricing cycles forever without an anti-cycling
        // rule; the optimum is z = 1/20 at x = (1/25, 0, 1, 0).
        let mut p = LpProblem::maximize(4);
        p.set_objective(0, 0.75)
            .set_objective(1, -150.0)
            .set_objective(2, 0.02)
            .set_objective(3, -6.0);
        p.add_constraint(
            vec![(0, 0.25), (1, -60.0), (2, -0.04), (3, 9.0)],
            Relation::Le,
            0.0,
        );
        p.add_constraint(
            vec![(0, 0.5), (1, -90.0), (2, -0.02), (3, 3.0)],
            Relation::Le,
            0.0,
        );
        p.add_constraint(vec![(2, 1.0)], Relation::Le, 1.0);
        let s = solve(&p);
        assert!(
            (s.objective - 0.05).abs() < 1e-7,
            "objective {}",
            s.objective
        );
    }

    #[test]
    fn cold_solver_selection_crosses_over_at_dim_threshold() {
        // The size-adaptive cold solve is pinned to the standard-form
        // dimension count num_vars + num_constraints: at or below 2048 the
        // dense tableau wins (BENCH_solver.json: revised-cold is 0.27× dense
        // at 32 jobs), above it the revised simplex takes over.
        let build = |vars: usize, rows: usize| {
            let mut p = LpProblem::maximize(vars);
            for i in 0..rows {
                p.add_constraint(vec![(i % vars, 1.0)], Relation::Le, 1.0);
            }
            p
        };
        assert!(build(10, 10).cold_solve_prefers_dense());
        assert!(build(1024, 1024).cold_solve_prefers_dense()); // exactly 2048
        assert!(!build(1025, 1024).cold_solve_prefers_dense()); // 2049
        assert!(!build(3072, 1037).cold_solve_prefers_dense());
    }

    #[test]
    fn dense_cold_solve_exports_a_warm_startable_basis() {
        // A small Gavel-shaped LP takes the dense path cold; its exported
        // basis must (a) match the revised solver's optimum and (b) be
        // directly usable by solve_warm after an RHS perturbation.
        let build = |cap: f64| {
            let mut p = LpProblem::maximize(6); // 3 jobs × 2 types
            for (i, v) in [3.0, 1.0, 2.0, 2.0, 1.0, 4.0].into_iter().enumerate() {
                p.set_objective(i, v);
            }
            for j in 0..3 {
                p.add_constraint(vec![(2 * j, 1.0), (2 * j + 1, 1.0)], Relation::Le, 1.0);
            }
            p.add_constraint(vec![(0, 1.0), (2, 1.0), (4, 1.0)], Relation::Le, cap);
            p.add_constraint(vec![(1, 1.0), (3, 1.0), (5, 1.0)], Relation::Le, cap);
            p
        };
        let p = build(2.0);
        assert!(p.cold_solve_prefers_dense());
        let (out, basis) = p.solve_cold_with_basis();
        let dense_obj = out.optimal().unwrap().objective;
        let revised_obj = p.solve_revised().optimal().unwrap().objective;
        assert!((dense_obj - revised_obj).abs() < 1e-7);
        let basis = basis.expect("dense cold solve must export a basis");

        let perturbed = build(1.0);
        let cold = perturbed.solve_revised().optimal().unwrap().objective;
        let (warm_out, warm_basis) = perturbed.solve_warm(&basis);
        let warm = warm_out.optimal().unwrap().objective;
        assert!(
            (warm - cold).abs() < 1e-7,
            "warm-from-dense {warm} vs cold {cold}"
        );
        assert!(warm_basis.is_some());
    }

    #[test]
    fn larger_transportation_matches_dense() {
        // Gavel-shaped instance big enough to force several refactorizations.
        let mut state = 0x5EEDu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let jobs = 120;
        let types = 3;
        let mut p = LpProblem::maximize(jobs * types);
        for j in 0..jobs {
            for r in 0..types {
                p.set_objective(j * types + r, 1.0 + 30.0 * next());
            }
        }
        for j in 0..jobs {
            let coeffs = (0..types).map(|r| (j * types + r, 1.0)).collect();
            p.add_constraint(coeffs, Relation::Le, 1.0);
        }
        for r in 0..types {
            let coeffs = (0..jobs)
                .map(|j| (j * types + r, 1.0 + (j % 4) as f64))
                .collect();
            p.add_constraint(coeffs, Relation::Le, (jobs / 3) as f64);
        }
        let dense = p.solve().optimal().unwrap().objective;
        let revised = p.solve_revised().optimal().unwrap().objective;
        assert!(
            (dense - revised).abs() < 1e-6 * (1.0 + dense.abs()),
            "dense {dense} vs revised {revised}"
        );
    }
}

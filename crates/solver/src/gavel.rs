//! The Gavel policy LPs.
//!
//! Gavel models its heterogeneity-aware policies as optimization problems
//! over an allocation matrix `Y[j][r] ∈ [0,1]`: the fraction of wall-clock
//! time job `j` should spend running on GPU type `r`. Feasibility requires
//!
//! * `Σ_r Y[j][r] ≤ 1` for every job (a job runs on at most one type at a
//!   time), and
//! * `Σ_j W_j · Y[j][r] ≤ C_r` for every type (time-averaged GPU demand at
//!   most the type's capacity).
//!
//! Two objectives are provided:
//!
//! * [`max_total_throughput_allocation`] — maximize
//!   `Σ_j Σ_r Y[j][r] · X_j^r · W_j`, total cluster effective throughput.
//!   This is the configuration the paper uses when comparing against Hadar
//!   ("keeping the objective of its optimization problem similar to ours").
//! * [`max_min_allocation`] — maximize the minimum over jobs of the
//!   *normalized* throughput `Σ_r Y[j][r]·X_j^r / max_r X_j^r`
//!   (Gavel's LAS/fairness policy).
//!
//! Both are solved with the sparse revised simplex (`crate::revised`) and
//! support **cross-round warm-starting**: the `_warm` variants thread a
//! [`GavelBasisCache`] that remembers which columns were basic at the last
//! optimum *by job identity*, so after an arrival or completion the basis
//! is remapped onto the new problem and re-optimized in a handful of
//! pivots instead of a full two-phase resolve.

use std::collections::HashMap;
use std::fmt;

use crate::revised::Basis;
use crate::simplex::{LpProblem, Relation};

/// Input to a Gavel LP: one row per job, one column per GPU type.
#[derive(Debug, Clone)]
pub struct GavelLpInput {
    /// `throughput[j][r]` = `X_j^r` iterations/sec per worker. All rows must
    /// have the same length `R`.
    pub throughput: Vec<Vec<f64>>,
    /// Gang size `W_j` per job.
    pub gang: Vec<u32>,
    /// Cluster capacity `C_r` per type.
    pub capacity: Vec<u32>,
}

/// Why a Gavel LP could not be built or solved. Returned instead of
/// aborting, so a malformed instance fails one scheduling decision rather
/// than a whole sweep cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GavelLpError {
    /// `gang` has a different length than `throughput`.
    GangLengthMismatch {
        /// Number of throughput rows (jobs).
        jobs: usize,
        /// Length of the gang vector.
        gang_len: usize,
    },
    /// A throughput row disagrees with `capacity.len()`.
    ThroughputRowMismatch {
        /// Offending row index.
        row: usize,
        /// Its length.
        len: usize,
        /// Expected length (number of GPU types).
        expected: usize,
    },
    /// A throughput entry is NaN or infinite.
    NonFiniteThroughput {
        /// Row (job) index.
        row: usize,
        /// Column (GPU type) index.
        col: usize,
    },
    /// The job-key list passed to a `_warm` variant has the wrong length.
    JobKeyLengthMismatch {
        /// Number of jobs in the input.
        jobs: usize,
        /// Number of keys supplied.
        keys: usize,
    },
    /// The LP solver did not return an optimum (cannot happen for
    /// well-formed inputs: `Y = 0` is feasible and the region is bounded).
    SolverFailed(&'static str),
}

impl fmt::Display for GavelLpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GavelLpError::GangLengthMismatch { jobs, gang_len } => {
                write!(f, "gang length {gang_len} != {jobs} throughput rows")
            }
            GavelLpError::ThroughputRowMismatch { row, len, expected } => {
                write!(
                    f,
                    "throughput row {row} has length {len}, expected {expected}"
                )
            }
            GavelLpError::NonFiniteThroughput { row, col } => {
                write!(f, "throughput[{row}][{col}] is not finite")
            }
            GavelLpError::JobKeyLengthMismatch { jobs, keys } => {
                write!(f, "{keys} job keys supplied for {jobs} jobs")
            }
            GavelLpError::SolverFailed(what) => write!(f, "LP solver failed: {what}"),
        }
    }
}

impl std::error::Error for GavelLpError {}

impl GavelLpInput {
    /// Check shape and finiteness; returns `(num_jobs, num_types)`.
    pub fn validate(&self) -> Result<(usize, usize), GavelLpError> {
        let j = self.throughput.len();
        if self.gang.len() != j {
            return Err(GavelLpError::GangLengthMismatch {
                jobs: j,
                gang_len: self.gang.len(),
            });
        }
        let r = self.capacity.len();
        for (row, t) in self.throughput.iter().enumerate() {
            if t.len() != r {
                return Err(GavelLpError::ThroughputRowMismatch {
                    row,
                    len: t.len(),
                    expected: r,
                });
            }
            if let Some(col) = t.iter().position(|x| !x.is_finite()) {
                return Err(GavelLpError::NonFiniteThroughput { row, col });
            }
        }
        Ok((j, r))
    }
}

/// Which policy LP a cached basis belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CachePolicy {
    TotalThroughput,
    MaxMin,
}

/// A basic column of a Gavel LP, identified structurally so it survives
/// job arrivals/completions (which renumber rows and variables).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Label {
    /// Allocation variable `Y[job][r]`.
    Y { job: u64, r: usize },
    /// Slack of the per-job time budget `Σ_r Y[j][r] ≤ 1`.
    JobSlack { job: u64 },
    /// Slack of the per-type capacity row.
    CapSlack { r: usize },
    /// The max-min objective variable `z`.
    Z,
    /// Surplus of a job's normalized-throughput row (max-min LP only).
    MinSurplus { job: u64 },
}

/// Optimal-basis memory for one Gavel policy, keyed by job identity.
///
/// Thread it through consecutive [`max_total_throughput_allocation_warm`]
/// (or [`max_min_allocation_warm`]) calls: columns belonging to departed
/// jobs are dropped on remap, new jobs start from their slack columns, and
/// the solver repairs any residual infeasibility. A cache built for one
/// policy is ignored by the other.
#[derive(Debug, Clone)]
pub struct GavelBasisCache {
    policy: CachePolicy,
    labels: Vec<Label>,
}

impl GavelBasisCache {
    /// Number of remembered basic columns (diagnostic).
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

/// Column/row layout of one concrete Gavel LP instance, used to translate
/// between standard-form column ids and job-identity labels.
struct Layout<'k> {
    keys: &'k [u64],
    num_types: usize,
    /// Variable-id offset of `Y[0][0]` (1 for max-min, 0 otherwise).
    y_off: usize,
    /// Total structural variables.
    n: usize,
    /// Eligible jobs (max-min Ge rows), as indices into `keys`; empty for
    /// the total-throughput LP.
    eligible: Vec<usize>,
}

impl<'k> Layout<'k> {
    fn num_jobs(&self) -> usize {
        self.keys.len()
    }

    /// Row index of job `j`'s time-budget constraint.
    fn job_row(&self, j: usize) -> usize {
        self.eligible.len() + j
    }

    /// Row index of type `r`'s capacity constraint.
    fn cap_row(&self, r: usize) -> usize {
        self.eligible.len() + self.num_jobs() + r
    }

    fn num_rows(&self) -> usize {
        self.eligible.len() + self.num_jobs() + self.num_types
    }

    /// Map a cached label onto this instance's standard-form column ids;
    /// `None` for labels that no longer exist (departed job, shrunk types).
    fn col_of(
        &self,
        label: Label,
        job_index: &HashMap<u64, usize>,
        eligible_pos: &HashMap<u64, usize>,
    ) -> Option<usize> {
        match label {
            Label::Y { job, r } => {
                let &j = job_index.get(&job)?;
                (r < self.num_types).then(|| self.y_off + j * self.num_types + r)
            }
            Label::JobSlack { job } => {
                let &j = job_index.get(&job)?;
                Some(Basis::slack_col(self.n, self.job_row(j)))
            }
            Label::CapSlack { r } => {
                (r < self.num_types).then(|| Basis::slack_col(self.n, self.cap_row(r)))
            }
            Label::Z => (self.y_off == 1).then_some(0),
            Label::MinSurplus { job } => {
                let &pos = eligible_pos.get(&job)?;
                Some(Basis::slack_col(self.n, pos))
            }
        }
    }

    /// Translate an optimal basis back into labels for the next round.
    fn labels_of(&self, basis: &Basis) -> Vec<Label> {
        let nt = self.num_types;
        basis
            .columns()
            .iter()
            .filter_map(|&c| {
                if c < self.n {
                    if self.y_off == 1 && c == 0 {
                        Some(Label::Z)
                    } else {
                        let v = c - self.y_off;
                        Some(Label::Y {
                            job: self.keys[v / nt],
                            r: v % nt,
                        })
                    }
                } else {
                    let row = c - self.n;
                    if row < self.eligible.len() {
                        Some(Label::MinSurplus {
                            job: self.keys[self.eligible[row]],
                        })
                    } else if row < self.eligible.len() + self.num_jobs() {
                        Some(Label::JobSlack {
                            job: self.keys[row - self.eligible.len()],
                        })
                    } else {
                        let r = row - self.eligible.len() - self.num_jobs();
                        (r < nt).then_some(Label::CapSlack { r })
                    }
                }
            })
            .collect()
    }

    fn to_basis(&self, cache: &GavelBasisCache) -> Basis {
        let job_index: HashMap<u64, usize> =
            self.keys.iter().enumerate().map(|(i, &k)| (k, i)).collect();
        let eligible_pos: HashMap<u64, usize> = self
            .eligible
            .iter()
            .enumerate()
            .map(|(pos, &j)| (self.keys[j], pos))
            .collect();
        let cols = cache
            .labels
            .iter()
            .filter_map(|&l| self.col_of(l, &job_index, &eligible_pos))
            .collect();
        Basis::from_columns(cols, self.n, self.num_rows())
    }
}

/// Solve the max-total-effective-throughput LP. Returns `Y` as a `J×R`
/// matrix, or a [`GavelLpError`] on malformed input.
pub fn max_total_throughput_allocation(
    input: &GavelLpInput,
) -> Result<Vec<Vec<f64>>, GavelLpError> {
    let keys = identity_keys(input.throughput.len());
    max_total_throughput_allocation_warm(input, &keys, None).map(|(y, _)| y)
}

/// Warm-startable variant of [`max_total_throughput_allocation`].
///
/// `job_keys[j]` is a stable identity for job `j` (e.g. its `JobId`),
/// `cache` the basis from a previous call. Returns the allocation plus the
/// refreshed cache to pass next time.
pub fn max_total_throughput_allocation_warm(
    input: &GavelLpInput,
    job_keys: &[u64],
    cache: Option<&GavelBasisCache>,
) -> Result<(Vec<Vec<f64>>, GavelBasisCache), GavelLpError> {
    let (num_jobs, num_types) = input.validate()?;
    check_keys(num_jobs, job_keys)?;
    let layout = Layout {
        keys: job_keys,
        num_types,
        y_off: 0,
        n: num_jobs * num_types,
        eligible: Vec::new(),
    };
    if num_jobs == 0 {
        return Ok((
            Vec::new(),
            GavelBasisCache {
                policy: CachePolicy::TotalThroughput,
                labels: Vec::new(),
            },
        ));
    }
    let var = |j: usize, r: usize| j * num_types + r;
    let mut p = LpProblem::maximize(num_jobs * num_types);
    for (j, row) in input.throughput.iter().enumerate() {
        for (r, &x) in row.iter().enumerate() {
            p.set_objective(var(j, r), x * input.gang[j] as f64);
        }
    }
    add_feasibility_constraints(&mut p, input, var, num_jobs, num_types);
    solve_with_layout(&p, &layout, cache, CachePolicy::TotalThroughput, |s| {
        let mut y = vec![vec![0.0; num_types]; num_jobs];
        for (j, row) in y.iter_mut().enumerate() {
            for (r, v) in row.iter_mut().enumerate() {
                *v = s[var(j, r)].clamp(0.0, 1.0);
            }
        }
        y
    })
}

/// Solve the max-min-normalized-throughput LP (Gavel's fairness policy).
/// Jobs with an all-zero throughput row are excluded from the min (they can
/// never progress) but still appear in the output with a zero row.
pub fn max_min_allocation(input: &GavelLpInput) -> Result<Vec<Vec<f64>>, GavelLpError> {
    let keys = identity_keys(input.throughput.len());
    max_min_allocation_warm(input, &keys, None).map(|(y, _)| y)
}

/// Warm-startable variant of [`max_min_allocation`]; see
/// [`max_total_throughput_allocation_warm`] for the cache contract.
pub fn max_min_allocation_warm(
    input: &GavelLpInput,
    job_keys: &[u64],
    cache: Option<&GavelBasisCache>,
) -> Result<(Vec<Vec<f64>>, GavelBasisCache), GavelLpError> {
    let (num_jobs, num_types) = input.validate()?;
    check_keys(num_jobs, job_keys)?;
    if num_jobs == 0 {
        return Ok((
            Vec::new(),
            GavelBasisCache {
                policy: CachePolicy::MaxMin,
                labels: Vec::new(),
            },
        ));
    }
    let eligible: Vec<usize> = input
        .throughput
        .iter()
        .enumerate()
        .filter(|(_, row)| row.iter().copied().fold(0.0, f64::max) > 0.0)
        .map(|(j, _)| j)
        .collect();
    let layout = Layout {
        keys: job_keys,
        num_types,
        y_off: 1,
        n: 1 + num_jobs * num_types,
        eligible,
    };
    // Variable 0 is z; Y[j][r] follows.
    let var = |j: usize, r: usize| 1 + j * num_types + r;
    let mut p = LpProblem::maximize(1 + num_jobs * num_types);
    p.set_objective(0, 1.0);
    for &j in &layout.eligible {
        let row = &input.throughput[j];
        let norm = row.iter().copied().fold(0.0, f64::max);
        // Σ_r Y_jr · X_jr / norm − z ≥ 0.
        let mut coeffs: Vec<(usize, f64)> = row
            .iter()
            .enumerate()
            .map(|(r, &x)| (var(j, r), x / norm))
            .collect();
        coeffs.push((0, -1.0));
        p.add_constraint(coeffs, Relation::Ge, 0.0);
    }
    add_feasibility_constraints(&mut p, input, var, num_jobs, num_types);
    solve_with_layout(&p, &layout, cache, CachePolicy::MaxMin, |s| {
        let mut y = vec![vec![0.0; num_types]; num_jobs];
        for (j, row) in y.iter_mut().enumerate() {
            for (r, v) in row.iter_mut().enumerate() {
                *v = s[var(j, r)].clamp(0.0, 1.0);
            }
        }
        y
    })
}

fn identity_keys(n: usize) -> Vec<u64> {
    (0..n as u64).collect()
}

fn check_keys(num_jobs: usize, keys: &[u64]) -> Result<(), GavelLpError> {
    if keys.len() != num_jobs {
        return Err(GavelLpError::JobKeyLengthMismatch {
            jobs: num_jobs,
            keys: keys.len(),
        });
    }
    Ok(())
}

fn solve_with_layout(
    p: &LpProblem,
    layout: &Layout<'_>,
    cache: Option<&GavelBasisCache>,
    policy: CachePolicy,
    extract: impl FnOnce(&[f64]) -> Vec<Vec<f64>>,
) -> Result<(Vec<Vec<f64>>, GavelBasisCache), GavelLpError> {
    let warm = cache
        .filter(|c| c.policy == policy && !c.is_empty())
        .map(|c| layout.to_basis(c));
    let (outcome, basis) = match warm {
        Some(b) => p.solve_warm(&b),
        // Cold rounds (first solve, or an invalidated cache) pick the
        // solver by problem size: dense tableau for small LPs, revised
        // above the crossover. Both export a revised-id basis, so the next
        // round warm-starts either way.
        None => p.solve_cold_with_basis(),
    };
    let s = outcome
        .optimal()
        .ok_or(GavelLpError::SolverFailed("Gavel policy LP has no optimum"))?;
    let labels = basis.map(|b| layout.labels_of(&b)).unwrap_or_default();
    Ok((extract(&s.x), GavelBasisCache { policy, labels }))
}

fn add_feasibility_constraints(
    p: &mut LpProblem,
    input: &GavelLpInput,
    var: impl Fn(usize, usize) -> usize,
    num_jobs: usize,
    num_types: usize,
) {
    // Per-job time budget.
    for j in 0..num_jobs {
        let coeffs = (0..num_types).map(|r| (var(j, r), 1.0)).collect();
        p.add_constraint(coeffs, Relation::Le, 1.0);
    }
    // Per-type capacity.
    for r in 0..num_types {
        let coeffs = (0..num_jobs)
            .map(|j| (var(j, r), input.gang[j] as f64))
            .collect();
        p.add_constraint(coeffs, Relation::Le, input.capacity[r] as f64);
    }
}

/// Check `Y` against the feasibility constraints (used by tests and debug
/// assertions). Returns the maximum violation. Tolerates malformed shapes
/// (it reports violations only over rows/columns that exist).
pub fn feasibility_violation(input: &GavelLpInput, y: &[Vec<f64>]) -> f64 {
    let num_types = input.capacity.len();
    let mut worst = 0.0f64;
    for row in y {
        let s: f64 = row.iter().sum();
        worst = worst.max(s - 1.0);
        for &v in row.iter().take(num_types) {
            worst = worst.max(-v);
        }
    }
    for (r, &cap) in input.capacity.iter().enumerate() {
        let demand: f64 = y
            .iter()
            .zip(&input.gang)
            .map(|(row, &g)| row.get(r).copied().unwrap_or(0.0) * g as f64)
            .sum();
        worst = worst.max(demand - cap as f64);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> GavelLpInput {
        // 2 jobs, 2 types. Job 0 loves type 0 (10 vs 1); job 1 indifferent.
        GavelLpInput {
            throughput: vec![vec![10.0, 1.0], vec![4.0, 4.0]],
            gang: vec![1, 1],
            capacity: vec![1, 1],
        }
    }

    #[test]
    fn total_throughput_prefers_affinity() {
        let y = max_total_throughput_allocation(&toy()).unwrap();
        // Optimal: job0 fully on type0 (10), job1 fully on type1 (4) → 14.
        let total: f64 = (0..2)
            .map(|j| {
                (0..2)
                    .map(|r| y[j][r] * toy().throughput[j][r])
                    .sum::<f64>()
            })
            .sum();
        assert!((total - 14.0).abs() < 1e-6, "total={total}, y={y:?}");
        assert!(feasibility_violation(&toy(), &y) < 1e-7);
    }

    #[test]
    fn max_min_is_fair() {
        let input = toy();
        let y = max_min_allocation(&input).unwrap();
        assert!(feasibility_violation(&input, &y) < 1e-7);
        // Normalized throughputs of both jobs should be equal-ish and high.
        let norm = |j: usize| -> f64 {
            let m = input.throughput[j].iter().copied().fold(0.0, f64::max);
            (0..2)
                .map(|r| y[j][r] * input.throughput[j][r])
                .sum::<f64>()
                / m
        };
        let (n0, n1) = (norm(0), norm(1));
        assert!(n0 > 0.5 && n1 > 0.5, "n0={n0} n1={n1}");
        // Max-min optimum equalizes the minimum: both can reach 1.0 here
        // (job0 on type0 full time, job1 on type1 full time).
        assert!((n0.min(n1) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn capacity_binds_with_contention() {
        // 3 single-GPU jobs all wanting the single type-0 GPU.
        let input = GavelLpInput {
            throughput: vec![vec![10.0], vec![10.0], vec![10.0]],
            gang: vec![1, 1, 1],
            capacity: vec![1],
        };
        let y = max_total_throughput_allocation(&input).unwrap();
        let demand: f64 = y.iter().map(|row| row[0]).sum();
        assert!(demand <= 1.0 + 1e-7);
        // Total throughput = 10 × total time share = 10.
        let total: f64 = y.iter().map(|row| row[0] * 10.0).sum();
        assert!((total - 10.0).abs() < 1e-6);
    }

    #[test]
    fn gang_size_weights_capacity() {
        // One 4-GPU job on a 2-GPU type can use at most half its time.
        let input = GavelLpInput {
            throughput: vec![vec![8.0]],
            gang: vec![4],
            capacity: vec![2],
        };
        let y = max_total_throughput_allocation(&input).unwrap();
        assert!((y[0][0] - 0.5).abs() < 1e-6, "y={y:?}");
    }

    #[test]
    fn empty_input() {
        let input = GavelLpInput {
            throughput: vec![],
            gang: vec![],
            capacity: vec![2, 2],
        };
        assert_eq!(max_total_throughput_allocation(&input), Ok(vec![]));
        assert_eq!(max_min_allocation(&input), Ok(vec![]));
    }

    #[test]
    fn malformed_input_is_an_error_not_a_panic() {
        let bad_gang = GavelLpInput {
            throughput: vec![vec![1.0], vec![2.0]],
            gang: vec![1],
            capacity: vec![1],
        };
        assert_eq!(
            max_total_throughput_allocation(&bad_gang),
            Err(GavelLpError::GangLengthMismatch {
                jobs: 2,
                gang_len: 1
            })
        );
        let ragged = GavelLpInput {
            throughput: vec![vec![1.0, 2.0], vec![3.0]],
            gang: vec![1, 1],
            capacity: vec![2, 2],
        };
        assert_eq!(
            max_min_allocation(&ragged),
            Err(GavelLpError::ThroughputRowMismatch {
                row: 1,
                len: 1,
                expected: 2
            })
        );
        let nan = GavelLpInput {
            throughput: vec![vec![1.0, f64::NAN]],
            gang: vec![1],
            capacity: vec![1, 1],
        };
        assert_eq!(
            max_total_throughput_allocation(&nan),
            Err(GavelLpError::NonFiniteThroughput { row: 0, col: 1 })
        );
        assert!(GavelLpError::SolverFailed("x").to_string().contains("x"));
    }

    #[test]
    fn max_min_skips_unrunnable_job() {
        let input = GavelLpInput {
            throughput: vec![vec![0.0, 0.0], vec![5.0, 5.0]],
            gang: vec![1, 1],
            capacity: vec![1, 1],
        };
        let y = max_min_allocation(&input).unwrap();
        // Job 0 cannot run; job 1 should still get a full share.
        let t1: f64 = (0..2).map(|r| y[1][r] * 5.0).sum();
        assert!(t1 > 4.9, "y={y:?}");
    }

    #[test]
    fn paper_scale_lp_solves() {
        // 60-GPU cluster, 48 mixed jobs: representative of a round of the
        // paper's simulation. Must solve quickly and feasibly.
        let mut throughput = Vec::new();
        let mut gang = Vec::new();
        for j in 0..48 {
            let base = 2.0 + (j % 7) as f64;
            throughput.push(vec![base * 10.0, base * 5.0, base]);
            gang.push([1u32, 2, 4, 8][j % 4]);
        }
        let input = GavelLpInput {
            throughput,
            gang,
            capacity: vec![20, 20, 20],
        };
        let y = max_total_throughput_allocation(&input).unwrap();
        assert!(feasibility_violation(&input, &y) < 1e-6);
        let ymin = max_min_allocation(&input).unwrap();
        assert!(feasibility_violation(&input, &ymin) < 1e-6);
    }

    /// Simulate Gavel rounds: jobs arrive and depart, the basis cache is
    /// threaded through, and every warm solve must match a cold solve.
    #[test]
    fn warm_cache_tracks_job_churn() {
        let mk = |ids: &[u64]| -> (GavelLpInput, Vec<u64>) {
            (
                GavelLpInput {
                    throughput: ids
                        .iter()
                        .map(|&i| {
                            vec![
                                5.0 + (i % 7) as f64,
                                2.0 + (i % 3) as f64,
                                1.0 + (i % 2) as f64,
                            ]
                        })
                        .collect(),
                    gang: ids.iter().map(|&i| 1 + (i % 4) as u32).collect(),
                    capacity: vec![4, 4, 4],
                },
                ids.to_vec(),
            )
        };
        let rounds: Vec<Vec<u64>> = vec![
            vec![1, 2, 3, 4, 5],
            vec![1, 2, 3, 4, 5, 6],    // arrival
            vec![1, 3, 4, 5, 6],       // completion
            vec![3, 4, 5, 6, 7, 8, 9], // churn
            vec![9],                   // mass exodus
            vec![9, 10, 11, 12],       // refill
        ];
        let mut cache: Option<GavelBasisCache> = None;
        for (round, ids) in rounds.iter().enumerate() {
            let (input, keys) = mk(ids);
            let (y, next) =
                max_total_throughput_allocation_warm(&input, &keys, cache.as_ref()).unwrap();
            let cold = max_total_throughput_allocation(&input).unwrap();
            let obj_warm = crate::greedy::total_throughput_objective(&input, &y);
            let obj_cold = crate::greedy::total_throughput_objective(&input, &cold);
            assert!(feasibility_violation(&input, &y) < 1e-6, "round {round}");
            assert!(
                (obj_warm - obj_cold).abs() < 1e-6 * (1.0 + obj_cold.abs()),
                "round {round}: warm {obj_warm} vs cold {obj_cold}"
            );
            cache = Some(next);
        }
    }

    /// The max-min cache must survive churn too, including jobs whose
    /// normalized-throughput row appears/disappears.
    #[test]
    fn warm_cache_max_min_churn() {
        let mk = |ids: &[u64]| -> GavelLpInput {
            GavelLpInput {
                throughput: ids
                    .iter()
                    .map(|&i| {
                        if i == 4 {
                            vec![0.0, 0.0] // unrunnable: excluded from the min
                        } else {
                            vec![3.0 + (i % 5) as f64, 1.0 + (i % 2) as f64]
                        }
                    })
                    .collect(),
                gang: ids.iter().map(|_| 1).collect(),
                capacity: vec![3, 3],
            }
        };
        let rounds: Vec<Vec<u64>> = vec![
            vec![1, 2, 3],
            vec![1, 2, 3, 4],
            vec![2, 3, 4, 5],
            vec![2, 5],
        ];
        let mut cache: Option<GavelBasisCache> = None;
        let floor = |input: &GavelLpInput, y: &[Vec<f64>]| -> f64 {
            input
                .throughput
                .iter()
                .enumerate()
                .filter(|(_, row)| row.iter().copied().fold(0.0, f64::max) > 0.0)
                .map(|(j, row)| {
                    let norm = row.iter().copied().fold(0.0, f64::max);
                    row.iter()
                        .enumerate()
                        .map(|(r, &x)| y[j][r] * x)
                        .sum::<f64>()
                        / norm
                })
                .fold(f64::INFINITY, f64::min)
        };
        for (round, ids) in rounds.iter().enumerate() {
            let input = mk(ids);
            let (y, next) = max_min_allocation_warm(&input, ids, cache.as_ref()).unwrap();
            let cold = max_min_allocation(&input).unwrap();
            assert!(feasibility_violation(&input, &y) < 1e-6, "round {round}");
            assert!(
                (floor(&input, &y) - floor(&input, &cold)).abs() < 1e-6,
                "round {round}: warm floor {} vs cold floor {}",
                floor(&input, &y),
                floor(&input, &cold)
            );
            cache = Some(next);
        }
    }

    #[test]
    fn mismatched_cache_policy_is_ignored() {
        let input = toy();
        let keys = vec![10, 20];
        let (_, total_cache) = max_total_throughput_allocation_warm(&input, &keys, None).unwrap();
        // Feeding the total-throughput cache to max-min must not corrupt it.
        let (y, _) = max_min_allocation_warm(&input, &keys, Some(&total_cache)).unwrap();
        assert!(feasibility_violation(&input, &y) < 1e-7);
    }
}

#[cfg(test)]
mod randomized_tests {
    use super::*;
    use hadar_rng::{Rng, StdRng};

    fn random_instance(rng: &mut StdRng, max_jobs: usize, types: usize, lo: f64) -> GavelLpInput {
        let jobs = rng.gen_range_usize(1..max_jobs.max(2));
        GavelLpInput {
            throughput: (0..jobs)
                .map(|_| (0..types).map(|_| rng.gen_range_f64(lo..30.0)).collect())
                .collect(),
            gang: (0..jobs)
                .map(|_| rng.gen_range_usize(1..5) as u32)
                .collect(),
            capacity: (0..types)
                .map(|_| rng.gen_range_usize(1..8) as u32)
                .collect(),
        }
    }

    /// On random Gavel instances the exact LP allocation is feasible and
    /// never worse than the density greedy (which is itself feasible).
    #[test]
    fn exact_dominates_greedy_and_both_feasible() {
        let mut rng = StdRng::seed_from_u64(0xA1);
        for case in 0..32 {
            let input = random_instance(&mut rng, 10, 3, 0.0);
            let exact = max_total_throughput_allocation(&input)
                .unwrap_or_else(|e| panic!("case {case}: LP failed: {e}"));
            let greedy = crate::greedy::greedy_total_throughput(&input).expect("valid input");
            assert!(feasibility_violation(&input, &exact) < 1e-6, "case {case}");
            assert!(feasibility_violation(&input, &greedy) < 1e-6, "case {case}");
            let oe = crate::greedy::total_throughput_objective(&input, &exact);
            let og = crate::greedy::total_throughput_objective(&input, &greedy);
            assert!(oe >= og - 1e-6, "case {case}: exact {oe} below greedy {og}");
        }
    }

    /// Max-min allocations are feasible and (weakly) raise the minimum
    /// normalized throughput compared to the total-throughput optimum.
    #[test]
    fn max_min_raises_the_floor() {
        let mut rng = StdRng::seed_from_u64(0xB2);
        for case in 0..32 {
            let jobs = rng.gen_range_usize(2..6);
            let input = GavelLpInput {
                throughput: (0..jobs)
                    .map(|_| (0..2).map(|_| rng.gen_range_f64(0.5..30.0)).collect())
                    .collect(),
                gang: (0..jobs)
                    .map(|_| rng.gen_range_usize(1..3) as u32)
                    .collect(),
                capacity: vec![2, 2],
            };
            let fair = max_min_allocation(&input).expect("feasible");
            let total = max_total_throughput_allocation(&input).expect("feasible");
            assert!(feasibility_violation(&input, &fair) < 1e-6, "case {case}");
            let floor = |y: &Vec<Vec<f64>>| -> f64 {
                input
                    .throughput
                    .iter()
                    .enumerate()
                    .map(|(j, row)| {
                        let norm = row.iter().copied().fold(0.0, f64::max);
                        row.iter()
                            .enumerate()
                            .map(|(r, &x)| y[j][r] * x)
                            .sum::<f64>()
                            / norm
                    })
                    .fold(f64::INFINITY, f64::min)
            };
            assert!(
                floor(&fair) >= floor(&total) - 1e-6,
                "case {case}: fair floor {} below total-throughput floor {}",
                floor(&fair),
                floor(&total)
            );
        }
    }

    /// Randomized churn: warm-started objective always matches cold.
    #[test]
    fn warm_matches_cold_under_random_churn() {
        let mut rng = StdRng::seed_from_u64(0xC7);
        let mut ids: Vec<u64> = (0..8).collect();
        let mut next_id = 8u64;
        let mut cache: Option<GavelBasisCache> = None;
        for round in 0..24 {
            // Random churn: drop up to 2, add up to 2.
            for _ in 0..rng.gen_range_usize(0..3) {
                if ids.len() > 1 {
                    let k = rng.gen_range_usize(0..ids.len());
                    ids.remove(k);
                }
            }
            for _ in 0..rng.gen_range_usize(0..3) {
                ids.push(next_id);
                next_id += 1;
            }
            let input = GavelLpInput {
                throughput: ids
                    .iter()
                    .map(|&i| {
                        let mut h = StdRng::seed_from_u64(i * 977);
                        (0..3).map(|_| h.gen_range_f64(0.5..25.0)).collect()
                    })
                    .collect(),
                gang: ids.iter().map(|&i| 1 + (i % 4) as u32).collect(),
                capacity: vec![5, 5, 5],
            };
            let (y, nc) =
                max_total_throughput_allocation_warm(&input, &ids, cache.as_ref()).unwrap();
            let cold = max_total_throughput_allocation(&input).unwrap();
            let ow = crate::greedy::total_throughput_objective(&input, &y);
            let oc = crate::greedy::total_throughput_objective(&input, &cold);
            assert!(feasibility_violation(&input, &y) < 1e-6, "round {round}");
            assert!(
                (ow - oc).abs() < 1e-6 * (1.0 + oc.abs()),
                "round {round}: warm {ow} vs cold {oc}"
            );
            cache = Some(nc);
        }
    }
}

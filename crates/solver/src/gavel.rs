//! The Gavel policy LPs.
//!
//! Gavel models its heterogeneity-aware policies as optimization problems
//! over an allocation matrix `Y[j][r] ∈ [0,1]`: the fraction of wall-clock
//! time job `j` should spend running on GPU type `r`. Feasibility requires
//!
//! * `Σ_r Y[j][r] ≤ 1` for every job (a job runs on at most one type at a
//!   time), and
//! * `Σ_j W_j · Y[j][r] ≤ C_r` for every type (time-averaged GPU demand at
//!   most the type's capacity).
//!
//! Two objectives are provided:
//!
//! * [`max_total_throughput_allocation`] — maximize
//!   `Σ_j Σ_r Y[j][r] · X_j^r · W_j`, total cluster effective throughput.
//!   This is the configuration the paper uses when comparing against Hadar
//!   ("keeping the objective of its optimization problem similar to ours").
//! * [`max_min_allocation`] — maximize the minimum over jobs of the
//!   *normalized* throughput `Σ_r Y[j][r]·X_j^r / max_r X_j^r`
//!   (Gavel's LAS/fairness policy).

use crate::simplex::{LpOutcome, LpProblem, Relation};

/// Input to a Gavel LP: one row per job, one column per GPU type.
#[derive(Debug, Clone)]
pub struct GavelLpInput {
    /// `throughput[j][r]` = `X_j^r` iterations/sec per worker. All rows must
    /// have the same length `R`.
    pub throughput: Vec<Vec<f64>>,
    /// Gang size `W_j` per job.
    pub gang: Vec<u32>,
    /// Cluster capacity `C_r` per type.
    pub capacity: Vec<u32>,
}

impl GavelLpInput {
    fn validate(&self) -> (usize, usize) {
        let j = self.throughput.len();
        assert_eq!(self.gang.len(), j, "gang length mismatch");
        let r = self.capacity.len();
        for row in &self.throughput {
            assert_eq!(row.len(), r, "throughput row length mismatch");
        }
        (j, r)
    }
}

/// Solve the max-total-effective-throughput LP. Returns `Y` as a `J×R`
/// matrix, or `None` if the LP is infeasible/unbounded (cannot happen for
/// well-formed inputs: `Y = 0` is always feasible and the region is
/// bounded).
pub fn max_total_throughput_allocation(input: &GavelLpInput) -> Option<Vec<Vec<f64>>> {
    let (num_jobs, num_types) = input.validate();
    if num_jobs == 0 {
        return Some(Vec::new());
    }
    let var = |j: usize, r: usize| j * num_types + r;
    let mut p = LpProblem::maximize(num_jobs * num_types);
    for (j, row) in input.throughput.iter().enumerate() {
        for (r, &x) in row.iter().enumerate() {
            p.set_objective(var(j, r), x * input.gang[j] as f64);
        }
    }
    add_feasibility_constraints(&mut p, input, var, num_jobs, num_types);
    extract(p.solve(), num_jobs, num_types)
}

/// Solve the max-min-normalized-throughput LP (Gavel's fairness policy).
/// Jobs with an all-zero throughput row are excluded from the min (they can
/// never progress) but still appear in the output with a zero row.
pub fn max_min_allocation(input: &GavelLpInput) -> Option<Vec<Vec<f64>>> {
    let (num_jobs, num_types) = input.validate();
    if num_jobs == 0 {
        return Some(Vec::new());
    }
    // Variable 0 is z; Y[j][r] follows.
    let var = |j: usize, r: usize| 1 + j * num_types + r;
    let mut p = LpProblem::maximize(1 + num_jobs * num_types);
    p.set_objective(0, 1.0);
    for (j, row) in input.throughput.iter().enumerate() {
        let norm = row.iter().copied().fold(0.0, f64::max);
        if norm <= 0.0 {
            continue;
        }
        // Σ_r Y_jr · X_jr / norm − z ≥ 0.
        let mut coeffs: Vec<(usize, f64)> = row
            .iter()
            .enumerate()
            .map(|(r, &x)| (var(j, r), x / norm))
            .collect();
        coeffs.push((0, -1.0));
        p.add_constraint(coeffs, Relation::Ge, 0.0);
    }
    add_feasibility_constraints(&mut p, input, var, num_jobs, num_types);
    match p.solve() {
        LpOutcome::Optimal(s) => {
            let mut y = vec![vec![0.0; num_types]; num_jobs];
            for (j, row) in y.iter_mut().enumerate() {
                for (r, v) in row.iter_mut().enumerate() {
                    *v = s.x[var(j, r)].clamp(0.0, 1.0);
                }
            }
            Some(y)
        }
        _ => None,
    }
}

fn add_feasibility_constraints(
    p: &mut LpProblem,
    input: &GavelLpInput,
    var: impl Fn(usize, usize) -> usize,
    num_jobs: usize,
    num_types: usize,
) {
    // Per-job time budget.
    for j in 0..num_jobs {
        let coeffs = (0..num_types).map(|r| (var(j, r), 1.0)).collect();
        p.add_constraint(coeffs, Relation::Le, 1.0);
    }
    // Per-type capacity.
    for r in 0..num_types {
        let coeffs = (0..num_jobs)
            .map(|j| (var(j, r), input.gang[j] as f64))
            .collect();
        p.add_constraint(coeffs, Relation::Le, input.capacity[r] as f64);
    }
}

fn extract(outcome: LpOutcome, num_jobs: usize, num_types: usize) -> Option<Vec<Vec<f64>>> {
    let s = outcome.optimal()?;
    let mut y = vec![vec![0.0; num_types]; num_jobs];
    for (j, row) in y.iter_mut().enumerate() {
        for (r, v) in row.iter_mut().enumerate() {
            *v = s.x[j * num_types + r].clamp(0.0, 1.0);
        }
    }
    Some(y)
}

/// Check `Y` against the feasibility constraints (used by tests and debug
/// assertions). Returns the maximum violation.
pub fn feasibility_violation(input: &GavelLpInput, y: &[Vec<f64>]) -> f64 {
    let (num_jobs, num_types) = input.validate();
    let mut worst = 0.0f64;
    for row in y.iter().take(num_jobs) {
        let s: f64 = row.iter().sum();
        worst = worst.max(s - 1.0);
        for &v in row.iter().take(num_types) {
            worst = worst.max(-v);
        }
    }
    for (r, &cap) in input.capacity.iter().enumerate().take(num_types) {
        let demand: f64 = y
            .iter()
            .zip(&input.gang)
            .take(num_jobs)
            .map(|(row, &g)| row[r] * g as f64)
            .sum();
        worst = worst.max(demand - cap as f64);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> GavelLpInput {
        // 2 jobs, 2 types. Job 0 loves type 0 (10 vs 1); job 1 indifferent.
        GavelLpInput {
            throughput: vec![vec![10.0, 1.0], vec![4.0, 4.0]],
            gang: vec![1, 1],
            capacity: vec![1, 1],
        }
    }

    #[test]
    fn total_throughput_prefers_affinity() {
        let y = max_total_throughput_allocation(&toy()).unwrap();
        // Optimal: job0 fully on type0 (10), job1 fully on type1 (4) → 14.
        let total: f64 = (0..2)
            .map(|j| {
                (0..2)
                    .map(|r| y[j][r] * toy().throughput[j][r])
                    .sum::<f64>()
            })
            .sum();
        assert!((total - 14.0).abs() < 1e-6, "total={total}, y={y:?}");
        assert!(feasibility_violation(&toy(), &y) < 1e-7);
    }

    #[test]
    fn max_min_is_fair() {
        let input = toy();
        let y = max_min_allocation(&input).unwrap();
        assert!(feasibility_violation(&input, &y) < 1e-7);
        // Normalized throughputs of both jobs should be equal-ish and high.
        let norm = |j: usize| -> f64 {
            let m = input.throughput[j].iter().copied().fold(0.0, f64::max);
            (0..2)
                .map(|r| y[j][r] * input.throughput[j][r])
                .sum::<f64>()
                / m
        };
        let (n0, n1) = (norm(0), norm(1));
        assert!(n0 > 0.5 && n1 > 0.5, "n0={n0} n1={n1}");
        // Max-min optimum equalizes the minimum: both can reach 1.0 here
        // (job0 on type0 full time, job1 on type1 full time).
        assert!((n0.min(n1) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn capacity_binds_with_contention() {
        // 3 single-GPU jobs all wanting the single type-0 GPU.
        let input = GavelLpInput {
            throughput: vec![vec![10.0], vec![10.0], vec![10.0]],
            gang: vec![1, 1, 1],
            capacity: vec![1],
        };
        let y = max_total_throughput_allocation(&input).unwrap();
        let demand: f64 = y.iter().map(|row| row[0]).sum();
        assert!(demand <= 1.0 + 1e-7);
        // Total throughput = 10 × total time share = 10.
        let total: f64 = y.iter().map(|row| row[0] * 10.0).sum();
        assert!((total - 10.0).abs() < 1e-6);
    }

    #[test]
    fn gang_size_weights_capacity() {
        // One 4-GPU job on a 2-GPU type can use at most half its time.
        let input = GavelLpInput {
            throughput: vec![vec![8.0]],
            gang: vec![4],
            capacity: vec![2],
        };
        let y = max_total_throughput_allocation(&input).unwrap();
        assert!((y[0][0] - 0.5).abs() < 1e-6, "y={y:?}");
    }

    #[test]
    fn empty_input() {
        let input = GavelLpInput {
            throughput: vec![],
            gang: vec![],
            capacity: vec![2, 2],
        };
        assert_eq!(max_total_throughput_allocation(&input), Some(vec![]));
        assert_eq!(max_min_allocation(&input), Some(vec![]));
    }

    #[test]
    fn max_min_skips_unrunnable_job() {
        let input = GavelLpInput {
            throughput: vec![vec![0.0, 0.0], vec![5.0, 5.0]],
            gang: vec![1, 1],
            capacity: vec![1, 1],
        };
        let y = max_min_allocation(&input).unwrap();
        // Job 0 cannot run; job 1 should still get a full share.
        let t1: f64 = (0..2).map(|r| y[1][r] * 5.0).sum();
        assert!(t1 > 4.9, "y={y:?}");
    }

    #[test]
    fn paper_scale_lp_solves() {
        // 60-GPU cluster, 48 mixed jobs: representative of a round of the
        // paper's simulation. Must solve quickly and feasibly.
        let mut throughput = Vec::new();
        let mut gang = Vec::new();
        for j in 0..48 {
            let base = 2.0 + (j % 7) as f64;
            throughput.push(vec![base * 10.0, base * 5.0, base]);
            gang.push([1u32, 2, 4, 8][j % 4]);
        }
        let input = GavelLpInput {
            throughput,
            gang,
            capacity: vec![20, 20, 20],
        };
        let y = max_total_throughput_allocation(&input).unwrap();
        assert!(feasibility_violation(&input, &y) < 1e-6);
        let ymin = max_min_allocation(&input).unwrap();
        assert!(feasibility_violation(&input, &ymin) < 1e-6);
    }
}

#[cfg(test)]
mod randomized_tests {
    use super::*;
    use hadar_rng::{Rng, StdRng};

    fn random_instance(rng: &mut StdRng, max_jobs: usize, types: usize, lo: f64) -> GavelLpInput {
        let jobs = rng.gen_range_usize(1..max_jobs.max(2));
        GavelLpInput {
            throughput: (0..jobs)
                .map(|_| (0..types).map(|_| rng.gen_range_f64(lo..30.0)).collect())
                .collect(),
            gang: (0..jobs)
                .map(|_| rng.gen_range_usize(1..5) as u32)
                .collect(),
            capacity: (0..types)
                .map(|_| rng.gen_range_usize(1..8) as u32)
                .collect(),
        }
    }

    /// On random Gavel instances the exact LP allocation is feasible and
    /// never worse than the density greedy (which is itself feasible).
    #[test]
    fn exact_dominates_greedy_and_both_feasible() {
        let mut rng = StdRng::seed_from_u64(0xA1);
        for case in 0..32 {
            let input = random_instance(&mut rng, 10, 3, 0.0);
            let exact = max_total_throughput_allocation(&input)
                .unwrap_or_else(|| panic!("case {case}: LP failed"));
            let greedy = crate::greedy::greedy_total_throughput(&input);
            assert!(feasibility_violation(&input, &exact) < 1e-6, "case {case}");
            assert!(feasibility_violation(&input, &greedy) < 1e-6, "case {case}");
            let oe = crate::greedy::total_throughput_objective(&input, &exact);
            let og = crate::greedy::total_throughput_objective(&input, &greedy);
            assert!(oe >= og - 1e-6, "case {case}: exact {oe} below greedy {og}");
        }
    }

    /// Max-min allocations are feasible and (weakly) raise the minimum
    /// normalized throughput compared to the total-throughput optimum.
    #[test]
    fn max_min_raises_the_floor() {
        let mut rng = StdRng::seed_from_u64(0xB2);
        for case in 0..32 {
            let jobs = rng.gen_range_usize(2..6);
            let input = GavelLpInput {
                throughput: (0..jobs)
                    .map(|_| (0..2).map(|_| rng.gen_range_f64(0.5..30.0)).collect())
                    .collect(),
                gang: (0..jobs)
                    .map(|_| rng.gen_range_usize(1..3) as u32)
                    .collect(),
                capacity: vec![2, 2],
            };
            let fair = max_min_allocation(&input).expect("feasible");
            let total = max_total_throughput_allocation(&input).expect("feasible");
            assert!(feasibility_violation(&input, &fair) < 1e-6, "case {case}");
            let floor = |y: &Vec<Vec<f64>>| -> f64 {
                input
                    .throughput
                    .iter()
                    .enumerate()
                    .map(|(j, row)| {
                        let norm = row.iter().copied().fold(0.0, f64::max);
                        row.iter()
                            .enumerate()
                            .map(|(r, &x)| y[j][r] * x)
                            .sum::<f64>()
                            / norm
                    })
                    .fold(f64::INFINITY, f64::min)
            };
            assert!(
                floor(&fair) >= floor(&total) - 1e-6,
                "case {case}: fair floor {} below total-throughput floor {}",
                floor(&fair),
                floor(&total)
            );
        }
    }
}

#![warn(missing_docs)]

//! # hadar-solver
//!
//! Linear-programming machinery for the Hadar workspace.
//!
//! The Gavel baseline (Narayanan et al., OSDI '20) computes its allocation
//! matrix `Y[j][r]` — the fraction of time job `j` should spend on GPU type
//! `r` — by solving a linear program. The original system delegates to
//! cvxpy; no equivalent crate is assumed available offline, so this crate
//! implements the needed pieces from scratch:
//!
//! * [`simplex`] — a dense two-phase primal simplex solver for general LPs
//!   (`max c·x, A x {≤,=,≥} b, x ≥ 0`) with Dantzig pricing and Bland's
//!   anti-cycling fallback; retained as the reference implementation and
//!   cross-checked against the revised solver in tests,
//! * [`revised`] — a sparse revised simplex (eta-file basis factorization
//!   with periodic reinversion) behind the same `LpProblem` API, plus
//!   [`revised::Basis`] export and [`simplex::LpProblem::solve_warm`]
//!   warm-starting; this is the production solver for every Gavel policy
//!   solve, exact at all Fig. 7 scales,
//! * [`gavel`] — builders for the two Gavel policy LPs used in the paper's
//!   evaluation: *maximize total effective throughput* (the objective the
//!   paper configures "similar to ours") and *max-min normalized throughput*
//!   (Gavel's fairness policy), with [`GavelBasisCache`] carrying the
//!   optimal basis across rounds so an arrival/completion costs a handful
//!   of pivots instead of a full two-phase resolve,
//! * [`greedy`] — a density-greedy approximation for the total-throughput
//!   transportation LP, kept as an accuracy yardstick in tests and benches
//!   (it is no longer used as a scheduling fallback: the revised simplex
//!   stays exact at every scale).

//!
//! ```
//! use hadar_solver::{LpProblem, Relation};
//! // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18.
//! let mut p = LpProblem::maximize(2);
//! p.set_objective(0, 3.0).set_objective(1, 5.0);
//! p.add_constraint(vec![(0, 1.0)], Relation::Le, 4.0);
//! p.add_constraint(vec![(1, 2.0)], Relation::Le, 12.0);
//! p.add_constraint(vec![(0, 3.0), (1, 2.0)], Relation::Le, 18.0);
//! let s = p.solve().optimal().unwrap();
//! assert!((s.objective - 36.0).abs() < 1e-7);
//! ```

pub mod gavel;
pub mod greedy;
pub mod revised;
pub mod simplex;

pub use gavel::{
    max_min_allocation, max_min_allocation_warm, max_total_throughput_allocation,
    max_total_throughput_allocation_warm, GavelBasisCache, GavelLpError, GavelLpInput,
};
pub use greedy::greedy_total_throughput;
pub use revised::Basis;
pub use simplex::{Constraint, LpOutcome, LpProblem, LpSolution, Relation};

//! Property tests: the sparse revised simplex must agree with the dense
//! two-phase tableau on every random LP — same outcome classification
//! (optimal / infeasible / unbounded) and, when optimal, the same objective
//! to 1e-6 — and a warm-started solve from a perturbed problem must match a
//! cold solve.
//!
//! Coefficients are drawn from a half-integer grid so that infeasibility
//! and unboundedness are decided robustly rather than at tolerance
//! knife-edges; degeneracy is forced by zero right-hand sides.

use hadar_rng::{Rng, StdRng};
use hadar_solver::{LpOutcome, LpProblem, Relation};

/// Random LP from a half-integer grid: up to 8 vars, up to 8 rows, mixed
/// relations. `degenerate` zeroes a fraction of the right-hand sides.
fn random_lp(rng: &mut StdRng, degenerate: bool) -> LpProblem {
    let n = rng.gen_range_usize(1..9);
    let m = rng.gen_range_usize(1..9);
    let half = |rng: &mut StdRng| (rng.gen_range_usize(0..13) as f64 - 6.0) / 2.0;
    let mut p = LpProblem::maximize(n);
    for j in 0..n {
        p.set_objective(j, half(rng));
    }
    for _ in 0..m {
        let mut coeffs: Vec<(usize, f64)> = Vec::new();
        for j in 0..n {
            // ~60% fill keeps the instances sparse-ish.
            if rng.gen_range_usize(0..10) < 6 {
                coeffs.push((j, half(rng)));
            }
        }
        let relation = match rng.gen_range_usize(0..10) {
            0..=6 => Relation::Le, // mostly ≤, like the Gavel LPs
            7..=8 => Relation::Ge,
            _ => Relation::Eq,
        };
        let rhs = if degenerate && rng.gen_range_usize(0..2) == 0 {
            0.0
        } else {
            // Mostly non-negative: ≤ rows with rhs ≥ 0 keep the origin
            // feasible, so a healthy share of instances is optimal.
            let v = half(rng).abs() * 2.0;
            if rng.gen_range_usize(0..4) == 0 {
                -v
            } else {
                v
            }
        };
        p.add_constraint(coeffs, relation, rhs);
    }
    // Half the instances get a bounding box so the optimal class is well
    // represented alongside infeasible/unbounded ones.
    if rng.gen_range_usize(0..2) == 0 {
        let box_rhs = rng.gen_range_usize(1..20) as f64;
        p.add_constraint((0..n).map(|j| (j, 1.0)).collect(), Relation::Le, box_rhs);
    }
    p
}

fn classify(o: &LpOutcome) -> &'static str {
    match o {
        LpOutcome::Optimal(_) => "optimal",
        LpOutcome::Infeasible => "infeasible",
        LpOutcome::Unbounded => "unbounded",
    }
}

/// 200 random LPs spanning feasible, infeasible, unbounded, and degenerate
/// instances: classification and optimal objective must agree between the
/// two solvers.
#[test]
fn revised_matches_dense_on_200_random_lps() {
    let mut rng = StdRng::seed_from_u64(0x5EED_CAFE);
    let mut seen = std::collections::HashMap::<&'static str, usize>::new();
    for case in 0..200 {
        let p = random_lp(&mut rng, case % 3 == 0);
        let dense = p.solve();
        let revised = p.solve_revised();
        *seen.entry(classify(&dense)).or_default() += 1;
        assert_eq!(
            classify(&dense),
            classify(&revised),
            "case {case}: dense {dense:?} vs revised {revised:?}"
        );
        if let (LpOutcome::Optimal(d), LpOutcome::Optimal(r)) = (&dense, &revised) {
            assert!(
                (d.objective - r.objective).abs() < 1e-6 * (1.0 + d.objective.abs()),
                "case {case}: dense obj {} vs revised obj {}",
                d.objective,
                r.objective
            );
        }
    }
    // The generator must actually exercise all three outcome classes.
    assert!(seen.get("optimal").copied().unwrap_or(0) > 40, "{seen:?}");
    assert!(
        seen.get("infeasible").copied().unwrap_or(0) > 10,
        "{seen:?}"
    );
    assert!(seen.get("unbounded").copied().unwrap_or(0) > 10, "{seen:?}");
}

/// Bounded feasible LPs (box + extra ≤ rows): export the optimal basis,
/// perturb the objective and right-hand sides, and check the warm-started
/// solve matches a cold solve of the perturbed problem.
#[test]
fn warm_start_matches_cold_on_perturbed_lps() {
    let mut rng = StdRng::seed_from_u64(0xBA5E_11F7);
    for case in 0..100 {
        let n = rng.gen_range_usize(1..7);
        let m_extra = rng.gen_range_usize(0..5);
        let build = |c: &[f64], caps: &[f64], rows: &[(Vec<(usize, f64)>, f64)]| {
            let mut p = LpProblem::maximize(n);
            for (j, &cj) in c.iter().enumerate() {
                p.set_objective(j, cj);
            }
            for (j, &u) in caps.iter().enumerate() {
                p.add_constraint(vec![(j, 1.0)], Relation::Le, u);
            }
            for (coeffs, rhs) in rows {
                p.add_constraint(coeffs.clone(), Relation::Le, *rhs);
            }
            p
        };
        let c: Vec<f64> = (0..n).map(|_| rng.gen_range_f64(-4.0..6.0)).collect();
        let caps: Vec<f64> = (0..n).map(|_| rng.gen_range_f64(0.5..8.0)).collect();
        let rows: Vec<(Vec<(usize, f64)>, f64)> = (0..m_extra)
            .map(|_| {
                (
                    (0..n).map(|j| (j, rng.gen_range_f64(0.0..3.0))).collect(),
                    rng.gen_range_f64(1.0..12.0),
                )
            })
            .collect();

        let (out, basis) = build(&c, &caps, &rows).solve_revised_with_basis();
        let basis = basis.unwrap_or_else(|| panic!("case {case}: {out:?} has no basis"));

        // Perturb: jitter the objective, tighten/loosen every bound.
        let c2: Vec<f64> = c
            .iter()
            .map(|&v| v + rng.gen_range_f64(-1.0..1.0))
            .collect();
        let caps2: Vec<f64> = caps
            .iter()
            .map(|&v| (v + rng.gen_range_f64(-1.0..1.0)).max(0.1))
            .collect();
        let rows2: Vec<(Vec<(usize, f64)>, f64)> = rows
            .iter()
            .map(|(co, rhs)| (co.clone(), (rhs + rng.gen_range_f64(-2.0..2.0)).max(0.1)))
            .collect();
        let perturbed = build(&c2, &caps2, &rows2);
        let cold = perturbed
            .solve_revised()
            .optimal()
            .unwrap_or_else(|| panic!("case {case}: perturbed not optimal"))
            .objective;
        let (warm_out, warm_basis) = perturbed.solve_warm(&basis);
        let warm = warm_out
            .optimal()
            .unwrap_or_else(|| panic!("case {case}: warm solve not optimal"))
            .objective;
        assert!(
            (warm - cold).abs() < 1e-6 * (1.0 + cold.abs()),
            "case {case}: warm {warm} vs cold {cold}"
        );
        assert!(
            warm_basis.is_some(),
            "case {case}: no basis after warm solve"
        );
    }
}

/// The dense solver is the reference; a feasible revised optimum must also
/// satisfy the constraints it was solved under (primal feasibility check
/// independent of the dense solver).
#[test]
fn revised_solutions_are_primal_feasible() {
    let mut rng = StdRng::seed_from_u64(0xFEA5_1B1E);
    for case in 0..50 {
        let n = rng.gen_range_usize(1..6);
        let mut p = LpProblem::maximize(n);
        let mut rows: Vec<(Vec<f64>, f64)> = Vec::new();
        for j in 0..n {
            p.set_objective(j, rng.gen_range_f64(0.0..5.0));
        }
        for _ in 0..rng.gen_range_usize(1..6) {
            let coeffs: Vec<f64> = (0..n).map(|_| rng.gen_range_f64(0.0..4.0)).collect();
            let rhs = rng.gen_range_f64(0.5..20.0);
            p.add_constraint(
                coeffs.iter().enumerate().map(|(j, &a)| (j, a)).collect(),
                Relation::Le,
                rhs,
            );
            rows.push((coeffs, rhs));
        }
        // Bounding box guarantees an optimum exists.
        p.add_constraint((0..n).map(|j| (j, 1.0)).collect(), Relation::Le, 50.0);
        rows.push((vec![1.0; n], 50.0));
        let s = match p.solve_revised() {
            LpOutcome::Optimal(s) => s,
            other => panic!("case {case}: not optimal: {other:?}"),
        };
        for (coeffs, rhs) in &rows {
            let lhs: f64 = coeffs.iter().zip(&s.x).map(|(a, x)| a * x).sum();
            assert!(lhs <= rhs + 1e-6, "case {case}: {lhs} > {rhs}");
        }
        for &x in &s.x {
            assert!(x >= -1e-9, "case {case}: negative x {x}");
        }
    }
}

#![warn(missing_docs)]

//! # hadar
//!
//! Facade crate re-exporting the whole Hadar workspace: the
//! heterogeneity-aware optimization-based online scheduler for deep-learning
//! clusters (IPDPS 2024) together with its substrates (cluster model,
//! workload generator, LP solver, simulator), the baseline schedulers it is
//! evaluated against, and the metrics layer.
//!
//! ## Quickstart
//!
//! ```
//! use hadar::prelude::*;
//!
//! // The paper's simulated cluster: 15 nodes, 20 each of V100/P100/K80.
//! let cluster = Cluster::paper_simulation();
//! // A small seeded trace.
//! let trace = generate_trace(
//!     &TraceConfig { num_jobs: 12, seed: 7, pattern: ArrivalPattern::Static },
//!     cluster.catalog(),
//! );
//! // Run Hadar on it.
//! let scheduler = HadarScheduler::new(HadarConfig::default());
//! let outcome = Simulation::new(cluster, trace, SimConfig::default())
//!     .run(scheduler)
//!     .expect("valid policy and config");
//! assert_eq!(outcome.completed_jobs(), 12);
//! println!("avg JCT = {:.1}s", outcome.mean_jct());
//! ```

pub use hadar_baselines as baselines;
pub use hadar_cluster as cluster;
pub use hadar_core as core;
pub use hadar_metrics as metrics;
pub use hadar_sim as sim;
pub use hadar_solver as solver;
pub use hadar_workload as workload;

/// Commonly used items, re-exported flat.
pub mod prelude {
    pub use hadar_baselines::{GavelScheduler, TiresiasScheduler, YarnCsScheduler};
    pub use hadar_cluster::{
        Allocation, Cluster, ClusterBuilder, CommCostModel, GpuCatalog, GpuTypeId, JobId,
        JobPlacement, MachineId, Usage,
    };
    pub use hadar_core::{HadarConfig, HadarScheduler};
    pub use hadar_metrics::SummaryStats;
    pub use hadar_sim::{FailureModel, SimConfig, SimError, SimOutcome, SimResult, Simulation};
    pub use hadar_workload::{
        generate_trace, ArrivalPattern, DlTask, Job, SizeClass, ThroughputProfile, TraceConfig,
    };
}

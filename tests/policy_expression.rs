//! Tests of §III-A's generality claim: plugging a different utility into
//! the same optimization framework actually steers the cluster toward that
//! objective.

use hadar::core::{FtfUtility, MinMakespan, UtilityKind};
use hadar::prelude::*;

fn run_with_utility(utility: UtilityKind, n: usize, seed: u64) -> SimOutcome {
    let cluster = Cluster::paper_simulation();
    let jobs = generate_trace(
        &TraceConfig {
            num_jobs: n,
            seed,
            pattern: ArrivalPattern::Static,
        },
        cluster.catalog(),
    );
    Simulation::new(cluster, jobs, SimConfig::default())
        .run(HadarScheduler::new(HadarConfig::with_utility(utility)))
        .unwrap()
}

#[test]
fn makespan_objective_completes_and_stays_competitive() {
    let default = run_with_utility(UtilityKind::EffectiveThroughput, 40, 42);
    let makespan = run_with_utility(UtilityKind::MinMakespan(MinMakespan::default()), 40, 42);
    assert_eq!(makespan.completed_jobs(), 40);
    // The makespan-objective schedule must not *worsen* makespan
    // meaningfully relative to the JCT-objective one.
    assert!(
        makespan.makespan() <= default.makespan() * 1.10,
        "makespan objective produced {:.1}h vs default {:.1}h",
        makespan.makespan() / 3600.0,
        default.makespan() / 3600.0
    );
}

#[test]
fn ftf_objective_improves_worst_case_fairness() {
    let default = run_with_utility(UtilityKind::EffectiveThroughput, 40, 7);
    let cluster = Cluster::paper_simulation();
    let fair = run_with_utility(UtilityKind::Ftf(FtfUtility::new(cluster, 40)), 40, 7);
    assert_eq!(fair.completed_jobs(), 40);
    // The FTF objective should not degrade the tail fairness (max ρ).
    assert!(
        fair.ftf().max <= default.ftf().max * 1.25,
        "FTF objective: max ρ {:.3} vs default {:.3}",
        fair.ftf().max,
        default.ftf().max
    );
}

#[test]
fn all_shipped_utilities_are_schedulable() {
    let cluster = Cluster::paper_simulation();
    let utilities = vec![
        UtilityKind::EffectiveThroughput,
        UtilityKind::MinMakespan(MinMakespan::default()),
        UtilityKind::Ftf(FtfUtility::new(cluster, 12)),
    ];
    for u in utilities {
        let out = run_with_utility(u, 12, 3);
        assert_eq!(out.completed_jobs(), 12);
        assert!(!out.timed_out);
    }
}

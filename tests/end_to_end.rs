//! Cross-crate integration tests: the full pipeline (trace generation →
//! scheduler → simulator → metrics) for every policy, plus the paper's
//! comparative claims in miniature.

use hadar::baselines::{GavelScheduler, TiresiasScheduler, YarnCsScheduler};
use hadar::prelude::*;
use hadar::sim::Scheduler;

fn trace(n: usize, seed: u64, pattern: ArrivalPattern) -> (Cluster, Vec<Job>) {
    let cluster = Cluster::paper_simulation();
    let jobs = generate_trace(
        &TraceConfig {
            num_jobs: n,
            seed,
            pattern,
        },
        cluster.catalog(),
    );
    (cluster, jobs)
}

fn run_with(cluster: Cluster, jobs: Vec<Job>, s: Box<dyn Scheduler>) -> SimOutcome {
    Simulation::new(cluster, jobs, SimConfig::default())
        .run(s)
        .expect("valid policy and config")
}

fn all_schedulers() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(HadarScheduler::new(HadarConfig::default())),
        Box::new(GavelScheduler::paper_default()),
        Box::new(TiresiasScheduler::paper_default()),
        Box::new(YarnCsScheduler::new()),
    ]
}

#[test]
fn every_scheduler_completes_static_and_continuous_traces() {
    for pattern in [ArrivalPattern::Static, ArrivalPattern::paper_continuous()] {
        for s in all_schedulers() {
            let name = s.name().to_owned();
            let (cluster, jobs) = trace(24, 3, pattern);
            let out = run_with(cluster, jobs, s);
            assert_eq!(out.completed_jobs(), 24, "{name} under {pattern:?}");
            assert!(!out.timed_out, "{name}");
            // Sanity on derived metrics.
            assert!(out.mean_jct() > 0.0, "{name}");
            assert!(out.makespan() >= out.metrics().max, "{name}");
            let u = out.demand_weighted_utilization();
            assert!((0.0..=1.0).contains(&u), "{name}: util {u}");
            assert!(out.ftf().mean > 0.0, "{name}");
        }
    }
}

#[test]
fn every_scheduler_survives_machine_failures_with_valid_lifecycles() {
    // Fault injection across the whole policy suite: every event stream
    // stays lifecycle-valid (evictions only on started jobs, machine events
    // interleave consistently), every trace still completes, and the same
    // failure seed reproduces the identical outcome.
    let model = FailureModel {
        mtbf_rounds: 25.0,
        mttr_rounds: 4.0,
        seed: 13,
    };
    let config = SimConfig {
        failure: Some(model),
        ..SimConfig::default()
    };
    for s in all_schedulers() {
        let name = s.name().to_owned();
        let (cluster, jobs) = trace(16, 5, ArrivalPattern::Static);
        let n = jobs.len();
        let out = Simulation::new(cluster, jobs, config)
            .run(s)
            .expect("valid policy and config");
        assert_eq!(out.completed_jobs(), n, "{name}");
        hadar::sim::check_lifecycle(out.events(), n).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            out.machine_failures() > 0,
            "{name}: failure model never fired"
        );
    }
    // Determinism under a fixed failure seed, across all schedulers.
    for (a, b) in all_schedulers().into_iter().zip(all_schedulers()) {
        let name = a.name().to_owned();
        let run = |s: Box<dyn Scheduler>| {
            let (cluster, jobs) = trace(16, 5, ArrivalPattern::Static);
            Simulation::new(cluster, jobs, config).run(s).unwrap()
        };
        let (x, y) = (run(a), run(b));
        assert_eq!(x.jcts(), y.jcts(), "{name}: JCTs diverged");
        assert_eq!(x.evictions(), y.evictions(), "{name}: evictions diverged");
    }
}

#[test]
fn hadar_beats_every_baseline_on_mean_jct() {
    // The paper's headline claim, in miniature: on the 60-GPU cluster with a
    // mixed static trace, Hadar's mean JCT beats Gavel, Tiresias, and
    // YARN-CS.
    let (cluster, jobs) = trace(60, 42, ArrivalPattern::Static);
    let hadar = run_with(
        cluster.clone(),
        jobs.clone(),
        Box::new(HadarScheduler::new(HadarConfig::default())),
    );
    for baseline in [
        Box::new(GavelScheduler::paper_default()) as Box<dyn Scheduler>,
        Box::new(TiresiasScheduler::paper_default()),
        Box::new(YarnCsScheduler::new()),
    ] {
        let name = baseline.name().to_owned();
        let out = run_with(cluster.clone(), jobs.clone(), baseline);
        assert!(
            hadar.mean_jct() < out.mean_jct(),
            "Hadar {:.1}h !< {name} {:.1}h",
            hadar.mean_jct() / 3600.0,
            out.mean_jct() / 3600.0
        );
    }
}

#[test]
fn hadar_beats_gavel_on_ftf_and_utilization() {
    let (cluster, jobs) = trace(60, 42, ArrivalPattern::Static);
    let hadar = run_with(
        cluster.clone(),
        jobs.clone(),
        Box::new(HadarScheduler::new(HadarConfig::default())),
    );
    let gavel = run_with(cluster, jobs, Box::new(GavelScheduler::paper_default()));
    assert!(hadar.ftf().mean < gavel.ftf().mean, "FTF regressed");
    assert!(
        hadar.demand_weighted_utilization() > gavel.demand_weighted_utilization(),
        "utilization regressed"
    );
}

#[test]
fn hadar_shortens_queuing_delay_vs_gavel() {
    // §I: "shortens the queuing delay by 13%" — direction check.
    let (cluster, jobs) = trace(60, 42, ArrivalPattern::paper_continuous());
    let hadar = run_with(
        cluster.clone(),
        jobs.clone(),
        Box::new(HadarScheduler::new(HadarConfig::default())),
    );
    let gavel = run_with(cluster, jobs, Box::new(GavelScheduler::paper_default()));
    assert!(
        hadar.queuing_delays().mean < gavel.queuing_delays().mean,
        "Hadar queuing delay {:.2}h !< Gavel {:.2}h",
        hadar.queuing_delays().mean / 3600.0,
        gavel.queuing_delays().mean / 3600.0
    );
}

#[test]
fn task_level_mixing_rescues_fragmented_cluster() {
    // A gang that no single GPU type can host: Hadar must still run it.
    let mut b = ClusterBuilder::new();
    let v100 = b.gpu_type("V100");
    let p100 = b.gpu_type("P100");
    b.machine(&[(v100, 1)]);
    b.machine(&[(p100, 1)]);
    let cluster = b.build();
    let job = Job::for_model(
        JobId(0),
        hadar::workload::DlTask::ResNet18,
        cluster.catalog(),
        0.0,
        2, // needs both GPUs, necessarily mixed
        20,
    );
    let hadar = run_with(
        cluster.clone(),
        vec![job.clone()],
        Box::new(HadarScheduler::new(HadarConfig::default())),
    );
    assert_eq!(hadar.completed_jobs(), 1);
    // Gavel never mixes: the job can never be placed. It must time out.
    let config = SimConfig {
        max_rounds: 50,
        ..SimConfig::default()
    };
    let gavel = Simulation::new(cluster, vec![job], config)
        .run(GavelScheduler::paper_default())
        .unwrap();
    assert_eq!(gavel.completed_jobs(), 0);
    assert!(gavel.timed_out);
}

#[test]
fn outcome_reallocation_stat_is_bounded() {
    let (cluster, jobs) = trace(40, 8, ArrivalPattern::Static);
    let out = run_with(
        cluster,
        jobs,
        Box::new(HadarScheduler::new(HadarConfig::default())),
    );
    let rate = out.reallocation_rate();
    assert!((0.0..=1.0).contains(&rate));
    // Hadar's sticky candidates keep churn modest (§IV-A-5 reports ~30%).
    assert!(rate < 0.5, "reallocation rate {rate} suspiciously high");
}

#[test]
fn rack_topology_slows_cross_rack_gangs() {
    use hadar::cluster::{PlacementSlice, RackTopology};
    use hadar::sim::{PreemptionPenalty, Scheduler, SchedulerContext};

    // Four single-V100 machines; racks {0,1} and {2,3}.
    let build = || {
        let mut b = ClusterBuilder::new();
        let v100 = b.gpu_type("V100");
        for _ in 0..4 {
            b.machine(&[(v100, 1)]);
        }
        b.build().with_racks(RackTopology::uniform(4, 2))
    };
    struct Pin {
        machines: [u32; 2],
    }
    impl Scheduler for Pin {
        fn name(&self) -> &str {
            "Pin"
        }
        fn schedule(&mut self, ctx: &SchedulerContext<'_>) -> Allocation {
            let v100 = ctx.cluster.catalog().lookup("V100").unwrap();
            let mut a = Allocation::empty();
            for s in ctx.jobs {
                a.set(
                    s.job.id,
                    JobPlacement::from_slices(self.machines.map(|m| PlacementSlice {
                        machine: MachineId(m),
                        gpu: v100,
                        count: 1,
                    })),
                );
            }
            a
        }
    }
    let job = || {
        vec![Job::for_model(
            JobId(0),
            hadar::workload::DlTask::ResNet18,
            build().catalog(),
            0.0,
            2,
            100,
        )]
    };
    let config = SimConfig {
        penalty: PreemptionPenalty::None,
        ..SimConfig::default()
    };
    let same_rack = Simulation::new(build(), job(), config)
        .run(Pin { machines: [0, 1] })
        .unwrap();
    let cross_rack = Simulation::new(build(), job(), config)
        .run(Pin { machines: [0, 2] })
        .unwrap();
    let (a, b) = (
        same_rack.records[0].jct().unwrap(),
        cross_rack.records[0].jct().unwrap(),
    );
    assert!(
        b > a * 1.02,
        "cross-rack gang should pay the rack tier: same {a:.1}s vs cross {b:.1}s"
    );
}

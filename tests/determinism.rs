//! Reproducibility guarantees: identical inputs give identical outcomes for
//! every scheduler, and the trace generator is a pure function of its seed.

use hadar::baselines::{GavelScheduler, TiresiasScheduler, YarnCsScheduler};
use hadar::prelude::*;
use hadar::sim::Scheduler;

fn outcome_fingerprint(out: &SimOutcome) -> Vec<(u32, u64, u32)> {
    out.records
        .iter()
        .map(|r| {
            (
                r.job.id.0,
                r.finish.unwrap_or(-1.0).to_bits(),
                r.reallocations,
            )
        })
        .collect()
}

fn run_seeded(seed: u64, make: &dyn Fn() -> Box<dyn Scheduler>) -> SimOutcome {
    let cluster = Cluster::paper_simulation();
    let jobs = generate_trace(
        &TraceConfig {
            num_jobs: 20,
            seed,
            pattern: ArrivalPattern::paper_continuous(),
        },
        cluster.catalog(),
    );
    Simulation::new(cluster, jobs, SimConfig::default())
        .run(make())
        .unwrap()
}

type SchedulerFactory = Box<dyn Fn() -> Box<dyn Scheduler>>;

#[test]
fn identical_seeds_identical_outcomes() {
    let factories: Vec<(&str, SchedulerFactory)> = vec![
        (
            "Hadar",
            Box::new(|| Box::new(HadarScheduler::new(HadarConfig::default())) as _),
        ),
        (
            "Gavel",
            Box::new(|| Box::new(GavelScheduler::paper_default()) as _),
        ),
        (
            "Tiresias",
            Box::new(|| Box::new(TiresiasScheduler::paper_default()) as _),
        ),
        (
            "YARN-CS",
            Box::new(|| Box::new(YarnCsScheduler::new()) as _),
        ),
    ];
    for (name, factory) in &factories {
        let a = run_seeded(5, factory);
        let b = run_seeded(5, factory);
        assert_eq!(
            outcome_fingerprint(&a),
            outcome_fingerprint(&b),
            "{name} is nondeterministic"
        );
    }
}

#[test]
fn different_seeds_differ() {
    let factory: Box<dyn Fn() -> Box<dyn Scheduler>> =
        Box::new(|| Box::new(HadarScheduler::new(HadarConfig::default())) as _);
    let a = run_seeded(5, &factory);
    let b = run_seeded(6, &factory);
    assert_ne!(outcome_fingerprint(&a), outcome_fingerprint(&b));
}

#[test]
fn trace_generation_is_pure() {
    let cluster = Cluster::paper_simulation();
    let cfg = TraceConfig {
        num_jobs: 100,
        seed: 77,
        pattern: ArrivalPattern::paper_continuous(),
    };
    assert_eq!(
        generate_trace(&cfg, cluster.catalog()),
        generate_trace(&cfg, cluster.catalog())
    );
}

#[test]
fn csv_roundtrip_preserves_simulation_results() {
    let cluster = Cluster::paper_simulation();
    let cfg = TraceConfig {
        num_jobs: 15,
        seed: 4,
        pattern: ArrivalPattern::Static,
    };
    let jobs = generate_trace(&cfg, cluster.catalog());
    let csv = hadar::workload::save_trace_csv(&jobs);
    let reloaded = hadar::workload::load_trace_csv(&csv, cluster.catalog()).unwrap();
    let out_a = Simulation::new(cluster.clone(), jobs, SimConfig::default())
        .run(HadarScheduler::new(HadarConfig::default()))
        .unwrap();
    let out_b = Simulation::new(cluster, reloaded, SimConfig::default())
        .run(HadarScheduler::new(HadarConfig::default()))
        .unwrap();
    assert_eq!(outcome_fingerprint(&out_a), outcome_fingerprint(&out_b));
}

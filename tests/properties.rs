//! Randomized workspace tests: for randomly generated clusters and traces
//! (seeded, fully deterministic), every scheduler completes every job
//! without ever tripping the engine's capacity/gang validation, and derived
//! metrics stay in their domains.

use hadar_rng::{Rng, StdRng};

use hadar::baselines::{GavelScheduler, TiresiasScheduler, YarnCsScheduler};
use hadar::prelude::*;
use hadar::sim::{PreemptionPenalty, Scheduler};
use hadar::workload::DlTask;

/// A random small heterogeneous cluster: 2–5 machines, 1–4 GPUs each,
/// drawn from the three simulation GPU types (at least one V100 machine so
/// every model can run somewhere).
fn random_cluster(rng: &mut StdRng) -> Cluster {
    let mut b = ClusterBuilder::new();
    let types = [b.gpu_type("V100"), b.gpu_type("P100"), b.gpu_type("K80")];
    b.machine(&[(types[0], 2)]); // guaranteed V100 capacity
    let extra = rng.gen_range_usize(1..5);
    for _ in 0..extra {
        let t = rng.gen_range_usize(0..3);
        let n = rng.gen_range_usize(1..5) as u32;
        b.machine(&[(types[t], n)]);
    }
    b.build()
}

/// Random job specs `(model, gang, epochs, arrival)` that are guaranteed
/// schedulable on any [`random_cluster`] (gang sizes 1–2 always fit the
/// guaranteed V100 machine).
fn random_specs(rng: &mut StdRng, max_jobs: usize) -> Vec<(usize, u32, u64, f64)> {
    let n = rng.gen_range_usize(1..max_jobs + 1);
    (0..n)
        .map(|_| {
            (
                rng.gen_range_usize(0..5),
                rng.gen_range_usize(1..3) as u32,
                rng.gen_range_usize(1..9) as u64,
                rng.gen_range_f64(0.0..7200.0),
            )
        })
        .collect()
}

fn materialize(cluster: &Cluster, specs: &[(usize, u32, u64, f64)]) -> Vec<Job> {
    specs
        .iter()
        .enumerate()
        .map(|(i, &(model_idx, gang, epochs, arrival))| {
            Job::for_model(
                JobId(i as u32),
                DlTask::ALL[model_idx],
                cluster.catalog(),
                arrival,
                gang,
                epochs,
            )
        })
        .collect()
}

fn schedulers() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(HadarScheduler::new(HadarConfig::default())),
        Box::new(GavelScheduler::paper_default()),
        Box::new(TiresiasScheduler::paper_default()),
        Box::new(YarnCsScheduler::new()),
    ]
}

/// Every scheduler finishes every randomly generated workload — the
/// engine's internal validation (capacity 1d, gang 1e) would panic on
/// any constraint violation along the way.
#[test]
fn schedulers_complete_random_workloads() {
    let mut rng = StdRng::seed_from_u64(0x11);
    for case in 0..24 {
        let cluster = random_cluster(&mut rng);
        let specs = random_specs(&mut rng, 8);
        let jobs = materialize(&cluster, &specs);
        for s in schedulers() {
            let name = s.name().to_owned();
            let config = SimConfig {
                penalty: PreemptionPenalty::Fixed(10.0),
                max_rounds: 500_000,
                ..SimConfig::default()
            };
            let out = Simulation::new(cluster.clone(), jobs.clone(), config)
                .run(s)
                .unwrap();
            assert_eq!(out.completed_jobs(), jobs.len(), "case {case}: {name}");
            assert!(!out.timed_out, "case {case}: {name}");
            // Lifecycle oracle: arrivals/starts/migrations/completions in a
            // legal order for every job.
            if let Err(e) = hadar::sim::check_lifecycle(out.events(), jobs.len()) {
                panic!("case {case}: {name}: {e}");
            }
        }
    }
}

/// Metric domains: JCT ≥ best-case runtime, utilizations within [0,1],
/// queuing delay non-negative, FTF finite and positive.
#[test]
fn metric_domains_hold() {
    let mut rng = StdRng::seed_from_u64(0x22);
    for case in 0..24 {
        let cluster = random_cluster(&mut rng);
        let specs = random_specs(&mut rng, 6);
        let jobs = materialize(&cluster, &specs);
        let out = Simulation::new(cluster, jobs, SimConfig::default())
            .run(HadarScheduler::new(HadarConfig::default()))
            .unwrap();
        for rec in &out.records {
            let jct = rec.jct().expect("completed");
            assert!(
                jct >= rec.job.min_runtime() - 1e-6,
                "case {case}: job {} finished faster than physics allows",
                rec.job.id
            );
            assert!(
                rec.queuing_delay().expect("scheduled") >= 0.0,
                "case {case}"
            );
        }
        for u in [
            out.gpu_utilization(),
            out.demand_weighted_utilization(),
            out.held_utilization(),
        ] {
            assert!((0.0..=1.0 + 1e-9).contains(&u), "case {case}: {u}");
        }
        for rho in out.ftf_values() {
            assert!(rho.is_finite() && rho >= 0.0, "case {case}");
        }
    }
}

/// The engine's accounting is conservative: busy GPU-seconds never
/// exceed held GPU-seconds, and held never exceeds cluster capacity.
#[test]
fn gpu_second_accounting() {
    let mut rng = StdRng::seed_from_u64(0x33);
    for case in 0..24 {
        let cluster = random_cluster(&mut rng);
        let specs = random_specs(&mut rng, 6);
        let jobs = materialize(&cluster, &specs);
        let total = cluster.total_gpus() as f64;
        let out = Simulation::new(cluster, jobs, SimConfig::default())
            .run(TiresiasScheduler::paper_default())
            .unwrap();
        for round in &out.rounds {
            assert!(
                round.busy_gpu_seconds <= round.held_gpu_seconds + 1e-6,
                "case {case}"
            );
            assert!(
                round.held_gpu_seconds <= total * out.round_length + 1e-6,
                "case {case}"
            );
        }
    }
}

/// Straggler injection never breaks completion or the lifecycle log,
/// and outcomes remain deterministic under equal straggler seeds.
#[test]
fn straggler_injection_is_safe_and_deterministic() {
    use hadar::sim::StragglerModel;
    let mut rng = StdRng::seed_from_u64(0x44);
    for case in 0..12 {
        let cluster = random_cluster(&mut rng);
        let specs = random_specs(&mut rng, 5);
        let sseed = rng.gen_range_usize(0..50) as u64;
        let jobs = materialize(&cluster, &specs);
        let config = SimConfig {
            straggler: Some(StragglerModel {
                incidence: 0.1,
                slowdown: 0.5,
                mean_duration_rounds: 3.0,
                seed: sseed,
            }),
            ..SimConfig::default()
        };
        let run = || {
            Simulation::new(cluster.clone(), jobs.clone(), config)
                .run(HadarScheduler::new(HadarConfig::default()))
                .unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.completed_jobs(), jobs.len(), "case {case}");
        assert_eq!(a.jcts(), b.jcts(), "case {case}");
        assert!(
            hadar::sim::check_lifecycle(a.events(), jobs.len()).is_ok(),
            "case {case}"
        );
    }
}

/// Attaching a rack topology never breaks completion and can only slow
/// jobs down relative to the flat network (the rack tier is a pure
/// penalty).
#[test]
fn rack_topology_is_a_pure_penalty() {
    use hadar::cluster::RackTopology;
    let mut rng = StdRng::seed_from_u64(0x55);
    for case in 0..12 {
        let specs = random_specs(&mut rng, 5);
        let per_rack = rng.gen_range_usize(1..4);
        let flat = {
            let mut b = ClusterBuilder::new();
            let types = [b.gpu_type("V100"), b.gpu_type("P100"), b.gpu_type("K80")];
            b.machine(&[(types[0], 2)]);
            for t in types {
                b.machine(&[(t, 2)]);
            }
            b.build()
        };
        let racked = flat
            .clone()
            .with_racks(RackTopology::uniform(flat.num_machines(), per_rack));
        let jobs = materialize(&flat, &specs);
        let run = |cluster: Cluster| {
            Simulation::new(cluster, jobs.clone(), SimConfig::default())
                .run(HadarScheduler::new(HadarConfig::default()))
                .unwrap()
        };
        let (f, r) = (run(flat), run(racked));
        assert_eq!(f.completed_jobs(), jobs.len(), "case {case}");
        assert_eq!(r.completed_jobs(), jobs.len(), "case {case}");
        // The racked cluster's makespan is never meaningfully shorter
        // (allow one round of scheduling butterfly effects).
        assert!(
            r.makespan() >= f.makespan() * 0.95 - 360.0,
            "case {case}: rack tier sped things up: {} vs {}",
            r.makespan(),
            f.makespan()
        );
    }
}

//! Property-based workspace tests (proptest): for randomly generated
//! clusters and traces, every scheduler completes every job without ever
//! tripping the engine's capacity/gang validation, and derived metrics stay
//! in their domains.

use proptest::prelude::*;

use hadar::baselines::{GavelScheduler, TiresiasScheduler, YarnCsScheduler};
use hadar::prelude::*;
use hadar::sim::{PreemptionPenalty, Scheduler};
use hadar::workload::DlTask;

/// A random small heterogeneous cluster: 2–5 machines, 1–4 GPUs each,
/// drawn from the three simulation GPU types (at least one V100 machine so
/// every model can run somewhere).
fn arb_cluster() -> impl Strategy<Value = Cluster> {
    (
        proptest::collection::vec((0usize..3, 1u32..=4), 1..5),
    )
        .prop_map(|(machines,)| {
            let mut b = ClusterBuilder::new();
            let types = [
                b.gpu_type("V100"),
                b.gpu_type("P100"),
                b.gpu_type("K80"),
            ];
            b.machine(&[(types[0], 2)]); // guaranteed V100 capacity
            for (t, n) in machines {
                b.machine(&[(types[t], n)]);
            }
            b.build()
        })
}

/// Random jobs that are guaranteed schedulable on any `arb_cluster` (gang
/// sizes 1–2 always fit the guaranteed V100 machine).
fn arb_jobs(max_jobs: usize) -> impl Strategy<Value = Vec<(usize, u32, u64, f64)>> {
    proptest::collection::vec(
        (0usize..5, 1u32..=2, 1u64..=8, 0.0f64..7200.0),
        1..=max_jobs,
    )
}

fn materialize(cluster: &Cluster, specs: &[(usize, u32, u64, f64)]) -> Vec<Job> {
    specs
        .iter()
        .enumerate()
        .map(|(i, &(model_idx, gang, epochs, arrival))| {
            Job::for_model(
                JobId(i as u32),
                DlTask::ALL[model_idx],
                cluster.catalog(),
                arrival,
                gang,
                epochs,
            )
        })
        .collect()
}

fn schedulers() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(HadarScheduler::new(HadarConfig::default())),
        Box::new(GavelScheduler::paper_default()),
        Box::new(TiresiasScheduler::paper_default()),
        Box::new(YarnCsScheduler::new()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every scheduler finishes every randomly generated workload — the
    /// engine's internal validation (capacity 1d, gang 1e) would panic on
    /// any constraint violation along the way.
    #[test]
    fn schedulers_complete_random_workloads(
        cluster in arb_cluster(),
        specs in arb_jobs(8),
    ) {
        let jobs = materialize(&cluster, &specs);
        for s in schedulers() {
            let name = s.name().to_owned();
            let config = SimConfig {
                penalty: PreemptionPenalty::Fixed(10.0),
                max_rounds: 500_000,
                ..SimConfig::default()
            };
            let out = Simulation::new(cluster.clone(), jobs.clone(), config).run(s);
            prop_assert_eq!(out.completed_jobs(), jobs.len(), "{}", name);
            prop_assert!(!out.timed_out);
            // Lifecycle oracle: arrivals/starts/migrations/completions in a
            // legal order for every job.
            if let Err(e) = hadar::sim::check_lifecycle(out.events(), jobs.len()) {
                return Err(TestCaseError::fail(format!("{name}: {e}")));
            }
        }
    }

    /// Metric domains: JCT ≥ best-case runtime, utilizations within [0,1],
    /// queuing delay non-negative, FTF finite and positive.
    #[test]
    fn metric_domains_hold(
        cluster in arb_cluster(),
        specs in arb_jobs(6),
    ) {
        let jobs = materialize(&cluster, &specs);
        let out = Simulation::new(cluster, jobs, SimConfig::default())
            .run(HadarScheduler::new(HadarConfig::default()));
        for rec in &out.records {
            let jct = rec.jct().expect("completed");
            prop_assert!(jct >= rec.job.min_runtime() - 1e-6,
                "job {} finished faster than physics allows", rec.job.id);
            prop_assert!(rec.queuing_delay().expect("scheduled") >= 0.0);
        }
        for u in [out.gpu_utilization(), out.demand_weighted_utilization(), out.held_utilization()] {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&u));
        }
        for rho in out.ftf_values() {
            prop_assert!(rho.is_finite() && rho >= 0.0);
        }
    }

    /// The engine's accounting is conservative: busy GPU-seconds never
    /// exceed held GPU-seconds, and held never exceeds cluster capacity.
    #[test]
    fn gpu_second_accounting(
        cluster in arb_cluster(),
        specs in arb_jobs(6),
    ) {
        let jobs = materialize(&cluster, &specs);
        let total = cluster.total_gpus() as f64;
        let out = Simulation::new(cluster, jobs, SimConfig::default())
            .run(TiresiasScheduler::paper_default());
        for round in &out.rounds {
            prop_assert!(round.busy_gpu_seconds <= round.held_gpu_seconds + 1e-6);
            prop_assert!(round.held_gpu_seconds <= total * out.round_length + 1e-6);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Straggler injection never breaks completion or the lifecycle log,
    /// and outcomes remain deterministic under equal straggler seeds.
    #[test]
    fn straggler_injection_is_safe_and_deterministic(
        cluster in arb_cluster(),
        specs in arb_jobs(5),
        sseed in 0u64..50,
    ) {
        use hadar::sim::StragglerModel;
        let jobs = materialize(&cluster, &specs);
        let config = SimConfig {
            straggler: Some(StragglerModel {
                incidence: 0.1,
                slowdown: 0.5,
                mean_duration_rounds: 3.0,
                seed: sseed,
            }),
            ..SimConfig::default()
        };
        let run = || {
            Simulation::new(cluster.clone(), jobs.clone(), config)
                .run(HadarScheduler::new(HadarConfig::default()))
        };
        let (a, b) = (run(), run());
        prop_assert_eq!(a.completed_jobs(), jobs.len());
        prop_assert_eq!(a.jcts(), b.jcts());
        prop_assert!(hadar::sim::check_lifecycle(a.events(), jobs.len()).is_ok());
    }

    /// Attaching a rack topology never breaks completion and can only slow
    /// jobs down relative to the flat network (the rack tier is a pure
    /// penalty).
    #[test]
    fn rack_topology_is_a_pure_penalty(
        specs in arb_jobs(5),
        per_rack in 1usize..4,
    ) {
        use hadar::cluster::RackTopology;
        let flat = {
            let mut b = ClusterBuilder::new();
            let types = [b.gpu_type("V100"), b.gpu_type("P100"), b.gpu_type("K80")];
            b.machine(&[(types[0], 2)]);
            for t in types {
                b.machine(&[(t, 2)]);
            }
            b.build()
        };
        let racked = flat
            .clone()
            .with_racks(RackTopology::uniform(flat.num_machines(), per_rack));
        let jobs = materialize(&flat, &specs);
        let run = |cluster: Cluster| {
            Simulation::new(cluster, jobs.clone(), SimConfig::default())
                .run(HadarScheduler::new(HadarConfig::default()))
        };
        let (f, r) = (run(flat), run(racked));
        prop_assert_eq!(f.completed_jobs(), jobs.len());
        prop_assert_eq!(r.completed_jobs(), jobs.len());
        // The racked cluster's makespan is never meaningfully shorter
        // (allow one round of scheduling butterfly effects).
        prop_assert!(r.makespan() >= f.makespan() * 0.95 - 360.0,
            "rack tier sped things up: {} vs {}", r.makespan(), f.makespan());
    }
}
